#include "core/database.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parser.h"
#include "filter/bound_kernels.h"
#include "obs/trace.h"
#include "filter/quantized_codes.h"
#include "geom/search_region.h"
#include "ts/transforms.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool StatsAdmit(double mean, double std_dev, const Pattern& pattern) {
  if (pattern.mean_range.has_value()) {
    if (mean < pattern.mean_range->first ||
        mean > pattern.mean_range->second) {
      return false;
    }
  }
  if (pattern.std_range.has_value()) {
    if (std_dev < pattern.std_range->first ||
        std_dev > pattern.std_range->second) {
      return false;
    }
  }
  return true;
}

bool PatternAdmits(const Record& record, const Pattern& pattern) {
  return StatsAdmit(record.features.mean, record.features.std_dev, pattern);
}

// Cooperative-stop poll for the parallel driver loops: workers check this
// at block boundaries (scan units, shards, outer rows, candidate batches)
// and bail out early; the driver's epilogue then re-checks the context and
// returns its typed error (kTimeout/kCancelled). Cancellation is sticky
// and deadlines are monotone, so the epilogue observes the same verdict
// the workers did. A null context never stops anything.
inline bool ShouldStop(const ExecutionContext* exec) {
  return exec != nullptr && !exec->Check().ok();
}

// How many index candidates / join rows are refined between polls. Poll
// cost is one relaxed load + one clock read, so this mainly bounds how
// much work a cancelled query still does inside one block.
constexpr int64_t kPollStride = 1024;

// Work granularity for ParallelFor over records: aim for blocks of at
// least ~2^19 doubles of kernel work so scheduling overhead stays
// negligible even for short series.
int64_t RecordGrain(int series_length) {
  return std::max<int64_t>(
      64, (int64_t{1} << 19) / std::max(1, 2 * series_length));
}

// Multiplier values of a spectral rule for output frequencies 0..out_n-1,
// materialized once per query so the per-candidate distance kernels stay a
// tight multiply-subtract loop. Returns nullopt for the identity.
std::optional<Spectrum> MaterializeMultiplier(const TransformationRule* rule,
                                              int n) {
  if (rule == nullptr) {
    return std::nullopt;
  }
  const int out_n = rule->OutputLength(n);
  Spectrum multiplier(static_cast<size_t>(out_n));
  for (int f = 0; f < out_n; ++f) {
    const std::optional<Complex> m = rule->Multiplier(f, n);
    SIMQ_CHECK(m.has_value()) << "rule is not spectral";
    multiplier[static_cast<size_t>(f)] = *m;
  }
  return multiplier;
}

// Exact frequency-domain distance between T(data) and the query spectrum,
// early-abandoning once the partial sum exceeds threshold. `multiplier` is
// the materialized spectral form of T (nullptr for the identity). Relies on
// Parseval: this equals the time-domain distance between T(x) and q.
double FreqDistance(const Spectrum& data, const Spectrum& query,
                    const Spectrum* multiplier, double threshold) {
  const int n = static_cast<int>(data.size());
  const int out_n = multiplier != nullptr
                        ? static_cast<int>(multiplier->size())
                        : n;
  SIMQ_CHECK_EQ(static_cast<int>(query.size()), out_n);
  const double limit =
      threshold == kInf ? kInf : threshold * threshold;
  double sum = 0.0;
  for (int f = 0; f < out_n; ++f) {
    Complex value = data[static_cast<size_t>(f % n)];
    if (multiplier != nullptr) {
      value *= (*multiplier)[static_cast<size_t>(f)];
    }
    sum += std::norm(value - query[static_cast<size_t>(f)]);
    if (sum > limit) {
      return kInf;
    }
  }
  return std::sqrt(sum);
}

// Query-side state for the exact checks of ExecuteRange/ExecuteNearest:
// columnar kernels over the sharded FeatureStores whenever the check runs
// in the frequency domain over same-length spectra (the common case);
// generic wraparound/time-domain fallbacks otherwise (expanding rules,
// non-spectral rules, raw mode). Holds references to its constructor
// arguments -- valid within one Execute call. Distance(id) addresses rows
// by global id through the relation's shard locator; the arithmetic is
// identical for every shard count because each kernel reads only that
// record's row.
class ExactChecker {
 public:
  ExactChecker(const Relation& relation, const Query& query,
               const TransformationRule* rule, bool spectral, int out_n,
               const Spectrum& query_spectrum, const Spectrum* mult,
               const std::vector<double>& query_values)
      : relation_(relation),
        data_(relation.sharded()),
        query_(query),
        rule_(rule),
        spectral_(spectral),
        n_(relation.series_length()),
        query_spectrum_(query_spectrum),
        mult_(mult),
        query_values_(query_values),
        columnar_(query.mode == DistanceMode::kNormalForm && spectral &&
                  out_n == relation.series_length()) {
    if (columnar_) {
      query_ri_ = InterleaveSpectrum(query_spectrum);
      if (mult != nullptr) {
        mult_ri_ = InterleaveSpectrum(*mult);
      }
    }
  }

  bool columnar() const { return columnar_; }
  // Interleaved query spectrum / multiplier; empty / null when not
  // columnar (or no multiplier).
  const std::vector<double>& query_ri() const { return query_ri_; }
  const double* mult_ri() const {
    return mult_ri_.empty() ? nullptr : mult_ri_.data();
  }

  // Early-abandoning exact distance to record `id`; `threshold` bounds the
  // distance of interest (kInf disables abandoning).
  double Distance(int64_t id, double threshold) const {
    if (columnar_) {
      const double limit_sq =
          threshold == kInf ? kInf : threshold * threshold;
      const double* mult_ptr = mult_ri();
      const double dist_sq =
          mult_ptr != nullptr
              ? RowDistanceSqMult(data_.SpectrumRow(id), mult_ptr,
                                  query_ri_.data(), n_, limit_sq)
              : RowDistanceSq(data_.SpectrumRow(id), query_ri_.data(), n_,
                              limit_sq);
      return std::sqrt(dist_sq);
    }
    const Record& record = relation_.record(id);
    if (query_.mode == DistanceMode::kNormalForm && spectral_) {
      return FreqDistance(record.features.normal_spectrum, query_spectrum_,
                          mult_, threshold);
    }
    const std::vector<double>& base =
        query_.mode == DistanceMode::kNormalForm ? record.normal_values
                                                 : record.raw;
    const std::vector<double> transformed =
        rule_ != nullptr ? rule_->Apply(base) : base;
    return threshold == kInf
               ? EuclideanDistance(transformed, query_values_)
               : EuclideanDistanceEarlyAbandon(transformed, query_values_,
                                               threshold);
  }

 private:
  const Relation& relation_;
  const ShardedRelation& data_;
  const Query& query_;
  const TransformationRule* rule_;
  const bool spectral_;
  const int n_;
  const Spectrum& query_spectrum_;
  const Spectrum* mult_;
  const std::vector<double>& query_values_;
  const bool columnar_;
  std::vector<double> query_ri_;
  std::vector<double> mult_ri_;
};

// Runs `body` on one shard's index through the chosen traversal engine
// (both engines expose the same Search/NearestNeighbors signatures) and
// returns the node-access delta -- the single place the paper's node-I/O
// accounting is read, so all strategies report it identically.
template <typename Body>
int64_t RunOnShardEngine(const RelationShard& shard, IndexEngine engine,
                         Body&& body) {
  if (engine == IndexEngine::kPacked) {
    const PackedRTree& tree = shard.packed_index();
    const int64_t before = tree.node_accesses();
    body(tree);
    return tree.node_accesses() - before;
  }
  const RTree& tree = shard.index();
  const int64_t before = tree.node_accesses();
  body(tree);
  return tree.node_accesses() - before;
}

// Scatter driver for whole-relation index operations: resolves every
// shard's traversal engine up front (so parallel fan-outs never contend
// on a snapshot rebuild), hands the full tree array to `body`, and
// returns the summed node-access delta across the shards.
template <typename Body>
int64_t RunOnShardEngines(const ShardedRelation& data, IndexEngine engine,
                          Body&& body) {
  const int num_shards = data.num_shards();
  const auto run = [&](const auto& trees) {
    int64_t before = 0;
    for (const auto* tree : trees) {
      before += tree->node_accesses();
    }
    body(trees);
    int64_t after = 0;
    for (const auto* tree : trees) {
      after += tree->node_accesses();
    }
    return after - before;
  };
  if (engine == IndexEngine::kPacked) {
    std::vector<const PackedRTree*> trees;
    trees.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      trees.push_back(&data.shard(s).packed_index());
    }
    return run(trees);
  }
  std::vector<const RTree*> trees;
  trees.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    trees.push_back(&data.shard(s).index());
  }
  return run(trees);
}

// One contiguous local-row range of one shard: the work unit of the
// sharded scan drivers. Units are ordered (shard, row range); a
// ParallelFor over the unit list with per-block buffers merged in block
// order is deterministic for any thread count, exactly like the
// pre-sharding blocked scans.
struct ScanUnit {
  int shard = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

std::vector<ScanUnit> MakeScanUnits(const ShardedRelation& data,
                                    int64_t grain) {
  std::vector<ScanUnit> units;
  for (int s = 0; s < data.num_shards(); ++s) {
    const int64_t n = data.shard(s).size();
    for (int64_t lo = 0; lo < n; lo += grain) {
      units.push_back(ScanUnit{s, lo, std::min(n, lo + grain)});
    }
  }
  return units;
}

// Spectrum-row pointer per global id, gathered once per join so the
// O(N^2) kernels below index records flat regardless of how rows are
// sharded -- the gather is what makes the join answers independent of
// the shard count by construction.
std::vector<const double*> GatherSpectrumRows(const ShardedRelation& data) {
  std::vector<const double*> rows(static_cast<size_t>(data.size()));
  for (int s = 0; s < data.num_shards(); ++s) {
    const RelationShard& shard = data.shard(s);
    const FeatureStore& store = shard.store();
    for (int64_t i = 0; i < shard.size(); ++i) {
      rows[static_cast<size_t>(shard.global_id(i))] = store.SpectrumRow(i);
    }
  }
  return rows;
}

// Per-shard quantized codes plus per-query bound LUTs for the filtered
// scan paths. Codes are resolved (lazily recompiling any shard a mutation
// staled) before the parallel fan-out, so workers never contend on a
// rebuild -- the same discipline as RunOnShardEngines and the packed
// snapshots. LUTs are built against each shard's own quantile grid.
struct ShardFilterState {
  std::vector<const QuantizedCodes*> codes;
  std::vector<QueryLuts> luts;
  // Largest absolute FP slack across the shards: the guard for
  // comparisons that mix bounds from different shards (the kNN tau).
  double max_slack = 0.0;
  int bits = 8;
};

// Nullopt when any shard's code compile fails (the "filter.compile"
// failpoint): the caller counts the degradation and runs the exact scan
// instead -- same answers, no acceleration.
std::optional<ShardFilterState> MakeShardFilterState(
    const ShardedRelation& data, int bits, const double* query_ri,
    const double* mult_ri, int n, bool with_upper) {
  ShardFilterState state;
  const int num_shards = data.num_shards();
  state.codes.reserve(static_cast<size_t>(num_shards));
  state.luts.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const QuantizedCodes* codes = data.shard(s).quantized_codes_or_null(bits);
    if (codes == nullptr) {
      return std::nullopt;
    }
    state.codes.push_back(codes);
    state.luts.push_back(BuildQueryLuts(codes->quantizer(), query_ri,
                                        mult_ri, n, with_upper));
    state.max_slack = std::max(state.max_slack, state.luts.back().slack);
    state.bits = codes->bits();
  }
  return state;
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              if (a.distance != b.distance) {
                return a.distance < b.distance;
              }
              return a.id < b.id;
            });
}

// The query's trace, or null (the common case: one pointer load).
inline obs::Trace* QueryTrace(const Query& query) {
  return query.exec != nullptr ? query.exec->trace() : nullptr;
}

// Pre-execution per-shard cardinality estimates for EXPLAIN / EXPLAIN
// ANALYZE -- computed only for explained or traced queries, never on the
// hot path. Range estimates (`k` == 0) read the shard quantizer's cell
// occupancy when codes are already compiled (the if_fresh peek: a plan
// estimate must not trigger -- or fail -- a code build) and fall back to
// the shard row count; nearest estimates are min(rows, k), since each
// shard contributes at most k candidates to the merge and there is no
// radius to estimate against. Estimates feed the reported plan only; no
// pruning decision reads them.
void FillShardEstimates(const ShardedRelation& data, int bits,
                        const ExactChecker& checker, int n, double epsilon,
                        int k, ExecutionStats* stats) {
  const int num_shards = data.num_shards();
  stats->shard_stats.assign(static_cast<size_t>(num_shards),
                            ExecutionStats::ShardStats{});
  for (int s = 0; s < num_shards; ++s) {
    ExecutionStats::ShardStats& ss =
        stats->shard_stats[static_cast<size_t>(s)];
    ss.shard = s;
    ss.rows = data.shard(s).size();
    if (k > 0) {
      ss.estimated_candidates = std::min<int64_t>(ss.rows, k);
      continue;
    }
    ss.estimated_candidates = ss.rows;
    if (!checker.columnar()) {
      continue;
    }
    const QuantizedCodes* codes =
        data.shard(s).quantized_codes_if_fresh(bits);
    if (codes != nullptr && codes->dims() > 0) {
      const double fraction = EstimateRangeSurvivorFraction(
          codes->quantizer(), checker.query_ri().data(), checker.mult_ri(),
          n, epsilon);
      ss.estimated_candidates = std::min<int64_t>(
          ss.rows, static_cast<int64_t>(std::ceil(
                       fraction * static_cast<double>(ss.rows))));
    }
  }
}

}  // namespace

Relation::Relation(std::string name, const FeatureConfig& config,
                   RTree::Options index_options,
                   const ShardingOptions& sharding)
    : name_(std::move(name)),
      config_(config),
      data_(FeatureDimension(config), index_options, sharding) {}

const Record& Relation::record(int64_t id) const {
  SIMQ_CHECK_GE(id, 0);
  SIMQ_CHECK_LT(id, size());
  return records_[static_cast<size_t>(id)];
}

const RTree& Relation::index() const {
  SIMQ_CHECK_EQ(data_.num_shards(), 1)
      << "Relation::index() is only defined for unsharded relations; use "
         "sharded().shard(s).index()";
  return data_.shard(0).index();
}

const FeatureStore& Relation::store() const {
  SIMQ_CHECK_EQ(data_.num_shards(), 1)
      << "Relation::store() is only defined for unsharded relations; use "
         "sharded().shard(s).store()";
  return data_.shard(0).store();
}

const PackedRTree& Relation::packed_index() const {
  SIMQ_CHECK_EQ(data_.num_shards(), 1)
      << "Relation::packed_index() is only defined for unsharded "
         "relations; use sharded().shard(s).packed_index()";
  return data_.shard(0).packed_index();
}

Result<int64_t> Relation::FindByName(const std::string& series_name) const {
  const auto it = by_name_.find(series_name);
  if (it == by_name_.end() || !data_.alive(it->second)) {
    // Deleted series resolve like never-inserted ones; the name itself
    // stays reserved (re-inserting it is still AlreadyExists) because ids
    // are dense and the tombstoned row keeps its slot.
    return Status::NotFound("no series named '" + series_name +
                            "' in relation '" + name_ + "'");
  }
  return it->second;
}

Database::Database(FeatureConfig config, RTree::Options index_options,
                   ShardingOptions sharding)
    : config_(config), index_options_(index_options), sharding_(sharding) {
  sharding_.num_shards = std::max(1, sharding_.num_shards);
}

bool Database::UseQuantizedFilter(FilterMode filter) const {
  switch (filter) {
    case FilterMode::kFiltered:
      return true;
    case FilterMode::kExact:
      return false;
    case FilterMode::kDefault:
      break;
  }
  return filter_engine_ == FilterEngine::kQuantized;
}

IndexEngine Database::EffectiveIndexEngine() const {
  if (index_engine_ == IndexEngine::kPacked &&
      PackedRTree::SupportsFanout(index_options_.max_entries)) {
    return IndexEngine::kPacked;
  }
  return IndexEngine::kPointer;
}

IndexEngine Database::ResolveQueryEngine(const ShardedRelation& data,
                                         bool* degraded) const {
  const IndexEngine engine = EffectiveIndexEngine();
  if (engine != IndexEngine::kPacked) {
    return engine;
  }
  // Compile every shard's snapshot up front (the usual pre-fan-out
  // discipline); one failed compile demotes the whole query to the pointer
  // tree so all shards traverse the same engine and the node-access
  // accounting stays coherent.
  for (int s = 0; s < data.num_shards(); ++s) {
    if (data.shard(s).packed_index_or_null() == nullptr) {
      degradation_->packed_compile_failures.fetch_add(
          1, std::memory_order_relaxed);
      degradation_->degraded_queries.fetch_add(1, std::memory_order_relaxed);
      *degraded = true;
      return IndexEngine::kPointer;
    }
  }
  return engine;
}

Status Database::CreateRelation(const std::string& name) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  auto relation =
      std::make_unique<Relation>(name, config_, index_options_, sharding_);
  relation->data_.set_delta_enabled(delta_options_.enabled);
  relations_[name] = std::move(relation);
  return Status::Ok();
}

void Database::set_delta_options(const DeltaOptions& options) {
  delta_options_ = options;
  for (auto& [name, relation] : relations_) {
    relation->data_.set_delta_enabled(options.enabled);
  }
}

Status Database::Delete(const std::string& relation, int64_t id) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Relation* rel = it->second.get();
  if (id < 0 || id >= rel->size()) {
    return Status::OutOfRange("series id out of range");
  }
  if (!rel->data_.Delete(id)) {
    return Status::NotFound("series #" + std::to_string(id) +
                            " is already deleted");
  }
  return Status::Ok();
}

Status Database::BuildRecompaction(
    const std::string& relation,
    std::vector<RelationShard::Recompaction>* out) const {
  const Relation* rel = GetRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  return rel->data_.BuildRecompaction(filter_options_.bits_per_dim, out);
}

Status Database::PublishRecompaction(
    const std::string& relation,
    std::vector<RelationShard::Recompaction> built) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  return it->second->data_.PublishRecompaction(std::move(built));
}

Status Database::Recompact(const std::string& relation) {
  std::vector<RelationShard::Recompaction> built;
  SIMQ_RETURN_IF_ERROR(BuildRecompaction(relation, &built));
  return PublishRecompaction(relation, std::move(built));
}

Result<int64_t> Database::Insert(const std::string& relation,
                                 const TimeSeries& series) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Relation* rel = it->second.get();
  if (series.values.empty()) {
    return Status::InvalidArgument("cannot insert an empty series");
  }
  if (rel->series_length_ == 0) {
    rel->series_length_ = series.length();
  } else if (rel->series_length_ != series.length()) {
    return Status::InvalidArgument(
        "series length does not match relation '" + relation + "'");
  }

  Record record;
  record.id = rel->size();
  record.name =
      series.id.empty() ? "s" + std::to_string(record.id) : series.id;
  if (rel->by_name_.count(record.name) > 0) {
    return Status::AlreadyExists("series '" + record.name +
                                 "' already exists in relation");
  }
  record.raw = series.values;
  record.normal_values = ToNormalForm(series.values).values;
  record.features = ComputeFeatures(series.values);

  // Route the record's derived data to its shard: the shard's store and
  // tree grow, that shard's epoch bumps, and only that shard's packed
  // snapshot is invalidated -- the other shards' snapshots stay warm.
  rel->data_.Append(record.features, record.normal_values,
                    MakeFeaturePoint(record.features, config_));
  rel->by_name_[record.name] = record.id;
  rel->records_.push_back(std::move(record));
  return rel->size() - 1;
}

Status Database::BulkLoad(const std::string& relation,
                          const std::vector<TimeSeries>& series) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Relation* rel = it->second.get();
  if (rel->size() != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty relation; use Insert instead");
  }
  // Validation pass (serial, all-or-nothing: an invalid batch leaves the
  // relation empty, including the series-length sentinel a partial pass
  // may have set). Only cheap checks run here; the expensive per-record
  // derivations happen inside the parallel shard builds below.
  const int prior_length = rel->series_length_;
  const auto fail = [&](Status status) {
    rel->by_name_.clear();
    rel->records_.clear();
    rel->series_length_ = prior_length;
    return status;
  };
  rel->records_.reserve(series.size());
  for (const TimeSeries& ts : series) {
    if (ts.values.empty()) {
      return fail(Status::InvalidArgument("cannot insert an empty series"));
    }
    if (rel->series_length_ == 0) {
      rel->series_length_ = ts.length();
    } else if (rel->series_length_ != ts.length()) {
      return fail(
          Status::InvalidArgument("series length mismatch in bulk load"));
    }
    Record record;
    record.id = rel->size();
    record.name = ts.id.empty() ? "s" + std::to_string(record.id) : ts.id;
    if (rel->by_name_.count(record.name) > 0) {
      return fail(Status::AlreadyExists("series '" + record.name +
                                        "' already exists in relation"));
    }
    record.raw = ts.values;
    rel->by_name_[record.name] = record.id;
    rel->records_.push_back(std::move(record));
  }
  // Parallel per-shard build: every shard task computes its own records'
  // normal forms and spectra (each id writes only its own records_ slot,
  // so the fan-out is deterministic), fills the shard's columnar store,
  // and STR-loads the shard's tree. With one shard this degenerates to
  // the pre-sharding serial load.
  rel->data_.BulkLoad(
      static_cast<int64_t>(series.size()), [&](int64_t id) {
        Record& record = rel->records_[static_cast<size_t>(id)];
        record.normal_values = ToNormalForm(record.raw).values;
        record.features = ComputeFeatures(record.raw);
        ShardedRelation::RowData row;
        row.features = &record.features;
        row.normal_values = &record.normal_values;
        row.point = MakeFeaturePoint(record.features, config_);
        return row;
      });
  return Status::Ok();
}

const Relation* Database::GetRelation(const std::string& name) const {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) {
    names.push_back(name);
  }
  return names;
}

Result<std::vector<double>> Database::ResolveSeries(
    const Relation& relation, const SeriesRef& ref) const {
  if (ref.id.has_value()) {
    if (*ref.id < 0 || *ref.id >= relation.size()) {
      return Status::OutOfRange("series id out of range");
    }
    if (!relation.sharded().alive(*ref.id)) {
      return Status::NotFound("series #" + std::to_string(*ref.id) +
                              " is deleted");
    }
    return relation.record(*ref.id).raw;
  }
  if (ref.name.has_value()) {
    Result<int64_t> id = relation.FindByName(*ref.name);
    if (!id.ok()) {
      return id.status();
    }
    return relation.record(id.value()).raw;
  }
  if (ref.literal.empty()) {
    return Status::InvalidArgument("query series is empty");
  }
  return ref.literal;
}

Result<QueryResult> Database::Execute(const Query& query) const {
  const Relation* relation = GetRelation(query.relation);
  if (relation == nullptr) {
    return Status::NotFound("no relation named '" + query.relation + "'");
  }
  switch (query.kind) {
    case QueryKind::kRange:
      return ExecuteRange(*relation, query);
    case QueryKind::kNearest:
      return ExecuteNearest(*relation, query);
    case QueryKind::kAllPairs: {
      const TransformationRule* left_rule = query.transform.get();
      const TransformationRule* right_rule =
          query.transform_right != nullptr ? query.transform_right.get()
                                           : left_rule;
      if (query.mode != DistanceMode::kNormalForm) {
        return Status::Unimplemented(
            "all-pairs queries support normal-form distances only");
      }
      const int n = relation->series_length();
      bool can_index = true;
      for (const TransformationRule* rule : {left_rule, right_rule}) {
        if (rule == nullptr || n == 0) {
          continue;
        }
        const std::optional<LinearTransform> lowered =
            rule->IndexTransform(n, config_.num_coefficients);
        // Only the data-side (right) transformation must be safe in the
        // index space; the left rule merely transforms the probe point.
        const bool needs_safety = rule == right_rule;
        can_index = can_index && lowered.has_value() &&
                    (!needs_safety || lowered->IsSafeIn(config_.space)) &&
                    rule->OutputLength(n) == n;
      }
      const bool any_rule = left_rule != nullptr || right_rule != nullptr;
      // An explicit MODE FILTERED biases kAuto planning to the filtered
      // early-abandon scan when the quantized join screen applies (an
      // untransformed join: identity or normal-form-invariant rules) --
      // mirroring the range/nearest planners.
      const bool filter_biased =
          query.filter == FilterMode::kFiltered &&
          (left_rule == nullptr || left_rule->IsNormalFormInvariant()) &&
          (right_rule == nullptr || right_rule->IsNormalFormInvariant());
      JoinMethod method = JoinMethod::kScanEarlyAbandon;
      switch (query.strategy) {
        case ExecutionStrategy::kAuto:
          method = filter_biased ? JoinMethod::kScanEarlyAbandon
                   : can_index  ? (any_rule ? JoinMethod::kIndexTransform
                                            : JoinMethod::kIndexNoTransform)
                                : JoinMethod::kScanEarlyAbandon;
          break;
        case ExecutionStrategy::kIndex:
          if (!can_index) {
            return Status::FailedPrecondition(
                "transformation is not index-accelerable for this join");
          }
          method = any_rule ? JoinMethod::kIndexTransform
                            : JoinMethod::kIndexNoTransform;
          break;
        case ExecutionStrategy::kScan:
          method = JoinMethod::kScanEarlyAbandon;
          break;
        case ExecutionStrategy::kScanNoEarlyAbandon:
          method = JoinMethod::kFullScan;
          break;
      }
      // Joins trace as one stage: the join drivers have their own
      // internal phasing, but the service-level question ("where did the
      // time go?") is answered by one span with the pair accounting.
      obs::Trace* const trace = QueryTrace(query);
      const double span_start = trace != nullptr ? trace->NowMs() : 0.0;
      Result<QueryResult> result =
          SelfJoin(query.relation, query.epsilon, left_rule, right_rule,
                   method, query.filter, query.exec);
      if (trace != nullptr && result.ok()) {
        const ExecutionStats& stats = result.value().stats;
        const int span =
            trace->AddCompleted("join", trace->engine_parent(), span_start,
                                trace->NowMs() - span_start);
        trace->SetRows(
            span,
            stats.filter_scanned > 0 ? stats.filter_scanned
                                     : stats.exact_checks,
            stats.filter_scanned > 0
                ? stats.filter_scanned - stats.candidates
                : 0,
            static_cast<int64_t>(result.value().pairs.size()));
      }
      return result;
    }
  }
  return Status::Internal("unknown query kind");
}

Result<QueryResult> Database::ExecuteText(const std::string& text) const {
  Result<Query> query = ParseQuery(text);
  if (!query.ok()) {
    return query.status();
  }
  return Execute(query.value());
}

Result<QueryResult> Database::ExecuteRange(const Relation& relation,
                                           const Query& query) const {
  QueryResult out;
  if (query.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be nonnegative");
  }
  SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
  const ExecutionContext* exec = query.exec.get();
  obs::Trace* const trace = QueryTrace(query);
  if (relation.size() == 0) {
    return out;
  }
  Result<std::vector<double>> resolved =
      ResolveSeries(relation, query.query_series);
  if (!resolved.ok()) {
    return resolved.status();
  }
  const std::vector<double>& raw_query = resolved.value();

  const TransformationRule* rule = query.transform.get();
  if (query.mode == DistanceMode::kNormalForm && rule != nullptr &&
      rule->IsNormalFormInvariant()) {
    rule = nullptr;  // the [GK95] shortcut: invisible to normal forms
  }
  const int n = relation.series_length();
  const int out_n = rule != nullptr ? rule->OutputLength(n) : n;
  if (static_cast<int>(raw_query.size()) != out_n) {
    return Status::InvalidArgument(
        "query series length does not match the transformed data length");
  }

  // Query-side representation.
  std::vector<double> query_values;
  if (query.mode == DistanceMode::kNormalForm && !query.query_prenormalized) {
    query_values = ToNormalForm(raw_query).values;
  } else {
    query_values = raw_query;
  }
  const Spectrum query_spectrum = Dft(query_values);

  const bool spectral = rule == nullptr || rule->IsSpectral(n);
  std::optional<LinearTransform> index_transform;
  if (rule != nullptr && spectral) {
    index_transform = rule->IndexTransform(n, config_.num_coefficients);
  }
  const std::optional<Spectrum> multiplier =
      spectral ? MaterializeMultiplier(rule, n) : std::nullopt;
  const Spectrum* mult = multiplier.has_value() ? &*multiplier : nullptr;
  const bool can_use_index =
      query.mode == DistanceMode::kNormalForm &&
      (rule == nullptr || (index_transform.has_value() &&
                           index_transform->IsSafeIn(config_.space)));

  ExecutionStrategy strategy = query.strategy;
  if (strategy == ExecutionStrategy::kAuto) {
    // An explicit MODE FILTERED biases planning toward the quantized
    // filter scan whenever that path is eligible (normal-form spectral
    // distance over same-length spectra); otherwise the usual
    // index-first rule.
    const bool filter_eligible = query.filter == FilterMode::kFiltered &&
                                 query.mode == DistanceMode::kNormalForm &&
                                 spectral && out_n == n;
    strategy = filter_eligible  ? ExecutionStrategy::kScan
               : can_use_index ? ExecutionStrategy::kIndex
                                : ExecutionStrategy::kScan;
  }
  if (strategy == ExecutionStrategy::kIndex && !can_use_index) {
    return Status::FailedPrecondition(
        "query is not index-accelerable (requires normal-form mode and a "
        "safe spectral transformation)");
  }

  // Columnar kernels apply whenever the exact check runs in the frequency
  // domain over same-length spectra (the common case); expanding rules
  // (out_n != n, e.g. time warps) fall back to the generic wraparound
  // distance inside the checker.
  const ExactChecker checker(relation, query, rule, spectral, out_n,
                             query_spectrum, mult, query_values);
  const bool columnar = checker.columnar();
  const ShardedRelation& data = relation.sharded();

  // Trivial pattern "a given constant object": check that object directly.
  if (query.pattern.kind == Pattern::Kind::kConstant) {
    if (!query.pattern.constant_id.has_value() ||
        *query.pattern.constant_id < 0 ||
        *query.pattern.constant_id >= relation.size()) {
      return Status::OutOfRange("pattern constant id out of range");
    }
    const Record& record = relation.record(*query.pattern.constant_id);
    if (data.alive(record.id) && PatternAdmits(record, query.pattern)) {
      ++out.stats.exact_checks;
      const double distance = checker.Distance(record.id, query.epsilon);
      if (distance <= query.epsilon) {
        out.matches.push_back(Match{record.id, record.name, distance});
      }
    }
    return out;
  }

  // Quantized-filter eligibility and code compile, resolved before the
  // strategy branch: a failed compile (the "filter.compile" failpoint)
  // falls through to the exact scan below with the degradation counted --
  // same answers, no acceleration, never an abort.
  std::optional<ShardFilterState> filter_state;
  if (strategy == ExecutionStrategy::kScan && columnar && n >= 1 &&
      UseQuantizedFilter(query.filter)) {
    filter_state = MakeShardFilterState(
        data, filter_options_.bits_per_dim, checker.query_ri().data(),
        checker.mult_ri(), n, /*with_upper=*/false);
    if (!filter_state.has_value()) {
      degradation_->filter_compile_failures.fetch_add(
          1, std::memory_order_relaxed);
      degradation_->degraded_queries.fetch_add(1, std::memory_order_relaxed);
      out.stats.degraded = true;
    }
  }

  // Per-shard estimates (after the code compile above, so the quantizer
  // grid is visible to the estimator on the filtered path) and actuals
  // are produced only for explained or traced queries.
  const bool want_shard_stats = query.explain || trace != nullptr;
  if (want_shard_stats) {
    FillShardEstimates(data, filter_options_.bits_per_dim, checker, n,
                       query.epsilon, /*k=*/0, &out.stats);
  }
  const int trace_parent = trace != nullptr ? trace->engine_parent() : 0;

  if (strategy == ExecutionStrategy::kIndex) {
    const std::vector<Complex> query_coeffs =
        ExtractCoefficients(query_spectrum, config_.num_coefficients);
    SearchRegion region =
        SearchRegion::MakeRange(query_coeffs, query.epsilon, config_);
    if (config_.include_mean_std) {
      if (query.pattern.mean_range.has_value()) {
        region.ConstrainMean(query.pattern.mean_range->first,
                             query.pattern.mean_range->second);
      }
      if (query.pattern.std_range.has_value()) {
        region.ConstrainStd(query.pattern.std_range->first,
                            query.pattern.std_range->second);
      }
    }
    std::vector<DimAffine> affines;
    const std::vector<DimAffine>* affines_ptr = nullptr;
    if (rule != nullptr) {
      affines = LowerToFeatureSpace(*index_transform, config_);
      affines_ptr = &affines;
    }
    // Scatter: every shard's tree is searched (in parallel across shards;
    // the admission scheduler's per-query parallelism budget caps this
    // fan-out like any other ParallelFor). Gather: per-shard match
    // buffers are concatenated in shard order and canonically sorted
    // below, so the answer is independent of shard count and scheduling.
    const int num_shards = data.num_shards();
    std::vector<std::vector<Match>> shard_matches(
        static_cast<size_t>(num_shards));
    std::vector<int64_t> shard_candidates(static_cast<size_t>(num_shards), 0);
    std::vector<int64_t> shard_checks(static_cast<size_t>(num_shards), 0);
    const IndexEngine engine = ResolveQueryEngine(data, &out.stats.degraded);
    const int64_t node_accesses = RunOnShardEngines(
        data, engine, [&](const auto& trees) {
          ThreadPool::Global().ParallelFor(
              0, num_shards, /*min_grain=*/1,
              [&](int64_t /*block*/, int64_t lo, int64_t hi) {
                for (int64_t s = lo; s < hi; ++s) {
                  if (ShouldStop(exec)) {
                    break;
                  }
                  const double span_start =
                      trace != nullptr ? trace->NowMs() : 0.0;
                  std::vector<int64_t> candidates;
                  trees[static_cast<size_t>(s)]->Search(region, affines_ptr,
                                                        &candidates);
                  shard_candidates[static_cast<size_t>(s)] =
                      static_cast<int64_t>(candidates.size());
                  std::vector<Match>& local =
                      shard_matches[static_cast<size_t>(s)];
                  int64_t checks = 0;
                  bool stopped = false;
                  for (size_t c = 0; c < candidates.size(); ++c) {
                    if (c % kPollStride == 0 && ShouldStop(exec)) {
                      stopped = true;
                      break;
                    }
                    const int64_t id = candidates[c];
                    if (!data.alive(id) ||
                        !StatsAdmit(data.mean(id), data.std_dev(id),
                                    query.pattern)) {
                      continue;
                    }
                    ++checks;
                    const double distance =
                        checker.Distance(id, query.epsilon);
                    if (distance <= query.epsilon) {
                      local.push_back(
                          Match{id, relation.record(id).name, distance});
                    }
                  }
                  if (engine == IndexEngine::kPacked && !stopped) {
                    // Delta scan: rows appended after the shard's packed
                    // snapshot was compiled are not in it -- check them
                    // exactly. The pointer tree (kPointer) always holds
                    // every row, so only the packed engine has a delta.
                    const RelationShard& shard =
                        data.shard(static_cast<int>(s));
                    for (int64_t r = shard.packed_covered();
                         r < shard.size(); ++r) {
                      if (checks % kPollStride == 0 && ShouldStop(exec)) {
                        stopped = true;
                        break;
                      }
                      const int64_t id = shard.global_id(r);
                      if (!shard.alive(r) ||
                          !StatsAdmit(data.mean(id), data.std_dev(id),
                                      query.pattern)) {
                        continue;
                      }
                      ++checks;
                      const double distance =
                          checker.Distance(id, query.epsilon);
                      if (distance <= query.epsilon) {
                        local.push_back(
                            Match{id, relation.record(id).name, distance});
                      }
                    }
                  }
                  shard_checks[static_cast<size_t>(s)] = checks;
                  if (trace != nullptr) {
                    const int span = trace->AddCompleted(
                        "index shard", trace_parent, span_start,
                        trace->NowMs() - span_start);
                    trace->SetShard(span, static_cast<int>(s));
                    trace->SetRows(
                        span, shard_candidates[static_cast<size_t>(s)],
                        shard_candidates[static_cast<size_t>(s)] - checks,
                        static_cast<int64_t>(local.size()));
                  }
                  if (stopped) {
                    break;
                  }
                }
              });
        });
    out.stats.used_index = true;
    out.stats.node_accesses = node_accesses;
    for (int s = 0; s < num_shards; ++s) {
      out.stats.candidates += shard_candidates[static_cast<size_t>(s)];
      out.stats.exact_checks += shard_checks[static_cast<size_t>(s)];
      out.matches.insert(out.matches.end(),
                         shard_matches[static_cast<size_t>(s)].begin(),
                         shard_matches[static_cast<size_t>(s)].end());
      if (want_shard_stats) {
        ExecutionStats::ShardStats& ss =
            out.stats.shard_stats[static_cast<size_t>(s)];
        ss.candidates = shard_candidates[static_cast<size_t>(s)];
        ss.exact_checks = shard_checks[static_cast<size_t>(s)];
      }
    }
  } else if (filter_state.has_value()) {
    // Two-phase quantized filter-and-refine scan (DESIGN.md "Quantized
    // filter"): phase 1 bound-scans the per-shard bit-packed codes and
    // drops every record whose lower-bound distance already exceeds eps
    // (Lemma-1 style: the bound is conservative, so nothing true is
    // dropped); phase 2 refines only the survivors through the exact
    // columnar kernels the unfiltered scan runs -- same kernels, same
    // threshold -- so the answer set and every distance are
    // bit-identical by construction.
    const ShardFilterState& filter = *filter_state;
    const double eps_sq = query.epsilon * query.epsilon;
    ThreadPool& pool = ThreadPool::Global();
    const std::vector<ScanUnit> units = MakeScanUnits(data, RecordGrain(n));
    const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
    std::vector<std::vector<Match>> block_matches(max_blocks);
    std::vector<int64_t> block_checks(max_blocks, 0);
    std::vector<int64_t> block_scanned(max_blocks, 0);
    // Phase 1 and 2 are fused per scan unit on this path, so one span
    // covers both; scanned/pruned/returned separate the phases in the
    // rendered tree. Per-shard survivor counts accumulate into a
    // (block, shard) matrix so blocks never share a cache line or need
    // atomics -- allocated only for explained/traced queries.
    obs::ScopedSpan filter_span(trace, "filter+refine", trace_parent);
    const size_t stat_shards = static_cast<size_t>(data.num_shards());
    std::vector<int64_t> block_shard_checks;
    if (want_shard_stats) {
      block_shard_checks.assign(max_blocks * stat_shards, 0);
    }
    const bool has_pattern = query.pattern.mean_range.has_value() ||
                             query.pattern.std_range.has_value();
    pool.ParallelFor(
        0, static_cast<int64_t>(units.size()), /*min_grain=*/1,
        [&](int64_t block, int64_t unit_lo, int64_t unit_hi) {
          std::vector<Match>& local =
              block_matches[static_cast<size_t>(block)];
          int64_t checks = 0;
          int64_t scanned = 0;
          std::vector<int32_t> active;
          std::vector<double> scratch;
          for (int64_t u = unit_lo; u < unit_hi; ++u) {
            if (ShouldStop(exec)) {
              break;
            }
            const ScanUnit& unit = units[static_cast<size_t>(u)];
            const RelationShard& shard = data.shard(unit.shard);
            const FeatureStore& store = shard.store();
            const QuantizedCodes& codes =
                *filter.codes[static_cast<size_t>(unit.shard)];
            const QueryLuts& luts =
                filter.luts[static_cast<size_t>(unit.shard)];
            // The codes cover a row prefix frozen at their compile; rows
            // past it are the codes' delta and skip the screen entirely
            // (exact-checked below), so a mutation never invalidates the
            // compiled codes.
            const int64_t screen_hi = std::min(unit.hi, codes.size());
            // Pattern and tombstone predicates run before the code scan,
            // so excluded records are never bound-scanned (mirrors the
            // exact scan).
            active.clear();
            if (has_pattern) {
              for (int64_t i = unit.lo; i < screen_hi; ++i) {
                if (shard.alive(i) &&
                    StatsAdmit(store.mean(i), store.std_dev(i),
                               query.pattern)) {
                  active.push_back(static_cast<int32_t>(i - unit.lo));
                }
              }
            } else {
              for (int64_t i = unit.lo; i < screen_hi; ++i) {
                if (shard.alive(i)) {
                  active.push_back(static_cast<int32_t>(i - unit.lo));
                }
              }
            }
            scanned += static_cast<int64_t>(active.size());
            if (!active.empty()) {
              ColumnLowerBoundScan(codes, luts,
                                   SafeThreshold(eps_sq, luts.slack),
                                   unit.lo, screen_hi, &active, &scratch);
            }
            int64_t unit_checks = static_cast<int64_t>(active.size());
            for (const int32_t offset : active) {
              const int64_t id = shard.global_id(unit.lo + offset);
              const double distance = checker.Distance(id, query.epsilon);
              if (distance <= query.epsilon) {
                local.push_back(
                    Match{id, relation.record(id).name, distance});
              }
            }
            // Delta rows of this unit: always exact-checked, never
            // screened -- the unmodified kernels keep the answer
            // bit-identical to the unfiltered scan.
            for (int64_t i = std::max(unit.lo, screen_hi); i < unit.hi;
                 ++i) {
              if (!shard.alive(i) ||
                  !StatsAdmit(store.mean(i), store.std_dev(i),
                              query.pattern)) {
                continue;
              }
              ++unit_checks;
              const int64_t id = shard.global_id(i);
              const double distance = checker.Distance(id, query.epsilon);
              if (distance <= query.epsilon) {
                local.push_back(
                    Match{id, relation.record(id).name, distance});
              }
            }
            checks += unit_checks;
            if (want_shard_stats) {
              block_shard_checks[static_cast<size_t>(block) * stat_shards +
                                 static_cast<size_t>(unit.shard)] +=
                  unit_checks;
            }
          }
          block_checks[static_cast<size_t>(block)] = checks;
          block_scanned[static_cast<size_t>(block)] = scanned;
        });
    out.stats.used_filter = true;
    for (size_t block = 0; block < max_blocks; ++block) {
      out.stats.exact_checks += block_checks[block];
      out.stats.candidates += block_checks[block];
      out.stats.filter_scanned += block_scanned[block];
      out.matches.insert(out.matches.end(), block_matches[block].begin(),
                         block_matches[block].end());
    }
    if (want_shard_stats) {
      for (size_t block = 0; block < max_blocks; ++block) {
        for (size_t s = 0; s < stat_shards; ++s) {
          const int64_t survivors =
              block_shard_checks[block * stat_shards + s];
          out.stats.shard_stats[s].candidates += survivors;
          out.stats.shard_stats[s].exact_checks += survivors;
        }
      }
    }
    filter_span.Rows(out.stats.filter_scanned,
                     out.stats.filter_scanned - out.stats.candidates,
                     static_cast<int64_t>(out.matches.size()));
  } else {
    const bool abandon = strategy != ExecutionStrategy::kScanNoEarlyAbandon;
    const double threshold = abandon ? query.epsilon : kInf;
    // Sharded blocked scan: the unit list enumerates contiguous local-row
    // ranges shard by shard, and the fan-out parallelizes over units --
    // across shards and within them -- with per-block buffers merged in
    // block order, so results stay deterministic for any thread count and
    // shard count. Columnar early-abandoning scans first screen against
    // the shard's packed prefix column (32 sequential bytes per record)
    // and touch the full strided row only for survivors.
    const bool screen = columnar && abandon && threshold != kInf && n >= 2;
    const double limit_sq = threshold * threshold;
    double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
    const double* mult_ri_ptr = nullptr;
    if (screen) {
      const std::vector<double>& query_ri = checker.query_ri();
      q0 = query_ri[0];
      q1 = query_ri[1];
      q2 = query_ri[2];
      q3 = query_ri[3];
      mult_ri_ptr = checker.mult_ri();
    }
    ThreadPool& pool = ThreadPool::Global();
    const std::vector<ScanUnit> units = MakeScanUnits(data, RecordGrain(n));
    const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
    std::vector<std::vector<Match>> block_matches(max_blocks);
    std::vector<int64_t> block_checks(max_blocks, 0);
    obs::ScopedSpan scan_span(trace, "scan", trace_parent);
    const size_t stat_shards = static_cast<size_t>(data.num_shards());
    std::vector<int64_t> block_shard_checks;
    if (want_shard_stats) {
      block_shard_checks.assign(max_blocks * stat_shards, 0);
    }
    pool.ParallelFor(
        0, static_cast<int64_t>(units.size()), /*min_grain=*/1,
        [&](int64_t block, int64_t unit_lo, int64_t unit_hi) {
          std::vector<Match>& local =
              block_matches[static_cast<size_t>(block)];
          int64_t checks = 0;
          for (int64_t u = unit_lo; u < unit_hi; ++u) {
            if (ShouldStop(exec)) {
              break;
            }
            const ScanUnit& unit = units[static_cast<size_t>(u)];
            const RelationShard& shard = data.shard(unit.shard);
            const FeatureStore& store = shard.store();
            const int64_t unit_checks_before = checks;
            for (int64_t i = unit.lo; i < unit.hi; ++i) {
              if (!shard.alive(i) ||
                  !StatsAdmit(store.mean(i), store.std_dev(i),
                              query.pattern)) {
                continue;
              }
              ++checks;
              if (screen) {
                const double* p = store.PrefixRow(i);
                const bool dead =
                    mult_ri_ptr != nullptr
                        ? PrefixScreenMultDead(p, mult_ri_ptr, q0, q1, q2,
                                               q3, limit_sq)
                        : PrefixScreenDead(p, q0, q1, q2, q3, limit_sq);
                if (dead) {
                  continue;
                }
              }
              const int64_t id = shard.global_id(i);
              const double distance = checker.Distance(id, threshold);
              if (distance <= query.epsilon) {
                local.push_back(
                    Match{id, relation.record(id).name, distance});
              }
            }
            if (want_shard_stats) {
              block_shard_checks[static_cast<size_t>(block) * stat_shards +
                                 static_cast<size_t>(unit.shard)] +=
                  checks - unit_checks_before;
            }
          }
          block_checks[static_cast<size_t>(block)] = checks;
        });
    for (size_t block = 0; block < max_blocks; ++block) {
      out.stats.exact_checks += block_checks[block];
      out.matches.insert(out.matches.end(), block_matches[block].begin(),
                         block_matches[block].end());
    }
    if (want_shard_stats) {
      for (size_t block = 0; block < max_blocks; ++block) {
        for (size_t s = 0; s < stat_shards; ++s) {
          const int64_t c = block_shard_checks[block * stat_shards + s];
          out.stats.shard_stats[s].candidates += c;
          out.stats.shard_stats[s].exact_checks += c;
        }
      }
    }
    scan_span.Rows(out.stats.exact_checks, 0,
                   static_cast<int64_t>(out.matches.size()));
  }
  // Workers that observed a stop left partial buffers behind; the typed
  // error below discards them so callers never see a partial answer.
  SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
  {
    obs::ScopedSpan merge(trace, "merge", trace_parent);
    SortMatches(&out.matches);
    merge.Rows(0, 0, static_cast<int64_t>(out.matches.size()));
  }
  return out;
}

Result<QueryResult> Database::ExecuteNearest(const Relation& relation,
                                             const Query& query) const {
  QueryResult out;
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
  const ExecutionContext* exec = query.exec.get();
  obs::Trace* const trace = QueryTrace(query);
  if (relation.size() == 0) {
    return out;
  }
  Result<std::vector<double>> resolved =
      ResolveSeries(relation, query.query_series);
  if (!resolved.ok()) {
    return resolved.status();
  }
  const std::vector<double>& raw_query = resolved.value();

  const TransformationRule* rule = query.transform.get();
  if (query.mode == DistanceMode::kNormalForm && rule != nullptr &&
      rule->IsNormalFormInvariant()) {
    rule = nullptr;
  }
  const int n = relation.series_length();
  const int out_n = rule != nullptr ? rule->OutputLength(n) : n;
  if (static_cast<int>(raw_query.size()) != out_n) {
    return Status::InvalidArgument(
        "query series length does not match the transformed data length");
  }

  std::vector<double> query_values;
  if (query.mode == DistanceMode::kNormalForm && !query.query_prenormalized) {
    query_values = ToNormalForm(raw_query).values;
  } else {
    query_values = raw_query;
  }
  const Spectrum query_spectrum = Dft(query_values);

  const bool spectral = rule == nullptr || rule->IsSpectral(n);
  std::optional<LinearTransform> index_transform;
  if (rule != nullptr && spectral) {
    index_transform = rule->IndexTransform(n, config_.num_coefficients);
  }
  const std::optional<Spectrum> multiplier =
      spectral ? MaterializeMultiplier(rule, n) : std::nullopt;
  const Spectrum* mult = multiplier.has_value() ? &*multiplier : nullptr;
  const bool can_use_index =
      query.mode == DistanceMode::kNormalForm &&
      (rule == nullptr || (index_transform.has_value() &&
                           index_transform->IsSafeIn(config_.space)));

  ExecutionStrategy strategy = query.strategy;
  if (strategy == ExecutionStrategy::kAuto) {
    // An explicit MODE FILTERED biases planning toward the quantized
    // filter scan whenever that path is eligible (normal-form spectral
    // distance over same-length spectra); otherwise the usual
    // index-first rule.
    const bool filter_eligible = query.filter == FilterMode::kFiltered &&
                                 query.mode == DistanceMode::kNormalForm &&
                                 spectral && out_n == n;
    strategy = filter_eligible  ? ExecutionStrategy::kScan
               : can_use_index ? ExecutionStrategy::kIndex
                                : ExecutionStrategy::kScan;
  }
  if (strategy == ExecutionStrategy::kIndex && !can_use_index) {
    return Status::FailedPrecondition(
        "query is not index-accelerable (requires normal-form mode and a "
        "safe spectral transformation)");
  }

  // All nearest-neighbor exact checks are unbounded (kInf threshold); the
  // checker picks columnar kernels or fallbacks exactly as in ExecuteRange.
  const ExactChecker checker(relation, query, rule, spectral, out_n,
                             query_spectrum, mult, query_values);
  const ShardedRelation& data = relation.sharded();

  // Same degradation discipline as ExecuteRange: resolve the quantized
  // codes before the branch; a failed compile runs the batched exact scan.
  std::optional<ShardFilterState> filter_state;
  if (strategy == ExecutionStrategy::kScan && checker.columnar() && n >= 1 &&
      UseQuantizedFilter(query.filter)) {
    filter_state = MakeShardFilterState(
        data, filter_options_.bits_per_dim, checker.query_ri().data(),
        checker.mult_ri(), n, /*with_upper=*/true);
    if (!filter_state.has_value()) {
      degradation_->filter_compile_failures.fetch_add(
          1, std::memory_order_relaxed);
      degradation_->degraded_queries.fetch_add(1, std::memory_order_relaxed);
      out.stats.degraded = true;
    }
  }

  // Shard estimates / actuals only for explained or traced queries (see
  // ExecuteRange); nearest estimates are min(rows, k) per shard.
  const bool want_shard_stats = query.explain || trace != nullptr;
  if (want_shard_stats) {
    FillShardEstimates(data, filter_options_.bits_per_dim, checker, n,
                       /*epsilon=*/0.0, query.k, &out.stats);
  }
  const int trace_parent = trace != nullptr ? trace->engine_parent() : 0;

  if (strategy == ExecutionStrategy::kIndex) {
    const std::vector<Complex> query_coeffs =
        ExtractCoefficients(query_spectrum, config_.num_coefficients);
    const NnLowerBound bound(query_coeffs, config_);
    std::vector<DimAffine> affines;
    const std::vector<DimAffine>* affines_ptr = nullptr;
    if (rule != nullptr) {
      affines = LowerToFeatureSpace(*index_transform, config_);
      affines_ptr = &affines;
    }
    const auto exact = [&](int64_t id) {
      if (!data.alive(id) ||
          !StatsAdmit(data.mean(id), data.std_dev(id), query.pattern)) {
        return kInf;  // excluded entries sort to the end and are dropped
      }
      ++out.stats.exact_checks;
      return checker.Distance(id, kInf);
    };
    // Scatter-gather kNN: the shared best-first driver runs per shard,
    // sequentially, and every shard after the first receives the merged
    // k-th distance so far as its pruning bound (answer-preserving: ties
    // at the bound are drained; see index/knn_best_first.h and DESIGN.md
    // "Sharded execution" for the argument). After each shard the merged
    // list is re-sorted by (distance, id) and cut to k -- any record a
    // cut drops is beaten by k results under the final tie-break order
    // and can never re-enter.
    std::vector<std::pair<int64_t, double>> merged;
    int64_t node_accesses = 0;
    const int num_shards = data.num_shards();
    const IndexEngine engine = ResolveQueryEngine(data, &out.stats.degraded);
    for (int s = 0; s < num_shards; ++s) {
      SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
      double prune_bound = kInf;
      if (cross_shard_knn_pruning_ &&
          static_cast<int>(merged.size()) >= query.k) {
        prune_bound = merged[static_cast<size_t>(query.k - 1)].second;
      }
      const double span_start = trace != nullptr ? trace->NowMs() : 0.0;
      const int64_t checks_before = out.stats.exact_checks;
      int64_t shard_returned = 0;
      node_accesses += RunOnShardEngine(
          data.shard(s), engine, [&](const auto& tree) {
            const auto shard_results = tree.NearestNeighbors(
                bound, affines_ptr, query.k, exact, prune_bound);
            shard_returned = static_cast<int64_t>(shard_results.size());
            merged.insert(merged.end(), shard_results.begin(),
                          shard_results.end());
          });
      if (engine == IndexEngine::kPacked) {
        // Delta scan: rows appended after the shard's packed snapshot was
        // compiled are invisible to it -- exact-check each and let the
        // canonical (distance, id) re-sort + cut below rank them. The
        // pointer tree always holds every row, so kPointer has no delta.
        const RelationShard& shard = data.shard(s);
        for (int64_t r = shard.packed_covered(); r < shard.size(); ++r) {
          const int64_t id = shard.global_id(r);
          const double distance = exact(id);
          if (distance != kInf) {
            merged.emplace_back(id, distance);
          }
        }
      }
      if (trace != nullptr) {
        const int span =
            trace->AddCompleted("index shard", trace_parent, span_start,
                                trace->NowMs() - span_start);
        trace->SetShard(span, s);
        trace->SetRows(span, out.stats.exact_checks - checks_before, 0,
                       shard_returned);
      }
      if (want_shard_stats) {
        ExecutionStats::ShardStats& ss =
            out.stats.shard_stats[static_cast<size_t>(s)];
        ss.candidates = shard_returned;
        ss.exact_checks = out.stats.exact_checks - checks_before;
      }
      std::sort(merged.begin(), merged.end(),
                [](const std::pair<int64_t, double>& a,
                   const std::pair<int64_t, double>& b) {
                  if (a.second != b.second) {
                    return a.second < b.second;
                  }
                  return a.first < b.first;
                });
      if (static_cast<int>(merged.size()) > query.k) {
        merged.resize(static_cast<size_t>(query.k));
      }
    }
    out.stats.used_index = true;
    out.stats.node_accesses = node_accesses;
    for (const auto& [id, distance] : merged) {
      if (distance == kInf) {
        continue;
      }
      out.matches.push_back(Match{id, relation.record(id).name, distance});
    }
  } else if (filter_state.has_value()) {
    // Two-phase VA-file-style kNN. Phase 1 bound-scans the codes keeping
    // a running lower bound per record AND a per-block heap of the k
    // smallest upper bounds: once k upper bounds <= tau exist, any record
    // whose lower bound exceeds tau provably cannot enter the top k and
    // is abandoned mid-scan. Phase 2 refines the surviving candidates in
    // ascending lower-bound order through the exact kernels, shrinking
    // the bound to the running k-th exact distance; ties at the k-th
    // distance resolve by (distance, id), exactly like the unfiltered
    // ranking, so the answer is bit-identical.
    const ShardFilterState& filter = *filter_state;
    const int k = query.k;
    struct Candidate {
      int64_t id;
      double lb_sq;
    };
    ThreadPool& pool = ThreadPool::Global();
    const std::vector<ScanUnit> units = MakeScanUnits(data, RecordGrain(n));
    const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
    std::vector<std::vector<Candidate>> block_cands(max_blocks);
    std::vector<std::vector<double>> block_ubs(max_blocks);
    std::vector<int64_t> block_scanned(max_blocks, 0);
    // Phase spans: the bound scan and the refine are distinct stages on
    // this path, so each gets its own span (opened/closed around the
    // phase, not RAII -- the boundary falls mid-block).
    const int filter_span =
        trace != nullptr ? trace->StartSpan("filter", trace_parent) : -1;
    const size_t stat_shards = static_cast<size_t>(data.num_shards());
    std::vector<int64_t> block_shard_cands;
    if (want_shard_stats) {
      block_shard_cands.assign(max_blocks * stat_shards, 0);
    }
    WithFilterBits(filter.bits, [&](auto bits_tag) {
      constexpr int kBits = decltype(bits_tag)::value;
      pool.ParallelFor(
          0, static_cast<int64_t>(units.size()), /*min_grain=*/1,
          [&](int64_t block, int64_t unit_lo, int64_t unit_hi) {
            std::vector<Candidate>& cands =
                block_cands[static_cast<size_t>(block)];
            // Max-heap of the k smallest upper bounds seen by this block.
            std::vector<double>& ubs = block_ubs[static_cast<size_t>(block)];
            int64_t scanned = 0;
            for (int64_t u = unit_lo; u < unit_hi; ++u) {
              if (ShouldStop(exec)) {
                break;
              }
              const ScanUnit& unit = units[static_cast<size_t>(u)];
              const RelationShard& shard = data.shard(unit.shard);
              const FeatureStore& store = shard.store();
              const QuantizedCodes& codes =
                  *filter.codes[static_cast<size_t>(unit.shard)];
              const QueryLuts& luts =
                  filter.luts[static_cast<size_t>(unit.shard)];
              // Rows past the codes' coverage are the codes' delta; they
              // are exact-checked up front in the refine phase below and
              // never bound-scanned.
              const int64_t screen_hi = std::min(unit.hi, codes.size());
              for (int64_t i = unit.lo; i < screen_hi; ++i) {
                if (!shard.alive(i) ||
                    !StatsAdmit(store.mean(i), store.std_dev(i),
                                query.pattern)) {
                  continue;
                }
                ++scanned;
                const double tau_sq = static_cast<int>(ubs.size()) >= k
                                          ? ubs.front()
                                          : kInf;
                double ub_sq = kInf;
                // max_slack, not this shard's: a block's heap spans scan
                // units of several shards, so tau may be an upper bound
                // computed against another shard's grid.
                const double lb_sq = LowerUpperBoundSq<kBits>(
                    codes.CodeRow(i), luts,
                    SafeThreshold(tau_sq, filter.max_slack), &ub_sq);
                if (lb_sq == kInf) {
                  continue;  // provably outside the top k
                }
                if (want_shard_stats) {
                  block_shard_cands[static_cast<size_t>(block) *
                                        stat_shards +
                                    static_cast<size_t>(unit.shard)] += 1;
                }
                cands.push_back(Candidate{shard.global_id(i), lb_sq});
                ubs.push_back(ub_sq);
                std::push_heap(ubs.begin(), ubs.end());
                if (static_cast<int>(ubs.size()) > k) {
                  std::pop_heap(ubs.begin(), ubs.end());
                  ubs.pop_back();
                }
              }
            }
            block_scanned[static_cast<size_t>(block)] = scanned;
          });
    });
    // Gather phase: the global tau is the k-th smallest upper bound over
    // every block (at most as large as any block-local tau, so the
    // phase-1 pruning above was conservative).
    std::vector<Candidate> cands;
    std::vector<double> ubs;
    for (size_t block = 0; block < max_blocks; ++block) {
      out.stats.filter_scanned += block_scanned[block];
      cands.insert(cands.end(), block_cands[block].begin(),
                   block_cands[block].end());
      ubs.insert(ubs.end(), block_ubs[block].begin(),
                 block_ubs[block].end());
    }
    out.stats.used_filter = true;
    double tau_sq = kInf;
    if (static_cast<int>(ubs.size()) >= k) {
      std::nth_element(ubs.begin(), ubs.begin() + (k - 1), ubs.end());
      tau_sq = ubs[static_cast<size_t>(k - 1)];
    }
    const double tau_safe = SafeThreshold(tau_sq, filter.max_slack);
    cands.erase(std::remove_if(cands.begin(), cands.end(),
                               [&](const Candidate& c) {
                                 return c.lb_sq > tau_safe;
                               }),
                cands.end());
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.lb_sq != b.lb_sq) {
                  return a.lb_sq < b.lb_sq;
                }
                return a.id < b.id;
              });
    out.stats.candidates = static_cast<int64_t>(cands.size());
    if (trace != nullptr) {
      trace->SetRows(filter_span, out.stats.filter_scanned,
                     out.stats.filter_scanned - out.stats.candidates,
                     out.stats.candidates);
      trace->EndSpan(filter_span);
    }
    if (want_shard_stats) {
      for (size_t block = 0; block < max_blocks; ++block) {
        for (size_t s = 0; s < stat_shards; ++s) {
          out.stats.shard_stats[s].candidates +=
              block_shard_cands[block * stat_shards + s];
        }
      }
    }
    const int refine_span =
        trace != nullptr ? trace->StartSpan("refine", trace_parent) : -1;
    // Refine in lower-bound order; `best` stays sorted by (distance, id).
    std::vector<std::pair<double, int64_t>> best;
    best.reserve(static_cast<size_t>(k) + 1);
    // Delta rows (past each shard's code coverage) first, exact-checked
    // unconditionally: they have no code lower bound, so giving them one
    // (e.g. zero) could not legally participate in the early break below.
    // Seeding them as finished exact distances keeps the break sound, and
    // the final top-k by (distance, id) is insertion-order independent,
    // so answers stay bit-identical.
    for (int s = 0; s < data.num_shards(); ++s) {
      const RelationShard& shard = data.shard(s);
      const FeatureStore& store = shard.store();
      const int64_t covered =
          filter.codes[static_cast<size_t>(s)]->size();
      for (int64_t i = covered; i < shard.size(); ++i) {
        if (!shard.alive(i) ||
            !StatsAdmit(store.mean(i), store.std_dev(i), query.pattern)) {
          continue;
        }
        const int64_t id = shard.global_id(i);
        ++out.stats.exact_checks;
        if (want_shard_stats) {
          ++out.stats.shard_stats[static_cast<size_t>(s)].exact_checks;
        }
        const std::pair<double, int64_t> entry(checker.Distance(id, kInf),
                                               id);
        if (static_cast<int>(best.size()) >= k) {
          if (!(entry < best.back())) {
            continue;
          }
          best.pop_back();
        }
        best.insert(std::upper_bound(best.begin(), best.end(), entry),
                    entry);
      }
    }
    for (size_t c = 0; c < cands.size(); ++c) {
      if (c % static_cast<size_t>(kPollStride) == 0) {
        SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
      }
      const Candidate& cand = cands[c];
      if (static_cast<int>(best.size()) >= k) {
        const double kth = best.back().first;
        if (cand.lb_sq > SafeThreshold(kth * kth, filter.max_slack)) {
          break;  // lb ascending: nothing later can enter either
        }
      }
      ++out.stats.exact_checks;
      if (want_shard_stats) {
        ++out.stats
              .shard_stats[static_cast<size_t>(data.shard_of(cand.id))]
              .exact_checks;
      }
      // Unbounded exact distance: the unfiltered kNN scan computes every
      // distance with the no-abandon kernel, whose summation association
      // differs from the abandoning one -- refining with a finite limit
      // would change result doubles by ulps. The lower-bound pruning
      // above already did the work an abandon would.
      const double distance = checker.Distance(cand.id, kInf);
      const std::pair<double, int64_t> entry(distance, cand.id);
      if (static_cast<int>(best.size()) >= k) {
        if (!(entry < best.back())) {
          continue;
        }
        best.pop_back();
      }
      best.insert(std::upper_bound(best.begin(), best.end(), entry), entry);
    }
    if (trace != nullptr) {
      trace->SetRows(refine_span, out.stats.exact_checks, 0,
                     static_cast<int64_t>(best.size()));
      trace->EndSpan(refine_span);
    }
    for (const auto& [distance, id] : best) {
      out.matches.push_back(Match{id, relation.record(id).name, distance});
    }
  } else {
    const int64_t count = relation.size();
    // Batched scan: all exact distances are needed (no abandoning), so the
    // global distance column is filled in parallel -- across shards and
    // within them, via the shard-local unit list -- and ranked afterwards
    // in global id order, exactly like the unsharded engine.
    std::vector<double> distances(static_cast<size_t>(count), -1.0);
    ThreadPool& pool = ThreadPool::Global();
    const std::vector<ScanUnit> units = MakeScanUnits(data, RecordGrain(n));
    const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
    std::vector<int64_t> block_checks(max_blocks, 0);
    obs::ScopedSpan scan_span(trace, "scan", trace_parent);
    const size_t stat_shards = static_cast<size_t>(data.num_shards());
    std::vector<int64_t> block_shard_checks;
    if (want_shard_stats) {
      block_shard_checks.assign(max_blocks * stat_shards, 0);
    }
    pool.ParallelFor(
        0, static_cast<int64_t>(units.size()), /*min_grain=*/1,
        [&](int64_t block, int64_t unit_lo, int64_t unit_hi) {
          int64_t checks = 0;
          for (int64_t u = unit_lo; u < unit_hi; ++u) {
            if (ShouldStop(exec)) {
              break;
            }
            const ScanUnit& unit = units[static_cast<size_t>(u)];
            const RelationShard& shard = data.shard(unit.shard);
            const FeatureStore& store = shard.store();
            const int64_t unit_checks_before = checks;
            for (int64_t i = unit.lo; i < unit.hi; ++i) {
              if (!shard.alive(i) ||
                  !StatsAdmit(store.mean(i), store.std_dev(i),
                              query.pattern)) {
                continue;  // sentinel -1 marks excluded records
              }
              ++checks;
              const int64_t id = shard.global_id(i);
              distances[static_cast<size_t>(id)] = checker.Distance(id, kInf);
            }
            if (want_shard_stats) {
              block_shard_checks[static_cast<size_t>(block) * stat_shards +
                                 static_cast<size_t>(unit.shard)] +=
                  checks - unit_checks_before;
            }
          }
          block_checks[static_cast<size_t>(block)] = checks;
        });
    for (size_t block = 0; block < max_blocks; ++block) {
      out.stats.exact_checks += block_checks[block];
    }
    if (want_shard_stats) {
      for (size_t block = 0; block < max_blocks; ++block) {
        for (size_t s = 0; s < stat_shards; ++s) {
          const int64_t c = block_shard_checks[block * stat_shards + s];
          out.stats.shard_stats[s].candidates += c;
          out.stats.shard_stats[s].exact_checks += c;
        }
      }
    }
    scan_span.Rows(out.stats.exact_checks, 0, std::min<int64_t>(
        static_cast<int64_t>(query.k), out.stats.exact_checks));
    std::vector<Match> all;
    all.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      if (distances[static_cast<size_t>(i)] >= 0.0) {
        all.push_back(Match{i, relation.record(i).name,
                            distances[static_cast<size_t>(i)]});
      }
    }
    SortMatches(&all);
    if (static_cast<int>(all.size()) > query.k) {
      all.resize(static_cast<size_t>(query.k));
    }
    out.matches = std::move(all);
  }
  // Discard any partial answer a stopped worker left behind.
  SIMQ_RETURN_IF_ERROR(CheckExecution(query.exec));
  {
    obs::ScopedSpan merge(trace, "merge", trace_parent);
    SortMatches(&out.matches);
    merge.Rows(0, 0, static_cast<int64_t>(out.matches.size()));
  }
  return out;
}

Result<QueryResult> Database::SelfJoin(const std::string& relation_name,
                                       double epsilon,
                                       const TransformationRule* rule,
                                       JoinMethod method) const {
  return SelfJoin(relation_name, epsilon, rule, rule, method);
}

Result<QueryResult> Database::SelfJoin(
    const std::string& relation_name, double epsilon,
    const TransformationRule* left_rule,
    const TransformationRule* right_rule, JoinMethod method,
    FilterMode filter, std::shared_ptr<const ExecutionContext> exec) const {
  SIMQ_RETURN_IF_ERROR(CheckExecution(exec));
  const ExecutionContext* ctx = exec.get();
  const Relation* relation = GetRelation(relation_name);
  if (relation == nullptr) {
    return Status::NotFound("no relation named '" + relation_name + "'");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be nonnegative");
  }
  QueryResult out;
  const int64_t count = relation->size();
  if (count == 0) {
    return out;
  }
  const int n = relation->series_length();
  // Flat tombstone flags by global id: the O(N^2) pair loops below test
  // aliveness per pair, so pay the locator hop once per row up front.
  std::vector<uint8_t> alive(static_cast<size_t>(count), 1);
  for (int64_t g = 0; g < count; ++g) {
    alive[static_cast<size_t>(g)] =
        relation->sharded().alive(g) ? 1 : 0;
  }
  const bool symmetric = left_rule == right_rule;
  if (left_rule != nullptr && left_rule->IsNormalFormInvariant()) {
    left_rule = nullptr;
  }
  if (right_rule != nullptr && right_rule->IsNormalFormInvariant()) {
    right_rule = nullptr;
  }
  for (const TransformationRule* rule : {left_rule, right_rule}) {
    if (rule != nullptr && rule->OutputLength(n) != n) {
      return Status::InvalidArgument(
          "self-join transformations must preserve series length");
    }
  }
  const bool left_spectral = left_rule == nullptr || left_rule->IsSpectral(n);
  const bool right_spectral =
      right_rule == nullptr || right_rule->IsSpectral(n);
  const std::optional<Spectrum> left_multiplier =
      left_spectral ? MaterializeMultiplier(left_rule, n) : std::nullopt;
  const std::optional<Spectrum> right_multiplier =
      right_spectral ? MaterializeMultiplier(right_rule, n) : std::nullopt;
  const Spectrum* left_mult =
      left_multiplier.has_value() ? &*left_multiplier : nullptr;
  const Spectrum* right_mult =
      right_multiplier.has_value() ? &*right_multiplier : nullptr;

  if (method == JoinMethod::kFullScan ||
      method == JoinMethod::kScanEarlyAbandon) {
    const double threshold =
        method == JoinMethod::kFullScan ? kInf : epsilon;
    if (left_spectral && right_spectral) {
      // Batched nested-loop scan over the columnar stores. Row pointers
      // are gathered per global id once, so the O(N^2) loops below are
      // oblivious to sharding. Spectral multipliers are applied to every
      // row ONCE up front (O(N n)), so the inner loop runs the plain
      // subtract-square kernel -- the per-pair multiplier application of
      // the row-at-a-time implementation was the dominant cost of
      // early-abandoned pairs. Parallelized over outer-row blocks;
      // per-block pair buffers merged in block order keep the output
      // deterministic.
      const std::vector<const double*> base_rows =
          GatherSpectrumRows(relation->sharded());
      ThreadPool& pool = ThreadPool::Global();
      // Quantized filter-and-refine join (untransformed early-abandoning
      // method only). Per outer row i, a partial screen LUT over the
      // codes' most discriminating dimensions (static variance order) is
      // filled from i's exact spectrum row, and each shard's code
      // columns are swept column-major against it -- LUT rows and code
      // columns stay cache-hot across the whole inner side. A
      // partial-dimension lower bound is still a lower bound, so no true
      // pair is dropped; survivors are exact-checked in ascending global
      // j order, so the pair set, distances, and emission order match
      // the unfiltered join bit-for-bit.
      bool join_filter = method == JoinMethod::kScanEarlyAbandon && n >= 1 &&
                         left_mult == nullptr && right_mult == nullptr &&
                         UseQuantizedFilter(filter);
      std::vector<const QuantizedCodes*> shard_codes;
      double max_energy = 0.0;
      if (join_filter) {
        const ShardedRelation& data = relation->sharded();
        const int bits = filter_options_.bits_per_dim;
        shard_codes.reserve(static_cast<size_t>(data.num_shards()));
        for (int s = 0; s < data.num_shards(); ++s) {
          const QuantizedCodes* codes =
              data.shard(s).quantized_codes_or_null(bits);
          if (codes == nullptr) {
            // Compile failed ("filter.compile"): degrade to the unfiltered
            // early-abandoning scan below -- identical pairs, no screen.
            degradation_->filter_compile_failures.fetch_add(
                1, std::memory_order_relaxed);
            degradation_->degraded_queries.fetch_add(
                1, std::memory_order_relaxed);
            out.stats.degraded = true;
            shard_codes.clear();
            join_filter = false;
            break;
          }
          shard_codes.push_back(codes);
          max_energy =
              std::max(max_energy, codes->quantizer().max_row_energy());
        }
      }
      if (join_filter) {
        const ShardedRelation& data = relation->sharded();
        const int num_shards = data.num_shards();
        const double eps_sq = epsilon * epsilon;
        const double abandon_sq =
            SafeThreshold(eps_sq, 1e-9 * 2.0 * max_energy);
        const int cells = shard_codes[0]->cells();
        const int ranks = std::min(16, 2 * n);
        const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
        std::vector<std::vector<PairMatch>> block_pairs(max_blocks);
        std::vector<int64_t> block_checks(max_blocks, 0);
        std::vector<int64_t> block_scanned(max_blocks, 0);
        const int64_t grain = std::max<int64_t>(
            1, RecordGrain(n) / std::max<int64_t>(1, count));
        pool.ParallelFor(
            0, count, grain, [&](int64_t block, int64_t lo, int64_t hi) {
              std::vector<PairMatch>& local =
                  block_pairs[static_cast<size_t>(block)];
              int64_t checks = 0;
              int64_t scanned = 0;
              std::vector<double> lut(static_cast<size_t>(ranks) * cells);
              std::vector<int32_t> active;
              std::vector<double> scratch;
              std::vector<int64_t> survivors;
              for (int64_t i = lo; i < hi; ++i) {
                if (ShouldStop(ctx)) {
                  break;
                }
                if (alive[static_cast<size_t>(i)] == 0) {
                  continue;
                }
                const double* a = base_rows[static_cast<size_t>(i)];
                survivors.clear();
                for (int s = 0; s < num_shards; ++s) {
                  const QuantizedCodes& codes = *shard_codes[s];
                  const RelationShard& shard = data.shard(s);
                  // The screen covers the codes' frozen row prefix; the
                  // shard's delta rows below skip it and go straight to
                  // the exact check (the check decides membership, so the
                  // pair set is unchanged).
                  const int64_t screen_hi =
                      std::min(shard.size(), codes.size());
                  if (screen_hi > 0) {
                    FillPairScreenLut(codes.quantizer(), a,
                                      codes.scan_order().data(), ranks,
                                      lut.data());
                    active.clear();
                    for (int64_t r = 0; r < screen_hi; ++r) {
                      const int64_t g = shard.global_id(r);
                      if (shard.alive(r) && (symmetric ? g > i : g != i)) {
                        active.push_back(static_cast<int32_t>(r));
                      }
                    }
                    scanned += static_cast<int64_t>(active.size());
                    PairScreenScan(codes, lut.data(),
                                   codes.scan_order().data(), ranks,
                                   abandon_sq, 0, screen_hi, &active,
                                   &scratch);
                    for (const int32_t r : active) {
                      survivors.push_back(shard.global_id(r));
                    }
                  }
                  for (int64_t r = screen_hi; r < shard.size(); ++r) {
                    const int64_t g = shard.global_id(r);
                    if (shard.alive(r) && (symmetric ? g > i : g != i)) {
                      survivors.push_back(g);
                    }
                  }
                }
                std::sort(survivors.begin(), survivors.end());
                checks += static_cast<int64_t>(survivors.size());
                for (const int64_t j : survivors) {
                  const double dist_sq = RowDistanceSq(
                      a, base_rows[static_cast<size_t>(j)], n, eps_sq);
                  if (dist_sq <= eps_sq) {
                    local.push_back(PairMatch{i, j, std::sqrt(dist_sq)});
                  }
                }
              }
              block_checks[static_cast<size_t>(block)] = checks;
              block_scanned[static_cast<size_t>(block)] = scanned;
            });
        out.stats.used_filter = true;
        for (size_t block = 0; block < max_blocks; ++block) {
          out.stats.exact_checks += block_checks[block];
          out.stats.candidates += block_checks[block];
          out.stats.filter_scanned += block_scanned[block];
          out.pairs.insert(out.pairs.end(), block_pairs[block].begin(),
                           block_pairs[block].end());
        }
        SIMQ_RETURN_IF_ERROR(CheckExecution(exec));
        return out;
      }
      const int64_t row_stride = (2 * static_cast<int64_t>(n) + 7) &
                                 ~int64_t{7};  // cache-line aligned rows
      const auto materialize = [&](const Spectrum& mult) {
        const std::vector<double> mult_ri = InterleaveSpectrum(mult);
        std::vector<double> rows(static_cast<size_t>(count * row_stride),
                                 0.0);
        pool.ParallelFor(
            0, count, RecordGrain(n),
            [&](int64_t /*block*/, int64_t lo, int64_t hi) {
              for (int64_t i = lo; i < hi; ++i) {
                const double* src = base_rows[static_cast<size_t>(i)];
                double* dst = rows.data() + i * row_stride;
                for (int f = 0; f < 2 * n; f += 2) {
                  const double ar = src[f], ai = src[f + 1];
                  const double mr = mult_ri[static_cast<size_t>(f)];
                  const double mi = mult_ri[static_cast<size_t>(f + 1)];
                  dst[f] = ar * mr - ai * mi;
                  dst[f + 1] = ar * mi + ai * mr;
                }
              }
            });
        return rows;
      };
      // A symmetric join transforms both sides identically: share the
      // left side's premultiplied rows.
      const bool share_rows = symmetric && left_mult != nullptr;
      std::vector<double> left_rows;
      std::vector<double> right_rows;
      if (left_mult != nullptr) {
        left_rows = materialize(*left_mult);
      }
      if (right_mult != nullptr && !share_rows) {
        right_rows = materialize(*right_mult);
      }
      const auto left_row = [&](int64_t i) {
        return left_mult != nullptr ? left_rows.data() + i * row_stride
                                    : base_rows[static_cast<size_t>(i)];
      };
      const auto right_row = [&](int64_t j) -> const double* {
        if (right_mult == nullptr) {
          return base_rows[static_cast<size_t>(j)];
        }
        return (share_rows ? left_rows : right_rows).data() +
               j * row_stride;
      };
      const double limit_sq =
          threshold == kInf ? kInf : threshold * threshold;
      const double eps_sq = epsilon * epsilon;
      // Prefix screen for the early-abandoning method: the first two
      // coefficients of every (transformed) row packed contiguously, so a
      // pair that abandons immediately -- almost all of them at similarity
      // thresholds -- touches 32 sequential bytes instead of a cache line
      // of a 2 n-double strided row. The screen replays exactly the
      // kernels' prefix check, so it never changes the outcome.
      const bool screen = limit_sq != kInf && n >= 2;
      std::vector<double> right_prefix;
      if (screen) {
        right_prefix.resize(static_cast<size_t>(count) * 4);
        for (int64_t j = 0; j < count; ++j) {
          const double* row = right_row(j);
          double* p = right_prefix.data() + 4 * j;
          p[0] = row[0];
          p[1] = row[1];
          p[2] = row[2];
          p[3] = row[3];
        }
      }
      const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
      std::vector<std::vector<PairMatch>> block_pairs(max_blocks);
      std::vector<int64_t> block_checks(max_blocks, 0);
      // Each outer row costs up to count * n work: one row of outer loop
      // is already a coarse unit for any nontrivial relation.
      const int64_t grain =
          std::max<int64_t>(1, RecordGrain(n) / std::max<int64_t>(1, count));
      pool.ParallelFor(
          0, count, grain, [&](int64_t block, int64_t lo, int64_t hi) {
            std::vector<PairMatch>& local =
                block_pairs[static_cast<size_t>(block)];
            int64_t checks = 0;
            for (int64_t i = lo; i < hi; ++i) {
              if (ShouldStop(ctx)) {
                break;
              }
              if (alive[static_cast<size_t>(i)] == 0) {
                continue;
              }
              const double* a = left_row(i);
              const double a0 = a[0], a1 = a[1];
              const double a2 = n >= 2 ? a[2] : 0.0;
              const double a3 = n >= 2 ? a[3] : 0.0;
              for (int64_t j = symmetric ? i + 1 : 0; j < count; ++j) {
                if (j == i || alive[static_cast<size_t>(j)] == 0) {
                  continue;
                }
                ++checks;
                if (screen &&
                    PrefixScreenDead(right_prefix.data() + 4 * j, a0, a1,
                                     a2, a3, limit_sq)) {
                  continue;
                }
                const double dist_sq =
                    RowDistanceSq(a, right_row(j), n, limit_sq);
                // Squared-domain compare: sqrt only for accepted pairs.
                if (dist_sq <= eps_sq) {
                  local.push_back(PairMatch{i, j, std::sqrt(dist_sq)});
                }
              }
            }
            block_checks[static_cast<size_t>(block)] = checks;
          });
      for (size_t block = 0; block < max_blocks; ++block) {
        out.stats.exact_checks += block_checks[block];
        out.pairs.insert(out.pairs.end(), block_pairs[block].begin(),
                         block_pairs[block].end());
      }
    } else {
      // Non-spectral rule(s): transform every series once per side, then
      // compare in the time domain.
      std::vector<std::vector<double>> left_values(
          static_cast<size_t>(count));
      std::vector<std::vector<double>> right_values(
          static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        if (alive[static_cast<size_t>(i)] == 0) {
          continue;  // dead rows never join; skip their transforms too
        }
        const std::vector<double>& base = relation->record(i).normal_values;
        left_values[static_cast<size_t>(i)] =
            left_rule != nullptr ? left_rule->Apply(base) : base;
        right_values[static_cast<size_t>(i)] =
            right_rule != nullptr ? right_rule->Apply(base) : base;
      }
      for (int64_t i = 0; i < count; ++i) {
        if (alive[static_cast<size_t>(i)] == 0) {
          continue;
        }
        SIMQ_RETURN_IF_ERROR(CheckExecution(exec));
        for (int64_t j = symmetric ? i + 1 : 0; j < count; ++j) {
          if (j == i || alive[static_cast<size_t>(j)] == 0) {
            continue;
          }
          ++out.stats.exact_checks;
          const double distance =
              method == JoinMethod::kFullScan
                  ? EuclideanDistance(left_values[static_cast<size_t>(i)],
                                      right_values[static_cast<size_t>(j)])
                  : EuclideanDistanceEarlyAbandon(
                        left_values[static_cast<size_t>(i)],
                        right_values[static_cast<size_t>(j)], epsilon);
          if (distance <= epsilon) {
            out.pairs.push_back(PairMatch{i, j, distance});
          }
        }
      }
    }
    SIMQ_RETURN_IF_ERROR(CheckExecution(exec));
    return out;
  }

  // Index nested-loop methods (Table 1 c and d). Probe side: left rule
  // applied to the probe's coefficients; data side: right rule applied to
  // the index on the fly (Algorithm 1).
  std::optional<LinearTransform> left_transform;
  std::optional<LinearTransform> right_transform;
  std::vector<DimAffine> affines;
  const std::vector<DimAffine>* affines_ptr = nullptr;
  const Spectrum* post_left = nullptr;
  const Spectrum* post_right = nullptr;
  if (method == JoinMethod::kIndexTransform) {
    if (!left_spectral || !right_spectral) {
      return Status::FailedPrecondition(
          "index join requires spectral transformations");
    }
    if (left_rule != nullptr) {
      left_transform = left_rule->IndexTransform(n, config_.num_coefficients);
      if (!left_transform.has_value()) {
        return Status::FailedPrecondition(
            "left transformation has no index form");
      }
    }
    if (right_rule != nullptr) {
      right_transform =
          right_rule->IndexTransform(n, config_.num_coefficients);
      if (!right_transform.has_value() ||
          !right_transform->IsSafeIn(config_.space)) {
        return Status::FailedPrecondition(
            "right transformation is not safe in the configured feature "
            "space");
      }
      affines = LowerToFeatureSpace(*right_transform, config_);
      affines_ptr = &affines;
    }
    post_left = left_mult;
    post_right = right_mult;
  }

  // Index nested loop over the shard grid: every probe record is paired
  // with every shard's tree (probe side x shard trees), parallelized over
  // probe blocks -- concurrent index read traversals are safe on both
  // engines (the node-access counters are atomic, the packed snapshots
  // immutable), and per-block pair buffers merged in block order keep the
  // output deterministic. RunOnShardEngines resolves every shard's engine
  // before the fan-out, so workers never contend on a snapshot rebuild
  // lock. For each probe, candidates arrive shard by shard; the union
  // over shards is exactly the unsharded candidate superset, and the
  // exact checks (over gathered rows) decide membership identically.
  const std::vector<const double*> base_rows =
      GatherSpectrumRows(relation->sharded());
  std::vector<double> post_left_ri;
  std::vector<double> post_right_ri;
  const double* post_left_ptr = nullptr;
  const double* post_right_ptr = nullptr;
  if (post_left != nullptr) {
    post_left_ri = InterleaveSpectrum(*post_left);
    post_left_ptr = post_left_ri.data();
  }
  if (post_right != nullptr) {
    post_right_ri = InterleaveSpectrum(*post_right);
    post_right_ptr = post_right_ri.data();
  }
  const double eps_sq = epsilon * epsilon;
  out.stats.used_index = true;
  ThreadPool& pool = ThreadPool::Global();
  const size_t max_blocks = static_cast<size_t>(pool.max_blocks());
  std::vector<std::vector<PairMatch>> block_pairs(max_blocks);
  std::vector<int64_t> block_checks(max_blocks, 0);
  std::vector<int64_t> block_candidates(max_blocks, 0);
  const IndexEngine join_engine =
      ResolveQueryEngine(relation->sharded(), &out.stats.degraded);
  out.stats.node_accesses = RunOnShardEngines(
      relation->sharded(), join_engine, [&](const auto& trees) {
        pool.ParallelFor(
            0, count, /*min_grain=*/16,
            [&](int64_t block, int64_t lo, int64_t hi) {
              std::vector<PairMatch>& local =
                  block_pairs[static_cast<size_t>(block)];
              std::vector<int64_t> candidates;
              int64_t checks = 0;
              int64_t candidate_count = 0;
              for (int64_t i = lo; i < hi; ++i) {
                if (ShouldStop(ctx)) {
                  break;
                }
                if (alive[static_cast<size_t>(i)] == 0) {
                  continue;
                }
                const Record& probe = relation->record(i);
                std::vector<Complex> query_coeffs = ExtractCoefficients(
                    probe.features.normal_spectrum, config_.num_coefficients);
                if (left_transform.has_value()) {
                  query_coeffs = left_transform->Apply(query_coeffs);
                }
                const SearchRegion region =
                    SearchRegion::MakeRange(query_coeffs, epsilon, config_);
                const double* a = base_rows[static_cast<size_t>(i)];
                for (const auto* tree : trees) {
                  candidates.clear();
                  tree->Search(region, affines_ptr, &candidates);
                  candidate_count += static_cast<int64_t>(candidates.size());
                  for (const int64_t j : candidates) {
                    if (j == i || alive[static_cast<size_t>(j)] == 0) {
                      continue;
                    }
                    ++checks;
                    const double dist_sq = RowDistanceSqTwoSided(
                        a, base_rows[static_cast<size_t>(j)], post_left_ptr,
                        post_right_ptr, n, eps_sq);
                    if (dist_sq <= eps_sq) {
                      local.push_back(PairMatch{i, j, std::sqrt(dist_sq)});
                    }
                  }
                }
                if (join_engine == IndexEngine::kPacked) {
                  // Delta scan per probe: inner rows past each shard's
                  // packed coverage are invisible to the snapshots --
                  // exact-check them directly (the check decides
                  // membership, so the pair set is unchanged).
                  const ShardedRelation& data = relation->sharded();
                  for (int s = 0; s < data.num_shards(); ++s) {
                    const RelationShard& shard = data.shard(s);
                    for (int64_t r = shard.packed_covered();
                         r < shard.size(); ++r) {
                      const int64_t j = shard.global_id(r);
                      if (j == i || !shard.alive(r)) {
                        continue;
                      }
                      ++checks;
                      const double dist_sq = RowDistanceSqTwoSided(
                          a, base_rows[static_cast<size_t>(j)],
                          post_left_ptr, post_right_ptr, n, eps_sq);
                      if (dist_sq <= eps_sq) {
                        local.push_back(PairMatch{i, j, std::sqrt(dist_sq)});
                      }
                    }
                  }
                }
              }
              block_checks[static_cast<size_t>(block)] = checks;
              block_candidates[static_cast<size_t>(block)] = candidate_count;
            });
      });
  for (size_t block = 0; block < max_blocks; ++block) {
    out.stats.exact_checks += block_checks[block];
    out.stats.candidates += block_candidates[block];
    out.pairs.insert(out.pairs.end(), block_pairs[block].begin(),
                     block_pairs[block].end());
  }
  SIMQ_RETURN_IF_ERROR(CheckExecution(exec));
  return out;
}

}  // namespace simq
