/// Checksummed append-only write-ahead log for mutations between snapshots.
///
/// The durability story (DESIGN.md "Durability & fault handling"): the
/// snapshot (core/persistence.h) is the checkpoint; the WAL records every
/// mutation applied since. On open, the snapshot is loaded and the WAL
/// replayed on top, so a kill -9 at any point loses at most the
/// unacknowledged tail of the log and never yields a silently wrong
/// database.
///
/// On-disk layout:
///   magic "SIMQWAL1"
///   per frame: u32 payload_length, u32 crc32(payload), payload bytes
///   payload:   u8 record_type, then type-specific fields
///     type 1 create-relation: u32 name_len, bytes name
///     type 2 insert:          u32 rel_len, bytes rel, u32 id_len, bytes id,
///                             u64 n, n doubles
///     type 3 bulk-load:       u32 rel_len, bytes rel, u64 count,
///                             per series: u32 id_len, bytes id, u64 n,
///                             n doubles
///     type 4 delete:          u32 rel_len, bytes rel, u64 series_id
///
/// Replay rules: frames are applied in order until the first frame whose
/// framing runs past end-of-file or whose CRC fails -- that is a torn tail
/// from a crash mid-append, and replay truncates the file back to the last
/// valid frame so later appends never follow garbage. A frame whose CRC
/// passes but whose payload cannot be parsed or applied is real corruption
/// (kCorruption) -- the log does not match its snapshot, and replay stops
/// without guessing.

#ifndef SIMQ_CORE_WAL_H_
#define SIMQ_CORE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace simq {

// What ReplayWal found and did.
struct WalReplayStats {
  uint64_t frames_applied = 0;   // valid frames applied to the database
  uint64_t valid_bytes = 0;      // file prefix covered by valid frames
  bool torn_tail = false;        // trailing bytes failed framing/CRC
  uint64_t truncated_bytes = 0;  // torn bytes removed from the file
};

// Appends checksummed mutation frames to a WAL file. Not thread-safe; the
// owner (the query service) serializes appends under its write lock.
// Movable, not copyable. Destroying the writer closes the file without
// syncing -- call Sync() at every acknowledgement point.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending, creating it (with the magic) if missing.
  // An existing file must start with the WAL magic; replay and torn-tail
  // truncation are ReplayWal's job and must happen before Open so appends
  // land after the last valid frame.
  static Result<WalWriter> Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }

  Status AppendCreateRelation(const std::string& name);
  Status AppendInsert(const std::string& relation, const TimeSeries& series);
  Status AppendDelete(const std::string& relation, int64_t id);
  Status AppendBulkLoad(const std::string& relation,
                        const std::vector<TimeSeries>& series);

  // Makes every appended frame durable (fdatasync).
  Status Sync();

  // Empties the log back to just the magic (after a checkpoint snapshot
  // has made the logged mutations durable elsewhere) and syncs.
  Status Truncate();

 private:
  Status AppendFrame(const std::string& payload);

  int fd_ = -1;
  std::string path_;
};

// Applies the valid prefix of the WAL at `path` to `db`, truncating any
// torn tail (see replay rules above). A missing file is not an error --
// the stats simply stay zero. `stats` may be null.
Status ReplayWal(const std::string& path, Database* db,
                 WalReplayStats* stats);

// Convenience for tests and recovery tools: loads the snapshot at
// `snapshot_path` if it exists (otherwise starts an empty database with
// `config`), then replays the WAL at `wal_path` on top.
Result<Database> OpenDurableDatabase(const FeatureConfig& config,
                                     const std::string& snapshot_path,
                                     const std::string& wal_path,
                                     WalReplayStats* stats);

}  // namespace simq

#endif  // SIMQ_CORE_WAL_H_
