/// Horizontal sharding of a relation's data plane.
///
/// A `ShardedRelation` partitions a relation's derived data -- the columnar
/// FeatureStore and the R*-tree over feature points -- into N
/// `RelationShard`s. Record identity stays global: ids are dense in
/// insertion order exactly as in the unsharded engine, shard trees store
/// *global* ids, and a locator (two flat arrays, global id -> (shard,
/// local row)) maps between the two spaces in O(1). Because every
/// per-record computation (normal form, spectrum, distance kernels) is a
/// pure function of that record alone, partitioning cannot change any
/// distance the engine computes -- the scatter-gather drivers in
/// core/database.cc therefore return answers bit-identical to the
/// unsharded engine (see DESIGN.md "Sharded execution").
///
/// Partitioning policies (ShardingOptions::Partition):
///   * kHash:  shard = global id mod N. Balanced for the dense id
///             sequence; inserts keep rotating across shards.
///   * kRange: bulk loads split the batch into N contiguous id ranges;
///             incremental inserts route to the currently smallest shard
///             (ties to the lowest shard index). Deterministic.
///
/// Mutations follow the unsharded contract: callers must hold exclusive
/// access (the query service's writer lock). A mutation bumps only the
/// epoch of the shard it touched. The relation epoch reported to the
/// service layer is the sum of the shard epochs: monotone, and it changes
/// whenever any shard changes, so result-cache keys and snapshot
/// isolation remain correct (service/query_service.h).
///
/// Delta layer (DESIGN.md "Delta layer & MVCC generations"): with the
/// delta layer enabled (the default), a mutation does NOT invalidate the
/// shard's compiled artifacts. The packed snapshot and quantized codes
/// each cover a row prefix [0, covered) frozen at their compile; rows at
/// or past an artifact's coverage are that artifact's *delta* and the
/// scatter-gather drivers scan them exactly (the pointer tree and the
/// columnar store always cover every row, so the delta needs no second
/// index). Deletes are tombstones in a per-shard aliveness bitmap,
/// filtered on every read path and shed from the tree at recompaction.
/// `BuildRecompaction` (under a shared lock: readers keep running, the
/// store is frozen) compiles a fresh live-only tree + snapshot + codes
/// per shard; `PublishRecompaction` (under the exclusive lock, brief)
/// catches up rows appended since the build, swaps the artifacts in, and
/// bumps the shard *generation* -- a second monotone counter, summed like
/// the epoch, that counts published snapshot generations.
///
/// Thread-safety: all const accessors are safe under concurrent readers
/// (the packed snapshot cache takes its own mutex; node-access counters
/// are relaxed atomics). `Append`/`BulkLoad`/`Delete`/
/// `PublishRecompaction` require exclusive access; `BuildRecompaction`
/// requires shared access (no concurrent mutation).

#ifndef SIMQ_CORE_SHARDED_RELATION_H_
#define SIMQ_CORE_SHARDED_RELATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/feature_store.h"
#include "filter/quantized_codes.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/logging.h"
#include "util/status.h"

namespace simq {

/// How a Database partitions each relation's data plane.
struct ShardingOptions {
  /// Number of horizontal shards per relation; 1 = the unsharded engine
  /// (a single shard owning everything). Values below 1 clamp to 1.
  int num_shards = 1;

  enum class Partition {
    kHash,   ///< shard = global id mod num_shards
    kRange,  ///< contiguous id ranges per bulk load; inserts fill smallest
  };
  Partition partition = Partition::kHash;

  /// Options with num_shards taken from the SIMQ_SHARDS environment
  /// variable when it is set to a positive integer (benches and the shell
  /// use this; library callers pass options explicitly).
  static ShardingOptions FromEnv();
};

/// One horizontal shard: a FeatureStore slice, the R*-tree over that
/// slice's feature points (storing global record ids), and a lazily
/// compiled packed snapshot of it. Rows are indexed by *local* position;
/// `global_id(local)` maps back to the record id.
class RelationShard {
 public:
  RelationShard(int dims, const RTree::Options& index_options);

  /// One shard's freshly compiled recompaction artifacts, built under a
  /// shared lock and handed to PublishRecompaction under the exclusive
  /// lock.
  struct Recompaction {
    std::unique_ptr<RTree> tree;            // live rows of [0, build_rows)
    std::unique_ptr<PackedRTree> packed;    // snapshot of `tree`
    std::unique_ptr<QuantizedCodes> codes;  // all rows of [0, build_rows)
    int64_t build_rows = 0;   // shard size frozen at build time
    int64_t shed = 0;         // dead rows omitted from `tree`
    int bits = 0;             // code width `codes` was built at
  };

  RelationShard(const RelationShard&) = delete;
  RelationShard& operator=(const RelationShard&) = delete;

  /// Columnar derived data of this shard's records, local row order.
  const FeatureStore& store() const { return store_; }
  /// The shard's mutable ground-truth index. Entry ids are global.
  const RTree& index() const { return *index_; }
  /// Packed snapshot of index(); recompiled lazily when stale. With the
  /// delta layer enabled it goes stale only on bulk load -- appends and
  /// deletes leave it in place and grow its delta instead (see
  /// packed_covered()). Safe against concurrent queries.
  const PackedRTree& packed_index() const {
    return packed_.Get(*index_, size());
  }
  /// Bit-packed scalar-quantized codes of this shard's spectrum rows at
  /// `bits` bits per dimension (filter/quantized_codes.h): derived data
  /// under the same stale-on-mutation contract as the packed snapshot --
  /// a mutation of this shard invalidates only this shard's codes, and
  /// the next filtered query recompiles them. Safe against concurrent
  /// queries.
  const QuantizedCodes& quantized_codes(int bits) const {
    return quantized_.Get(store_, bits);
  }

  /// Degradation-aware variants: null when the (re)compile fails -- the
  /// "packed.compile" / "filter.compile" failpoints, standing in for any
  /// future real compile failure. Callers (core/database.cc engine
  /// resolution) fall back to the pointer tree / exact scan and count the
  /// degradation instead of aborting.
  const PackedRTree* packed_index_or_null() const {
    return packed_.TryGet(*index_, /*can_fail=*/true, size());
  }
  const QuantizedCodes* quantized_codes_or_null(int bits) const {
    return quantized_.TryGet(store_, bits);
  }
  /// Already-compiled fresh codes at `bits`, or null -- never compiles.
  /// The EXPLAIN cardinality estimator reads the quantizer grid through
  /// this so estimating never does (or fails) a code build.
  const QuantizedCodes* quantized_codes_if_fresh(int bits) const;

  int64_t size() const { return static_cast<int64_t>(global_ids_.size()); }
  int64_t global_id(int64_t local) const {
    return global_ids_[static_cast<size_t>(local)];
  }
  /// Monotone per-shard mutation counter (see file comment).
  uint64_t epoch() const { return epoch_; }
  /// Monotone count of published recompaction generations (file comment).
  uint64_t generation() const { return generation_; }

  /// Tombstone filter: false once local row `local` has been deleted.
  /// Every read path must drop dead rows; their store/code rows stay in
  /// place (ids are dense and rows never move) until recompaction sheds
  /// them from the tree.
  bool alive(int64_t local) const {
    return alive_[static_cast<size_t>(local)] != 0;
  }
  /// Dead rows still present as entries of the current pointer tree
  /// (i.e. not yet shed by a recompaction publish).
  int64_t pending_tombstones() const { return pending_tombstones_; }
  /// Rows covered by the current packed snapshot; rows at or past this
  /// are the snapshot's delta (0 when no fresh snapshot exists).
  int64_t packed_covered() const { return packed_.covered(); }
  /// Mutations (inserts + deletes) applied since the last recompaction
  /// publish -- the delta-pressure signal the service thresholds on.
  int64_t mutations_since_publish() const { return mutations_since_publish_; }

 private:
  friend class ShardedRelation;

  FeatureStore store_;
  std::vector<int64_t> global_ids_;  // local row -> global record id
  std::vector<uint8_t> alive_;       // local row -> 0 once deleted
  std::vector<double> points_;       // local row-major feature points
  std::unique_ptr<RTree> index_;
  PackedSnapshotCache packed_;
  QuantizedCodesCache quantized_;
  uint64_t epoch_ = 0;
  uint64_t generation_ = 0;
  int64_t pending_tombstones_ = 0;
  int64_t mutations_since_publish_ = 0;
};

class ShardedRelation {
 public:
  /// Derived data of one record, handed to BulkLoad's per-record callback.
  /// The pointers must stay valid until BulkLoad returns (they normally
  /// point into the caller's Record).
  struct RowData {
    const SeriesFeatures* features = nullptr;
    const std::vector<double>* normal_values = nullptr;
    std::vector<double> point;  // feature point for the shard index
  };
  /// Computes one record's derived data. BulkLoad invokes it from
  /// concurrent shard tasks, each global id exactly once; the callback
  /// must only touch state owned by that id (it may write records_[id]).
  using LoadFn = std::function<RowData(int64_t global_id)>;

  ShardedRelation(int dims, const RTree::Options& index_options,
                  const ShardingOptions& options);

  ShardedRelation(const ShardedRelation&) = delete;
  ShardedRelation& operator=(const ShardedRelation&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const RelationShard& shard(int s) const { return *shards_[static_cast<size_t>(s)]; }
  const ShardingOptions& options() const { return options_; }

  /// Total records across shards (== the relation's record count).
  int64_t size() const { return static_cast<int64_t>(shard_of_.size()); }
  /// Relation epoch: the sum of the shard epochs. Monotone; changes on
  /// every mutation of any shard.
  uint64_t epoch() const;
  /// Relation generation: the sum of the shard generations. Monotone;
  /// changes on every recompaction publish of any shard.
  uint64_t generation() const;

  /// Whether mutations leave compiled artifacts in place (delta layer) or
  /// invalidate them (legacy rebuild-per-query; the fuzz oracle). Flip
  /// only under exclusive access.
  bool delta_enabled() const { return delta_enabled_; }
  void set_delta_enabled(bool enabled) { delta_enabled_ = enabled; }

  /// Tombstone filter by global id.
  bool alive(int64_t g) const {
    return shards_[static_cast<size_t>(shard_of(g))]->alive(local_of(g));
  }
  /// Live records across shards.
  int64_t live_size() const { return size() - dead_; }
  /// Rows not covered by any shard's packed snapshot (EXPLAIN
  /// `delta_rows`).
  int64_t delta_rows() const;
  /// Dead rows not yet shed from any shard's tree.
  int64_t pending_tombstones() const;
  /// Largest per-shard mutations_since_publish -- the recompaction
  /// trigger signal.
  int64_t delta_pressure() const;

  /// Locator: which shard holds global id `g`, and at which local row.
  int shard_of(int64_t g) const { return shard_of_[static_cast<size_t>(g)]; }
  int64_t local_of(int64_t g) const { return local_of_[static_cast<size_t>(g)]; }

  /// Row accessors by global id (one locator hop; the scan drivers iterate
  /// shards locally instead and never pay it).
  const double* SpectrumRow(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().SpectrumRow(local_of(g));
  }
  const double* NormalRow(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().NormalRow(local_of(g));
  }
  double mean(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().mean(local_of(g));
  }
  double std_dev(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().std_dev(local_of(g));
  }

  /// Routes one new record (global id == size()) to its shard: appends to
  /// the shard store, inserts the feature point into the shard tree under
  /// the global id, and bumps that shard's epoch. With the delta layer
  /// enabled the shard's compiled artifacts stay valid (the new row is
  /// their delta); otherwise they are invalidated. Caller holds exclusive
  /// access.
  void Append(const SeriesFeatures& features,
              const std::vector<double>& normal_values,
              const std::vector<double>& point);

  /// Parallel per-shard bulk load of `count` records with global ids
  /// [size(), size() + count). Partitions the ids per the configured
  /// policy, then builds every shard concurrently (ThreadPool::Global()):
  /// each shard task computes its records' derived data via `load_row`,
  /// fills the shard store in ascending global-id order, and STR
  /// bulk-loads the shard tree. Each loaded shard's epoch is bumped once.
  /// Caller holds exclusive access.
  void BulkLoad(int64_t count, const LoadFn& load_row);

  /// Tombstones global id `g` (false when it is already dead): marks the
  /// row dead, bumps the owning shard's epoch, and -- with the delta
  /// layer enabled -- leaves every compiled artifact in place (read paths
  /// filter on alive()). Caller holds exclusive access.
  bool Delete(int64_t g);

  /// Compiles fresh recompaction artifacts for every shard: a live-only
  /// STR-built tree, its packed snapshot, and quantized codes at `bits`
  /// bits per dimension (skipped when `bits` is outside the supported
  /// widths). Requires shared access -- concurrent readers are fine, the
  /// store must not grow underneath. Fails only at the "recompact.build"
  /// failpoint.
  Status BuildRecompaction(int bits,
                           std::vector<RelationShard::Recompaction>* out) const;

  /// Publishes `built` artifacts: per shard, inserts rows appended since
  /// the build into the fresh tree, swaps it in, installs the snapshot
  /// and codes at their build coverage, bumps the shard generation, and
  /// resets the delta-pressure counter. Requires exclusive access. The
  /// "recompact.publish.before" / ".mid" / ".after" failpoints bracket
  /// the swap (mid fires between shards).
  Status PublishRecompaction(std::vector<RelationShard::Recompaction> built);

 private:
  /// Shard that receives the next incremental append.
  int RouteNext() const;

  int dims_;
  RTree::Options index_options_;  // for recompaction's fresh trees
  ShardingOptions options_;
  std::vector<std::unique_ptr<RelationShard>> shards_;
  std::vector<int32_t> shard_of_;  // global id -> shard
  std::vector<int64_t> local_of_;  // global id -> local row within shard
  int64_t dead_ = 0;               // total tombstoned rows
  bool delta_enabled_ = true;
};

}  // namespace simq

#endif  // SIMQ_CORE_SHARDED_RELATION_H_
