/// Horizontal sharding of a relation's data plane.
///
/// A `ShardedRelation` partitions a relation's derived data -- the columnar
/// FeatureStore and the R*-tree over feature points -- into N
/// `RelationShard`s. Record identity stays global: ids are dense in
/// insertion order exactly as in the unsharded engine, shard trees store
/// *global* ids, and a locator (two flat arrays, global id -> (shard,
/// local row)) maps between the two spaces in O(1). Because every
/// per-record computation (normal form, spectrum, distance kernels) is a
/// pure function of that record alone, partitioning cannot change any
/// distance the engine computes -- the scatter-gather drivers in
/// core/database.cc therefore return answers bit-identical to the
/// unsharded engine (see DESIGN.md "Sharded execution").
///
/// Partitioning policies (ShardingOptions::Partition):
///   * kHash:  shard = global id mod N. Balanced for the dense id
///             sequence; inserts keep rotating across shards.
///   * kRange: bulk loads split the batch into N contiguous id ranges;
///             incremental inserts route to the currently smallest shard
///             (ties to the lowest shard index). Deterministic.
///
/// Mutations follow the unsharded contract: callers must hold exclusive
/// access (the query service's writer lock). A mutation bumps only the
/// epoch of the shard it touched and invalidates only that shard's packed
/// snapshot -- the other N-1 snapshots stay warm, which is the sharded
/// engine's main win under mutation churn. The relation epoch reported to
/// the service layer is the sum of the shard epochs: monotone, and it
/// changes whenever any shard changes, so result-cache keys and snapshot
/// isolation remain correct (service/query_service.h).
///
/// Thread-safety: all const accessors are safe under concurrent readers
/// (the packed snapshot cache takes its own mutex; node-access counters
/// are relaxed atomics). `Append`/`BulkLoad` require exclusive access.

#ifndef SIMQ_CORE_SHARDED_RELATION_H_
#define SIMQ_CORE_SHARDED_RELATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/feature_store.h"
#include "filter/quantized_codes.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/logging.h"

namespace simq {

/// How a Database partitions each relation's data plane.
struct ShardingOptions {
  /// Number of horizontal shards per relation; 1 = the unsharded engine
  /// (a single shard owning everything). Values below 1 clamp to 1.
  int num_shards = 1;

  enum class Partition {
    kHash,   ///< shard = global id mod num_shards
    kRange,  ///< contiguous id ranges per bulk load; inserts fill smallest
  };
  Partition partition = Partition::kHash;

  /// Options with num_shards taken from the SIMQ_SHARDS environment
  /// variable when it is set to a positive integer (benches and the shell
  /// use this; library callers pass options explicitly).
  static ShardingOptions FromEnv();
};

/// One horizontal shard: a FeatureStore slice, the R*-tree over that
/// slice's feature points (storing global record ids), and a lazily
/// compiled packed snapshot of it. Rows are indexed by *local* position;
/// `global_id(local)` maps back to the record id.
class RelationShard {
 public:
  RelationShard(int dims, const RTree::Options& index_options);

  RelationShard(const RelationShard&) = delete;
  RelationShard& operator=(const RelationShard&) = delete;

  /// Columnar derived data of this shard's records, local row order.
  const FeatureStore& store() const { return store_; }
  /// The shard's mutable ground-truth index. Entry ids are global.
  const RTree& index() const { return *index_; }
  /// Packed snapshot of index(); recompiled lazily after a mutation of
  /// *this shard only*. Safe against concurrent queries.
  const PackedRTree& packed_index() const { return packed_.Get(*index_); }
  /// Bit-packed scalar-quantized codes of this shard's spectrum rows at
  /// `bits` bits per dimension (filter/quantized_codes.h): derived data
  /// under the same stale-on-mutation contract as the packed snapshot --
  /// a mutation of this shard invalidates only this shard's codes, and
  /// the next filtered query recompiles them. Safe against concurrent
  /// queries.
  const QuantizedCodes& quantized_codes(int bits) const {
    return quantized_.Get(store_, bits);
  }

  /// Degradation-aware variants: null when the (re)compile fails -- the
  /// "packed.compile" / "filter.compile" failpoints, standing in for any
  /// future real compile failure. Callers (core/database.cc engine
  /// resolution) fall back to the pointer tree / exact scan and count the
  /// degradation instead of aborting.
  const PackedRTree* packed_index_or_null() const {
    return packed_.TryGet(*index_);
  }
  const QuantizedCodes* quantized_codes_or_null(int bits) const {
    return quantized_.TryGet(store_, bits);
  }
  /// Already-compiled fresh codes at `bits`, or null -- never compiles.
  /// The EXPLAIN cardinality estimator reads the quantizer grid through
  /// this so estimating never does (or fails) a code build.
  const QuantizedCodes* quantized_codes_if_fresh(int bits) const;

  int64_t size() const { return static_cast<int64_t>(global_ids_.size()); }
  int64_t global_id(int64_t local) const {
    return global_ids_[static_cast<size_t>(local)];
  }
  /// Monotone per-shard mutation counter (see file comment).
  uint64_t epoch() const { return epoch_; }

 private:
  friend class ShardedRelation;

  FeatureStore store_;
  std::vector<int64_t> global_ids_;  // local row -> global record id
  std::unique_ptr<RTree> index_;
  PackedSnapshotCache packed_;
  QuantizedCodesCache quantized_;
  uint64_t epoch_ = 0;
};

class ShardedRelation {
 public:
  /// Derived data of one record, handed to BulkLoad's per-record callback.
  /// The pointers must stay valid until BulkLoad returns (they normally
  /// point into the caller's Record).
  struct RowData {
    const SeriesFeatures* features = nullptr;
    const std::vector<double>* normal_values = nullptr;
    std::vector<double> point;  // feature point for the shard index
  };
  /// Computes one record's derived data. BulkLoad invokes it from
  /// concurrent shard tasks, each global id exactly once; the callback
  /// must only touch state owned by that id (it may write records_[id]).
  using LoadFn = std::function<RowData(int64_t global_id)>;

  ShardedRelation(int dims, const RTree::Options& index_options,
                  const ShardingOptions& options);

  ShardedRelation(const ShardedRelation&) = delete;
  ShardedRelation& operator=(const ShardedRelation&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const RelationShard& shard(int s) const { return *shards_[static_cast<size_t>(s)]; }
  const ShardingOptions& options() const { return options_; }

  /// Total records across shards (== the relation's record count).
  int64_t size() const { return static_cast<int64_t>(shard_of_.size()); }
  /// Relation epoch: the sum of the shard epochs. Monotone; changes on
  /// every mutation of any shard.
  uint64_t epoch() const;

  /// Locator: which shard holds global id `g`, and at which local row.
  int shard_of(int64_t g) const { return shard_of_[static_cast<size_t>(g)]; }
  int64_t local_of(int64_t g) const { return local_of_[static_cast<size_t>(g)]; }

  /// Row accessors by global id (one locator hop; the scan drivers iterate
  /// shards locally instead and never pay it).
  const double* SpectrumRow(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().SpectrumRow(local_of(g));
  }
  const double* NormalRow(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().NormalRow(local_of(g));
  }
  double mean(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().mean(local_of(g));
  }
  double std_dev(int64_t g) const {
    const RelationShard& s = *shards_[static_cast<size_t>(shard_of(g))];
    return s.store().std_dev(local_of(g));
  }

  /// Routes one new record (global id == size()) to its shard: appends to
  /// the shard store, inserts the feature point into the shard tree under
  /// the global id, invalidates that shard's snapshot, and bumps that
  /// shard's epoch. Caller holds exclusive access.
  void Append(const SeriesFeatures& features,
              const std::vector<double>& normal_values,
              const std::vector<double>& point);

  /// Parallel per-shard bulk load of `count` records with global ids
  /// [size(), size() + count). Partitions the ids per the configured
  /// policy, then builds every shard concurrently (ThreadPool::Global()):
  /// each shard task computes its records' derived data via `load_row`,
  /// fills the shard store in ascending global-id order, and STR
  /// bulk-loads the shard tree. Each loaded shard's epoch is bumped once.
  /// Caller holds exclusive access.
  void BulkLoad(int64_t count, const LoadFn& load_row);

 private:
  /// Shard that receives the next incremental append.
  int RouteNext() const;

  ShardingOptions options_;
  std::vector<std::unique_ptr<RelationShard>> shards_;
  std::vector<int32_t> shard_of_;  // global id -> shard
  std::vector<int64_t> local_of_;  // global id -> local row within shard
};

}  // namespace simq

#endif  // SIMQ_CORE_SHARDED_RELATION_H_
