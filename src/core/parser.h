/// Textual surface syntax for the query language L.
///
/// Grammar (keywords case-insensitive, '#' introduces a stored-series name):
///
///   query    := [EXPLAIN] (range | pairs | nearest)
///   range    := RANGE ident WITHIN number OF series clauses
///   pairs    := PAIRS ident WITHIN number clauses
///   nearest  := NEAREST integer ident TO series clauses
///   series   := '#' ident | '[' number (',' number)* ']'
///   clauses  := [USING texpr [VS texpr]] [MODE (NORMAL|RAW|FILTERED|EXACT)]
///               [VIA (AUTO|INDEX|SCAN|FULLSCAN)] [PRENORMALIZED]
///               [MEAN number number] [STD number number]
///
/// MODE NORMAL|RAW picks the distance semantics; MODE FILTERED|EXACT
/// toggles the quantized filter engine for this query (answers
/// unchanged; see core/query.h FilterMode and DESIGN.md "Quantized
/// filter").
///
/// `USING left VS right` is valid only in PAIRS queries and applies `left`
/// to one side and `right` to the other, expressing the join r >< T(r)
/// (e.g. PAIRS stocks WITHIN 3 USING mavg(20) VS reverse|mavg(20) finds
/// hedging pairs: series moving opposite to each other after smoothing).
///   texpr    := tcall ('|' tcall)*           -- left-to-right composition
///   tcall    := ident ['(' number (',' number)* ')']
///
/// Examples:
///   RANGE stocks WITHIN 2.5 OF #ibm USING mavg(20)
///   PAIRS stocks WITHIN 1.0 USING mavg(20)|reverse VIA INDEX
///   NEAREST 5 stocks TO [1.0, 2.0, 1.5, 0.5] USING warp(2) MODE NORMAL
///
/// Rule names accepted in tcall are those of core/transformation.h's
/// MakeRuleByName. MEAN/STD clauses attach [GK95] statistic predicates to
/// the pattern. The EXPLAIN prefix sets Query::explain; execution front
/// ends then report the plan (strategy, engine, cache status) with the
/// result.

#ifndef SIMQ_CORE_PARSER_H_
#define SIMQ_CORE_PARSER_H_

#include <string>

#include "core/query.h"
#include "util/status.h"

namespace simq {

// Parses a single query statement. Returns InvalidArgument with a
// position-annotated message on syntax errors.
Result<Query> ParseQuery(const std::string& text);

}  // namespace simq

#endif  // SIMQ_CORE_PARSER_H_
