/// The similarity database: named relations of equal-length time series,
/// each backed by an R*-tree over normal-form DFT features (the "k-index" of
/// [AFS93]/[RM97] §4), plus the planner/executor for the query language L.
///
/// Execution strategies:
///  * Index (Algorithm 2): build the search rectangle (geom/search_region.h)
///    from the query's first k coefficients, traverse the R*-tree applying
///    the safe transformation to every MBR/point on the fly, then postprocess
///    candidates with the exact full-length frequency-domain distance (early
///    abandoning). By Lemma 1 this never produces false dismissals.
///  * Scan: early-abandoning sequential scan over the frequency-domain
///    relation (the paper's "good implementation" of the baseline), or a
///    full scan without abandoning (Table 1 method a). Scans and the
///    nested-loop sides of joins execute as batched columnar kernels over
///    the relation's FeatureStore, parallelized over record blocks (see
///    DESIGN.md "Columnar execution").
/// The planner (strategy kAuto) uses the index whenever the distance mode is
/// normal-form and the transformation has a safe spectral lowering;
/// everything else falls back to scanning, including arbitrary non-spectral
/// rules (which are applied in the time domain).

#ifndef SIMQ_CORE_DATABASE_H_
#define SIMQ_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feature_store.h"
#include "core/query.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "filter/quantizer.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace simq {

// One stored series with everything precomputed for query processing.
struct Record {
  int64_t id = 0;
  std::string name;
  std::vector<double> raw;            // original values
  std::vector<double> normal_values;  // Goldin-Kanellakis normal form
  SeriesFeatures features;            // mean, std, normal-form spectrum
};

// A unary relation of series. All members must have one common length
// (established by the first insert); cross-length similarity is expressed
// through time-warp transformations, not mixed relations.
//
// The relation keeps two synchronized views of its records: the global
// row store (records(), names, dense insertion-order ids) and a sharded
// data plane (sharded(): per-shard FeatureStore columns + R*-tree +
// packed snapshot; see core/sharded_relation.h). With the default
// ShardingOptions this is one shard and behaves exactly like the
// pre-sharding engine.
class Relation {
 public:
  Relation(std::string name, const FeatureConfig& config,
           RTree::Options index_options, const ShardingOptions& sharding);

  const std::string& name() const { return name_; }
  int64_t size() const { return static_cast<int64_t>(records_.size()); }
  int series_length() const { return series_length_; }
  const Record& record(int64_t id) const;
  const std::vector<Record>& records() const { return records_; }

  // The sharded data plane: per-shard columnar stores and indexes, the
  // global-id locator, and the rolled-up relation epoch.
  const ShardedRelation& sharded() const { return data_; }

  // Monotone data version: the sum of the shard epochs, bumped by every
  // mutation. The query service keys result-cache entries on it.
  uint64_t epoch() const { return data_.epoch(); }

  // Single-shard conveniences, kept for tests/benches that inspect the
  // index or the columnar store directly. Valid only when the relation is
  // unsharded (num_shards == 1, the default); checked.
  const RTree& index() const;
  const FeatureStore& store() const;
  // Packed snapshot of index(): the traversal engine the query hot paths
  // run on. Mutations (Insert/BulkLoad) mark the owning shard's snapshot
  // stale; the next call recompiles it from the pointer tree.
  // Thread-safe against concurrent queries (mutations already require
  // exclusive access).
  const PackedRTree& packed_index() const;

  // Id of the series inserted under `name`, or NotFound.
  Result<int64_t> FindByName(const std::string& series_name) const;

 private:
  friend class Database;

  std::string name_;
  FeatureConfig config_;
  int series_length_ = 0;
  std::vector<Record> records_;
  std::unordered_map<std::string, int64_t> by_name_;
  ShardedRelation data_;
};

// Which traversal engine index strategies run on. kPacked (the default)
// routes ExecuteRange/ExecuteNearest and the index-join methods through
// the relation's PackedRTree snapshot; kPointer keeps them on the dynamic
// R*-tree (the ground-truth engine, kept for comparison benches and
// equivalence tests).
enum class IndexEngine { kPointer, kPacked };

// Which scan-side filter the execution engine runs. kQuantized routes
// eligible scans (normal-form spectral distances) through the two-phase
// quantized filter-and-refine path: bound-scan the bit-packed codes
// (filter/), refine only survivors through the exact columnar kernels.
// Answers are bit-identical to kExact by construction; the per-query
// MODE FILTERED / MODE EXACT clauses override this engine-wide default.
enum class FilterEngine { kExact, kQuantized };

// Self-join algorithms (Table 1 of [RM97]).
enum class JoinMethod {
  kFullScan,           // (a) nested scan, complete distance computation
  kScanEarlyAbandon,   // (b) nested scan, abandon when distance exceeds eps
  kIndexNoTransform,   // (c) per-series search rectangle, no transformation
  kIndexTransform,     // (d) method c with T applied to index + rectangles
};

// Snapshot of the graceful-degradation counters: how often a derived-
// artifact compile (packed snapshot, quantized codes) failed and the
// engine fell back to the pointer-tree / exact-scan path instead of
// aborting. Answers are unaffected; only acceleration is lost.
struct DegradationStats {
  uint64_t packed_compile_failures = 0;
  uint64_t filter_compile_failures = 0;
  uint64_t degraded_queries = 0;
};

// Delta-layer configuration (DESIGN.md "Delta layer & MVCC generations").
// With `enabled` (the default) mutations never invalidate a shard's
// compiled artifacts: new rows become the artifacts' delta, scanned
// exactly by every driver, and deletes are tombstones filtered at read
// time. `recompact_threshold` is the per-shard mutation count past which
// the service folds the delta into a fresh generation (the library's
// Database::Recompact is always explicit).
struct DeltaOptions {
  bool enabled = true;
  int64_t recompact_threshold = 256;
};

class Database {
 public:
  explicit Database(FeatureConfig config = FeatureConfig(),
                    RTree::Options index_options = RTree::Options(),
                    ShardingOptions sharding = ShardingOptions());

  const FeatureConfig& config() const { return config_; }
  const ShardingOptions& sharding() const { return sharding_; }

  // Cross-shard kNN pruning (default on): the scatter-gather nearest-
  // neighbor driver hands each shard after the first the current merged
  // k-th distance as an upper bound, so later shards prune subtrees the
  // earlier shards already beat. Answer-preserving (ties at the bound are
  // drained; see index/knn_best_first.h); the off switch exists for the
  // node-access monotonicity tests and ablation benches.
  bool cross_shard_knn_pruning() const { return cross_shard_knn_pruning_; }
  void set_cross_shard_knn_pruning(bool enabled) {
    cross_shard_knn_pruning_ = enabled;
  }

  // Traversal engine for index strategies (default kPacked). Set before
  // issuing queries; benches flip it to report both engines side by side.
  IndexEngine index_engine() const { return index_engine_; }
  void set_index_engine(IndexEngine engine) { index_engine_ = engine; }

  // Scan-side filter engine (default kExact, the historical behavior).
  // kQuantized turns every eligible scan into the filter-and-refine path;
  // per-query MODE FILTERED / MODE EXACT override it either way.
  FilterEngine filter_engine() const { return filter_engine_; }
  void set_filter_engine(FilterEngine engine) { filter_engine_ = engine; }

  // Quantized-code layout (bits per dimension, 4..8). Changing it simply
  // makes the per-shard code caches recompile on next use.
  const FilterOptions& filter_options() const { return filter_options_; }
  void set_filter_options(FilterOptions options) {
    filter_options_ = options;
  }

  // Delta-layer configuration. Disabling it restores the legacy
  // invalidate-on-mutation behavior (every relation's shards follow the
  // new setting immediately); the differential fuzz harness runs its
  // oracle that way. Set under exclusive access.
  const DeltaOptions& delta_options() const { return delta_options_; }
  void set_delta_options(const DeltaOptions& options);

  // Engine actually used by index strategies: the configured engine,
  // demoted to kPointer when the index options exceed the packed layout's
  // fanout limit (PackedRTree::SupportsFanout). Public so execution front
  // ends (the query service's EXPLAIN) can report the real engine.
  IndexEngine EffectiveIndexEngine() const;

  Status CreateRelation(const std::string& name);
  // Inserts one series (index maintained incrementally); returns its id.
  Result<int64_t> Insert(const std::string& relation,
                         const TimeSeries& series);
  // Inserts a batch into an empty relation using STR bulk loading.
  Status BulkLoad(const std::string& relation,
                  const std::vector<TimeSeries>& series);

  // Tombstones the record with this id: it disappears from every query
  // answer immediately; its row (and name, which stays reserved) remain
  // in place until a recompaction sheds the tree entry. OutOfRange for an
  // unknown id, NotFound when it is already deleted.
  Status Delete(const std::string& relation, int64_t id);

  // Synchronous recompaction of one relation: folds every shard's delta
  // and tombstones into a fresh generation (live-only tree, new packed
  // snapshot and quantized codes). Answers are unaffected; generation()
  // advances. The service runs the same two phases split across its
  // shared/exclusive locks (BuildRecompaction/PublishRecompaction on the
  // relation's ShardedRelation); this entry point is for single-threaded
  // callers that hold exclusive access.
  Status Recompact(const std::string& relation);

  // The two recompaction phases, split so the service can run the build
  // under its shared lock (readers keep executing) and only the brief
  // publish under the exclusive lock. Code width comes from
  // filter_options(). NotFound for an unknown relation.
  Status BuildRecompaction(
      const std::string& relation,
      std::vector<RelationShard::Recompaction>* out) const;
  Status PublishRecompaction(
      const std::string& relation,
      std::vector<RelationShard::Recompaction> built);

  const Relation* GetRelation(const std::string& name) const;

  // Names of all relations, in lexicographic order.
  std::vector<std::string> RelationNames() const;

  // Executes a parsed query.
  Result<QueryResult> Execute(const Query& query) const;
  // Parses and executes a textual query (core/parser.h grammar).
  Result<QueryResult> ExecuteText(const std::string& text) const;

  // Similarity self-join with an explicit algorithm choice; rules may be
  // null (identity). Distances use normal-form semantics:
  //   D( left_rule(x_i), right_rule(x_j) ) <= epsilon.
  // Equal rules on both sides give the symmetric join of Table 1 (method d
  // smooths both sides); different rules express joins between r and T(r),
  // e.g. the paper's hedging join r >< T_rev(r). Index methods report every
  // qualifying ordered pair; symmetric scan methods report each unordered
  // pair once -- matching the answer-set accounting of Table 1.
  // kIndexNoTransform ignores the rules (method c is defined that way).
  // `filter` resolves against filter_engine() exactly like a query's MODE
  // clause; the quantized filter applies to the early-abandoning scan
  // method with untransformed spectral sides (other methods ignore it).
  // `exec` carries the deadline/cancellation handle (null = unbounded),
  // polled between outer rows / node pairs like the other drivers.
  Result<QueryResult> SelfJoin(
      const std::string& relation, double epsilon,
      const TransformationRule* left_rule,
      const TransformationRule* right_rule, JoinMethod method,
      FilterMode filter = FilterMode::kDefault,
      std::shared_ptr<const ExecutionContext> exec = nullptr) const;

  // Convenience: the same rule applied to both sides.
  Result<QueryResult> SelfJoin(const std::string& relation, double epsilon,
                               const TransformationRule* rule,
                               JoinMethod method) const;

  // Current graceful-degradation counters (see DegradationStats).
  DegradationStats degradation_stats() const {
    DegradationStats stats;
    stats.packed_compile_failures =
        degradation_->packed_compile_failures.load(
            std::memory_order_relaxed);
    stats.filter_compile_failures =
        degradation_->filter_compile_failures.load(
            std::memory_order_relaxed);
    stats.degraded_queries =
        degradation_->degraded_queries.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  Result<QueryResult> ExecuteRange(const Relation& relation,
                                   const Query& query) const;
  Result<QueryResult> ExecuteNearest(const Relation& relation,
                                     const Query& query) const;
  Result<std::vector<double>> ResolveSeries(const Relation& relation,
                                            const SeriesRef& ref) const;

  // True when `filter` (resolved against the engine default) selects the
  // quantized filter path.
  bool UseQuantizedFilter(FilterMode filter) const;

  // Resolves the traversal engine for a query over `data`, compiling every
  // shard's packed snapshot up front. A failed compile demotes the whole
  // query to the pointer engine and sets *degraded (counted in
  // degradation_stats).
  IndexEngine ResolveQueryEngine(const ShardedRelation& data,
                                 bool* degraded) const;

  // Atomic counters behind a pointer so Database stays movable (the query
  // service holds it by value).
  struct DegradationState {
    std::atomic<uint64_t> packed_compile_failures{0};
    std::atomic<uint64_t> filter_compile_failures{0};
    std::atomic<uint64_t> degraded_queries{0};
  };

  FeatureConfig config_;
  RTree::Options index_options_;
  ShardingOptions sharding_;
  IndexEngine index_engine_ = IndexEngine::kPacked;
  FilterEngine filter_engine_ = FilterEngine::kExact;
  FilterOptions filter_options_;
  DeltaOptions delta_options_;
  bool cross_shard_knn_pruning_ = true;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::unique_ptr<DegradationState> degradation_ =
      std::make_unique<DegradationState>();
};

}  // namespace simq

#endif  // SIMQ_CORE_DATABASE_H_
