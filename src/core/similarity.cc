#include "core/similarity.h"

#include <cstring>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>

#include "util/stats.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Exact state key: the raw bytes of both sequences. Used to avoid
// re-expanding a (x', y') pair reached again at equal or higher cost.
std::string StateKey(const std::vector<double>& x,
                     const std::vector<double>& y) {
  std::string key;
  key.resize((x.size() + y.size()) * sizeof(double) + sizeof(size_t));
  char* out = key.data();
  const size_t x_size = x.size();
  std::memcpy(out, &x_size, sizeof(size_t));
  out += sizeof(size_t);
  if (!x.empty()) {
    std::memcpy(out, x.data(), x.size() * sizeof(double));
    out += x.size() * sizeof(double);
  }
  if (!y.empty()) {
    std::memcpy(out, y.data(), y.size() * sizeof(double));
  }
  return key;
}

double BaseDistance(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return kInf;
  }
  return EuclideanDistance(x, y);
}

struct State {
  double cost;
  int depth_x;
  int depth_y;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> applied_x;
  std::vector<std::string> applied_y;
};

struct StateOrder {
  bool operator()(const State& a, const State& b) const {
    return a.cost > b.cost;  // min-heap by accumulated cost
  }
};

}  // namespace

SimilarityResult TransformationDistance(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<const TransformationRule*>& rules,
    const SimilarityOptions& options) {
  SimilarityResult result;
  result.distance = BaseDistance(x, y);

  std::priority_queue<State, std::vector<State>, StateOrder> queue;
  queue.push(State{0.0, 0, 0, x, y, {}, {}});
  std::unordered_map<std::string, double> visited;
  visited[StateKey(x, y)] = 0.0;

  while (!queue.empty()) {
    State state = queue.top();
    queue.pop();
    // Branch-and-bound cut: accumulated cost alone already matches the best
    // total, and every extension only adds nonnegative cost.
    if (state.cost >= result.distance || state.cost > options.cost_budget) {
      break;  // the queue is cost-ordered; nothing better remains
    }
    ++result.states_expanded;

    const double base = BaseDistance(state.x, state.y);
    const double total = state.cost + base;
    if (total < result.distance) {
      result.distance = total;
      result.applied_to_x = state.applied_x;
      result.applied_to_y = state.applied_y;
    }

    auto expand = [&](bool on_x, const TransformationRule* rule) {
      const double new_cost = state.cost + rule->cost();
      if (new_cost >= result.distance || new_cost > options.cost_budget) {
        return;
      }
      State next;
      next.cost = new_cost;
      next.depth_x = state.depth_x + (on_x ? 1 : 0);
      next.depth_y = state.depth_y + (on_x ? 0 : 1);
      next.x = on_x ? rule->Apply(state.x) : state.x;
      next.y = on_x ? state.y : rule->Apply(state.y);
      next.applied_x = state.applied_x;
      next.applied_y = state.applied_y;
      (on_x ? next.applied_x : next.applied_y).push_back(rule->name());

      const std::string key = StateKey(next.x, next.y);
      auto it = visited.find(key);
      if (it != visited.end() && it->second <= new_cost) {
        return;
      }
      visited[key] = new_cost;
      queue.push(std::move(next));
    };

    for (const TransformationRule* rule : rules) {
      if (state.depth_x < options.max_rule_applications) {
        expand(/*on_x=*/true, rule);
      }
      if (options.transform_both_sides &&
          state.depth_y < options.max_rule_applications) {
        expand(/*on_x=*/false, rule);
      }
    }
  }
  return result;
}

}  // namespace simq
