/// The query language L of the framework: abstract syntax, patterns, and
/// result types.
///
/// [JMM95] extends relational calculus with predicates asserting that an
/// object can be transformed into (a member of) the set denoted by a pattern
/// expression within a distance bound. The implementation surfaces the three
/// query shapes of [RM97] §1.2 -- range, all-pairs, and nearest neighbor --
/// over unary relations of time series:
///
///   RANGE   r WITHIN eps OF q [USING t]   ==  { o in r : D(t(o), q) <= eps }
///   PAIRS   r WITHIN eps      [USING t]   ==  { (a,b) : D(t(a), t(b)) <= eps }
///   NEAREST k r TO q          [USING t]   ==  k-argmin_{o in r} D(t(o), q)
///
/// augmented with the pattern predicates of the trivial pattern language P
/// (a constant object or every object of a relation, optionally filtered by
/// mean/std ranges -- the [GK95] shift/scale predicates). The textual
/// grammar is documented in core/parser.h; core/database.h plans and
/// executes the AST.

#ifndef SIMQ_CORE_QUERY_H_
#define SIMQ_CORE_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/transformation.h"

namespace simq {

enum class QueryKind { kRange, kAllPairs, kNearest };

// Distance semantics. kNormalForm replaces every series by its
// Goldin-Kanellakis normal form before transformations and distances (what
// [RM97] §5 evaluates and what the index accelerates); kRaw compares the
// original values.
enum class DistanceMode { kNormalForm, kRaw };

// Execution strategy; kAuto lets the planner pick index vs. scan.
enum class ExecutionStrategy { kAuto, kIndex, kScan, kScanNoEarlyAbandon };

// Per-query quantized-filter toggle (the MODE FILTERED / MODE EXACT
// clauses). kDefault defers to the engine-wide setting
// (Database::set_filter_engine); kFiltered requests the two-phase
// quantized filter-and-refine path (and biases kAuto planning toward the
// filtered scan); kExact forces the unfiltered kernels. Answers are
// bit-identical either way -- the filter only prunes exact-distance
// evaluations that provably cannot match.
enum class FilterMode { kDefault, kFiltered, kExact };

// The pattern language P: which data objects the query ranges over.
struct Pattern {
  enum class Kind { kAll, kConstant };
  Kind kind = Kind::kAll;
  // kConstant: the single object, by id within the relation.
  std::optional<int64_t> constant_id;
  // Optional statistic predicates (the [GK95] extension): inclusive ranges.
  std::optional<std::pair<double, double>> mean_range;
  std::optional<std::pair<double, double>> std_range;
};

// A query object: either a reference to a stored series or literal values.
struct SeriesRef {
  std::optional<int64_t> id;
  std::optional<std::string> name;
  std::vector<double> literal;  // used when id and name are empty

  bool is_literal() const { return !id.has_value() && !name.has_value(); }
};

struct Query {
  QueryKind kind = QueryKind::kRange;
  std::string relation;
  Pattern pattern;

  // Range / nearest: the query object.
  SeriesRef query_series;
  double epsilon = 0.0;  // range / all-pairs threshold
  int k = 1;             // nearest-neighbor count

  // Transformation applied to the data side (and to both sides of an
  // all-pairs query). Null means identity.
  std::shared_ptr<const TransformationRule> transform;

  // All-pairs queries only: when set, `transform` applies to the left side
  // and `transform_right` to the right side, expressing the join
  // r >< T(r) (e.g. the hedging join against reversed series). Textual
  // syntax: USING <left> VS <right>.
  std::shared_ptr<const TransformationRule> transform_right;

  DistanceMode mode = DistanceMode::kNormalForm;
  ExecutionStrategy strategy = ExecutionStrategy::kAuto;
  FilterMode filter = FilterMode::kDefault;

  // Normal-form mode only: when true, the query series is taken to already
  // live in normal-form space (e.g. a smoothed normal form used as a search
  // pattern) and is not re-normalized by the engine. Textual syntax:
  // the PRENORMALIZED clause.
  bool query_prenormalized = false;

  // Set by the EXPLAIN prefix of the textual grammar. The engine executes
  // the query normally; front ends (the query service / simq_shell) report
  // the chosen strategy, traversal engine, and cache status instead of --
  // or alongside -- the answer set.
  bool explain = false;

  // Set by EXPLAIN ANALYZE: execute normally (answers stay bit-identical
  // and cacheable -- analyze is not part of the semantic identity either)
  // but force a trace so front ends can render the span tree with actual
  // timings and cardinalities next to the plan.
  bool analyze = false;

  // Deadline / cancellation handle, polled at block boundaries during
  // execution (core/exec_context.h). Null means unbounded. Not part of the
  // query's semantic identity: the service's cache / prepared-statement
  // fingerprints ignore it.
  std::shared_ptr<const ExecutionContext> exec;
};

struct Match {
  int64_t id = 0;
  std::string name;
  double distance = 0.0;
};

struct PairMatch {
  int64_t first = 0;
  int64_t second = 0;
  double distance = 0.0;
};

// How a query was actually executed, plus effort counters; the benchmark
// harnesses report these next to wall-clock times.
struct ExecutionStats {
  bool used_index = false;
  bool used_filter = false;    // quantized filter-and-refine path taken
  int64_t node_accesses = 0;   // R-tree nodes touched (disk-access proxy)
  int64_t candidates = 0;      // entries surviving the index/code filter
  int64_t exact_checks = 0;    // full-distance computations performed
  // Quantized filter path only: records (or pairs, for joins) whose
  // packed codes were bound-scanned. candidates / filter_scanned is the
  // survivor rate; 1 - that is the pruning ratio EXPLAIN reports.
  int64_t filter_scanned = 0;
  // True when a packed-snapshot or quantized-code compile failed and the
  // engine fell back to the pointer-tree / exact-scan path for this query
  // (answers are identical; only the acceleration was lost).
  bool degraded = false;

  // Per-shard breakdown, filled by the sharded executors for range and
  // nearest queries. `estimated_candidates` is the planner-side estimate
  // (relation stats plus quantizer cell occupancy when codes exist) and
  // is produced even for EXPLAIN without ANALYZE, so the estimated and
  // actual columns of the two outputs always line up.
  struct ShardStats {
    int shard = 0;
    int64_t rows = 0;                  // rows resident in the shard
    int64_t estimated_candidates = 0;  // pre-execution estimate
    int64_t candidates = 0;            // actual filter/index survivors
    int64_t exact_checks = 0;          // actual full-distance evaluations
  };
  std::vector<ShardStats> shard_stats;
};

struct QueryResult {
  std::vector<Match> matches;     // range / nearest
  std::vector<PairMatch> pairs;   // all-pairs
  ExecutionStats stats;
};

}  // namespace simq

#endif  // SIMQ_CORE_QUERY_H_
