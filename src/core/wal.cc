#include "core/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/persistence.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace simq {
namespace {

constexpr char kWalMagic[] = "SIMQWAL1";
constexpr size_t kWalMagicLength = 8;

constexpr uint8_t kRecordCreateRelation = 1;
constexpr uint8_t kRecordInsert = 2;
constexpr uint8_t kRecordBulkLoad = 3;
constexpr uint8_t kRecordDelete = 4;

void AppendU8(std::string* out, uint8_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}
void AppendU32(std::string* out, uint32_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}
void AppendU64(std::string* out, uint64_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}
void AppendString(std::string* out, const std::string& value) {
  AppendU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}
void AppendSeries(std::string* out, const TimeSeries& series) {
  AppendString(out, series.id);
  AppendU64(out, series.values.size());
  out->append(reinterpret_cast<const char*>(series.values.data()),
              series.values.size() * sizeof(double));
}

// Bounds-checked parser over a frame payload whose CRC already passed;
// any failure here is real corruption, not a torn write.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  Status Bytes(void* out, size_t size) {
    if (size > remaining()) {
      return Status::Corruption("WAL frame payload truncated");
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return Status::Ok();
  }
  Status U8(uint8_t* value) { return Bytes(value, sizeof(*value)); }
  Status U64(uint64_t* value) { return Bytes(value, sizeof(*value)); }
  Status String(std::string* value) {
    uint32_t length = 0;
    SIMQ_RETURN_IF_ERROR(Bytes(&length, sizeof(length)));
    if (length > remaining()) {
      return Status::Corruption("WAL frame string extends past payload");
    }
    value->assign(data_ + pos_, length);
    pos_ += length;
    return Status::Ok();
  }
  Status Series(TimeSeries* series) {
    SIMQ_RETURN_IF_ERROR(String(&series->id));
    uint64_t count = 0;
    SIMQ_RETURN_IF_ERROR(U64(&count));
    if (count > remaining() / sizeof(double)) {
      return Status::Corruption("WAL frame array extends past payload");
    }
    series->values.resize(count);
    return count == 0
               ? Status::Ok()
               : Bytes(series->values.data(), count * sizeof(double));
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Parses one payload (CRC already verified) and applies it to `db`.
Status ApplyFrame(const char* payload, size_t size, Database* db) {
  PayloadReader reader(payload, size);
  uint8_t type = 0;
  SIMQ_RETURN_IF_ERROR(reader.U8(&type));
  switch (type) {
    case kRecordCreateRelation: {
      std::string name;
      SIMQ_RETURN_IF_ERROR(reader.String(&name));
      return db->CreateRelation(name);
    }
    case kRecordInsert: {
      std::string relation;
      SIMQ_RETURN_IF_ERROR(reader.String(&relation));
      TimeSeries series;
      SIMQ_RETURN_IF_ERROR(reader.Series(&series));
      Result<int64_t> id = db->Insert(relation, series);
      return id.ok() ? Status::Ok() : id.status();
    }
    case kRecordDelete: {
      std::string relation;
      SIMQ_RETURN_IF_ERROR(reader.String(&relation));
      uint64_t id = 0;
      SIMQ_RETURN_IF_ERROR(reader.U64(&id));
      return db->Delete(relation, static_cast<int64_t>(id));
    }
    case kRecordBulkLoad: {
      std::string relation;
      SIMQ_RETURN_IF_ERROR(reader.String(&relation));
      uint64_t count = 0;
      SIMQ_RETURN_IF_ERROR(reader.U64(&count));
      if (count > reader.remaining() / sizeof(uint64_t)) {
        return Status::Corruption("WAL bulk-load count extends past payload");
      }
      std::vector<TimeSeries> series(count);
      for (uint64_t i = 0; i < count; ++i) {
        SIMQ_RETURN_IF_ERROR(reader.Series(&series[i]));
      }
      return db->BulkLoad(relation, series);
    }
    default:
      return Status::Corruption("WAL frame has unknown record type " +
                                std::to_string(type));
  }
}

Status ReadWholeFile(const std::string& path, std::string* out,
                     bool* exists) {
  *exists = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();
    return Status::IoError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  *exists = true;
  Status status = [&]() -> Status {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return Status::IoError("fstat of WAL '" + path +
                             "' failed: " + std::strerror(errno));
    }
    out->resize(static_cast<size_t>(st.st_size));
    size_t offset = 0;
    while (offset < out->size()) {
      const ssize_t n =
          ::read(fd, out->data() + offset, out->size() - offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("read of WAL '" + path +
                               "' failed: " + std::strerror(errno));
      }
      if (n == 0) {
        out->resize(offset);
        break;
      }
      offset += static_cast<size_t>(n);
    }
    return Status::Ok();
  }();
  ::close(fd);
  return status;
}

}  // namespace

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  SIMQ_RETURN_IF_FAILPOINT("wal.open");
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError("fstat of WAL '" + path +
                           "' failed: " + std::strerror(errno));
  }
  if (st.st_size < static_cast<off_t>(kWalMagicLength)) {
    // New file, or one whose very first magic write was itself torn (there
    // cannot have been any frames yet); start it fresh.
    if (::ftruncate(fd, 0) != 0) {
      return Status::IoError("ftruncate of WAL '" + path +
                             "' failed: " + std::strerror(errno));
    }
    size_t offset = 0;
    while (offset < kWalMagicLength) {
      const ssize_t n =
          ::write(fd, kWalMagic + offset, kWalMagicLength - offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("write of WAL magic to '" + path +
                               "' failed: " + std::strerror(errno));
      }
      offset += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      return Status::IoError("fsync of WAL '" + path +
                             "' failed: " + std::strerror(errno));
    }
  } else {
    char magic[kWalMagicLength];
    if (::pread(fd, magic, kWalMagicLength, 0) !=
        static_cast<ssize_t>(kWalMagicLength)) {
      return Status::IoError("read of WAL magic from '" + path +
                             "' failed: " + std::strerror(errno));
    }
    if (std::memcmp(magic, kWalMagic, kWalMagicLength) != 0) {
      return Status::Corruption("'" + path + "' is not a simq WAL");
    }
  }
  return writer;
}

Status WalWriter::AppendFrame(const std::string& payload) {
  SIMQ_CHECK(fd_ >= 0) << "append to a WAL that is not open";
  SIMQ_RETURN_IF_FAILPOINT("wal.append");
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);

  // The torn-append failpoint writes only a prefix of the frame and then
  // reports failure -- exactly the on-disk state a crash mid-append
  // leaves, which replay must detect and truncate.
  size_t write_length = frame.size();
  const bool torn = SIMQ_FAILPOINT_FIRED("wal.append.torn");
  if (torn) {
    write_length = frame.size() / 2;
  }
  size_t offset = 0;
  while (offset < write_length) {
    const ssize_t n =
        ::write(fd_, frame.data() + offset, write_length - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("append to WAL '" + path_ +
                             "' failed: " + std::strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  if (torn) {
    return Status::IoError(
        "injected torn append at failpoint 'wal.append.torn'");
  }
  return Status::Ok();
}

Status WalWriter::AppendCreateRelation(const std::string& name) {
  std::string payload;
  AppendU8(&payload, kRecordCreateRelation);
  AppendString(&payload, name);
  return AppendFrame(payload);
}

Status WalWriter::AppendInsert(const std::string& relation,
                               const TimeSeries& series) {
  std::string payload;
  AppendU8(&payload, kRecordInsert);
  AppendString(&payload, relation);
  AppendSeries(&payload, series);
  return AppendFrame(payload);
}

Status WalWriter::AppendDelete(const std::string& relation, int64_t id) {
  std::string payload;
  AppendU8(&payload, kRecordDelete);
  AppendString(&payload, relation);
  AppendU64(&payload, static_cast<uint64_t>(id));
  return AppendFrame(payload);
}

Status WalWriter::AppendBulkLoad(const std::string& relation,
                                 const std::vector<TimeSeries>& series) {
  std::string payload;
  AppendU8(&payload, kRecordBulkLoad);
  AppendString(&payload, relation);
  AppendU64(&payload, series.size());
  for (const TimeSeries& s : series) {
    AppendSeries(&payload, s);
  }
  return AppendFrame(payload);
}

Status WalWriter::Sync() {
  SIMQ_CHECK(fd_ >= 0) << "sync of a WAL that is not open";
  SIMQ_RETURN_IF_FAILPOINT("wal.sync");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync of WAL '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

Status WalWriter::Truncate() {
  SIMQ_CHECK(fd_ >= 0) << "truncate of a WAL that is not open";
  if (::ftruncate(fd_, static_cast<off_t>(kWalMagicLength)) != 0) {
    return Status::IoError("ftruncate of WAL '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync of WAL '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

Status ReplayWal(const std::string& path, Database* db,
                 WalReplayStats* stats) {
  WalReplayStats local;
  std::string bytes;
  bool exists = false;
  SIMQ_RETURN_IF_ERROR(ReadWholeFile(path, &bytes, &exists));
  if (!exists) {
    if (stats != nullptr) *stats = local;
    return Status::Ok();
  }
  if (bytes.size() < kWalMagicLength) {
    // The magic write itself was torn; there cannot have been any frames.
    local.torn_tail = true;
    local.truncated_bytes = bytes.size();
    if (::truncate(path.c_str(), 0) != 0) {
      return Status::IoError("truncate of WAL '" + path +
                             "' failed: " + std::strerror(errno));
    }
    if (stats != nullptr) *stats = local;
    return Status::Ok();
  }
  if (std::memcmp(bytes.data(), kWalMagic, kWalMagicLength) != 0) {
    return Status::Corruption("'" + path + "' is not a simq WAL");
  }

  size_t offset = kWalMagicLength;
  while (offset < bytes.size()) {
    // Framing or CRC failure past this point is a torn tail: stop here and
    // keep everything before it.
    if (bytes.size() - offset < 8) break;
    uint32_t length = 0;
    uint32_t crc = 0;
    std::memcpy(&length, bytes.data() + offset, 4);
    std::memcpy(&crc, bytes.data() + offset + 4, 4);
    if (length > bytes.size() - offset - 8) break;
    const char* payload = bytes.data() + offset + 8;
    if (Crc32(payload, length) != crc) break;

    // The frame is intact; a parse or apply failure now means the log does
    // not match its snapshot -- real corruption, reported, not truncated.
    Status applied = ApplyFrame(payload, length, db);
    if (!applied.ok()) {
      return Status(StatusCode::kCorruption,
                    "WAL frame " + std::to_string(local.frames_applied) +
                        " does not apply: " + applied.ToString());
    }
    local.frames_applied++;
    offset += 8 + length;
  }
  local.valid_bytes = offset;
  if (offset < bytes.size()) {
    local.torn_tail = true;
    local.truncated_bytes = bytes.size() - offset;
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return Status::IoError("truncate of WAL '" + path +
                             "' failed: " + std::strerror(errno));
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Result<Database> OpenDurableDatabase(const FeatureConfig& config,
                                     const std::string& snapshot_path,
                                     const std::string& wal_path,
                                     WalReplayStats* stats) {
  Result<Database> loaded = LoadDatabase(snapshot_path);
  if (!loaded.ok() && loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }
  Database db = loaded.ok() ? std::move(loaded).value() : Database(config);
  SIMQ_RETURN_IF_ERROR(ReplayWal(wal_path, &db, stats));
  return db;
}

}  // namespace simq
