/// Binary snapshots of a Database.
///
/// The snapshot stores the feature configuration plus every relation's raw
/// series; normal forms, spectra, and R*-trees are derived data and are
/// rebuilt deterministically on load (bulk loading). The format is a
/// single-machine, native-endian snapshot -- a checkpoint/restore facility,
/// not an interchange format.
///
/// Two on-disk versions exist. SaveDatabase writes SIMQDB2 by default;
/// LoadDatabase reads both (SIMQDB1 snapshots from older builds keep
/// loading unchanged).
///
/// SIMQDB1 layout (all integers little-endian on the machines we target):
///   magic "SIMQDB1\n"
///   i32 num_coefficients, i32 space, u8 include_mean_std
///   u64 relation_count
///   per relation:
///     u32 name_length, bytes name, i32 series_length, u64 record_count
///     per record: u32 name_length, bytes name, u64 n, n doubles (raw)
///
/// SIMQDB2 extends every relation with explicit record ids and a summary
/// statistics block, both validated on load (ids must be the dense
/// 0..count-1 sequence the engine assigns; the stats must match the values
/// recomputed from the raw series bit-for-bit):
///   magic "SIMQDB2\n"
///   i32 num_coefficients, i32 space, u8 include_mean_std
///   u64 relation_count
///   per relation:
///     u32 name_length, bytes name, i32 series_length, u64 record_count
///     f64 mean_min, f64 mean_max, f64 std_min, f64 std_max   (0s if empty)
///     per record: u64 id, u32 name_length, bytes name, u64 n, n doubles

#ifndef SIMQ_CORE_PERSISTENCE_H_
#define SIMQ_CORE_PERSISTENCE_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace simq {

// Writes a snapshot of `db` to `path` (overwriting). `format_version`
// selects the on-disk layout: 2 (default, SIMQDB2) or 1 (SIMQDB1, for
// snapshots consumed by older builds).
Status SaveDatabase(const Database& db, const std::string& path,
                    int format_version = 2);

// Restores a database from a snapshot (either version); indexes are
// rebuilt via bulk load.
Result<Database> LoadDatabase(const std::string& path);

}  // namespace simq

#endif  // SIMQ_CORE_PERSISTENCE_H_
