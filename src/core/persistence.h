/// Binary snapshots of a Database.
///
/// The snapshot stores the feature configuration plus every relation's raw
/// series; normal forms, spectra, and R*-trees are derived data and are
/// rebuilt deterministically on load (bulk loading). The format is a
/// single-machine, native-endian snapshot -- a checkpoint/restore facility,
/// not an interchange format.
///
/// Four on-disk versions exist. SaveDatabase writes SIMQDB4 by default;
/// LoadDatabase reads all four (SIMQDB1/SIMQDB2/SIMQDB3 snapshots from
/// older builds keep loading unchanged).
///
/// Every save is atomic: the snapshot is serialized in memory, written to
/// `path + ".tmp"`, fsynced, then renamed over `path` (and the parent
/// directory fsynced). A crash at any point leaves either the old snapshot
/// or the new one -- never a truncated hybrid. On failure the temp file is
/// unlinked and the original snapshot is untouched.
///
/// SIMQDB1 layout (all integers little-endian on the machines we target):
///   magic "SIMQDB1\n"
///   i32 num_coefficients, i32 space, u8 include_mean_std
///   u64 relation_count
///   per relation:
///     u32 name_length, bytes name, i32 series_length, u64 record_count
///     per record: u32 name_length, bytes name, u64 n, n doubles (raw)
///
/// SIMQDB2 extends every relation with explicit record ids and a summary
/// statistics block, both validated on load (ids must be the dense
/// 0..count-1 sequence the engine assigns; the stats must match the values
/// recomputed from the raw series bit-for-bit):
///   magic "SIMQDB2\n"
///   i32 num_coefficients, i32 space, u8 include_mean_std
///   u64 relation_count
///   per relation:
///     u32 name_length, bytes name, i32 series_length, u64 record_count
///     f64 mean_min, f64 mean_max, f64 std_min, f64 std_max   (0s if empty)
///     per record: u64 id, u32 name_length, bytes name, u64 n, n doubles
///
/// SIMQDB3 wraps the SIMQDB2 content in checksummed, length-framed
/// sections so corruption is detected before any bytes are interpreted:
///   magic "SIMQDB3\n"
///   per section: u32 payload_length, u32 crc32(payload), payload bytes
///   section 0 payload: i32 num_coefficients, i32 space,
///                      u8 include_mean_std, u64 relation_count
///   sections 1..relation_count: one per relation, payload identical to
///                      the SIMQDB2 per-relation block above
/// A section whose framing runs past end-of-file, whose CRC does not
/// match, or whose payload has trailing bytes makes the load fail with
/// kCorruption. All load-time validation failures (any version) return
/// kCorruption; a missing file returns kNotFound; OS-level read/write
/// failures return kIoError.
///
/// SIMQDB4 keeps the SIMQDB3 section framing and appends one tombstone
/// block to every per-relation payload, after the records:
///   u64 tombstone_count, then tombstone_count u64 ids of deleted records
/// Deleted records are still serialized in full (their names stay
/// reserved); the loader bulk-loads every record and then re-deletes the
/// listed ids, so the restored database matches the saved one exactly.
/// Saving with format_version <= 3 drops tombstones (deleted records come
/// back alive) -- only do that for snapshots consumed by older builds.

#ifndef SIMQ_CORE_PERSISTENCE_H_
#define SIMQ_CORE_PERSISTENCE_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace simq {

// Writes a snapshot of `db` to `path` atomically (overwriting).
// `format_version` selects the on-disk layout: 4 (default, SIMQDB4,
// checksummed + tombstones), or 3/2/1 for snapshots consumed by older
// builds (tombstones are dropped -- deleted records reload as alive).
Status SaveDatabase(const Database& db, const std::string& path,
                    int format_version = 4);

// Restores a database from a snapshot (any version); indexes are rebuilt
// via bulk load.
Result<Database> LoadDatabase(const std::string& path);

}  // namespace simq

#endif  // SIMQ_CORE_PERSISTENCE_H_
