// Binary snapshots of a Database.
//
// The snapshot stores the feature configuration plus every relation's raw
// series; normal forms, spectra, and R*-trees are derived data and are
// rebuilt deterministically on load (bulk loading). The format is a
// single-machine, native-endian snapshot -- a checkpoint/restore facility,
// not an interchange format.
//
// Layout (all integers little-endian on the machines we target):
//   magic "SIMQDB1\n"
//   i32 num_coefficients, i32 space, u8 include_mean_std
//   u64 relation_count
//   per relation:
//     u32 name_length, bytes name, i32 series_length, u64 record_count
//     per record: u32 name_length, bytes name, u64 n, n doubles (raw)

#ifndef SIMQ_CORE_PERSISTENCE_H_
#define SIMQ_CORE_PERSISTENCE_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace simq {

// Writes a snapshot of `db` to `path` (overwriting).
Status SaveDatabase(const Database& db, const std::string& path);

// Restores a database from a snapshot; indexes are rebuilt via bulk load.
Result<Database> LoadDatabase(const std::string& path);

}  // namespace simq

#endif  // SIMQ_CORE_PERSISTENCE_H_
