#include "core/feature_store.h"

#include "util/logging.h"

namespace simq {
namespace {

// Pads a row length (in doubles) to a multiple of 8 (64 bytes) so rows
// start cache-line aligned.
int64_t PadStride(int64_t doubles) { return (doubles + 7) & ~int64_t{7}; }

}  // namespace

void FeatureStore::Append(const SeriesFeatures& features,
                          const std::vector<double>& normal_values) {
  const int n = features.length();
  if (count_ == 0) {
    spectrum_length_ = n;
    series_length_ = static_cast<int>(normal_values.size());
    spectrum_stride_ = PadStride(2 * static_cast<int64_t>(n));
    normal_stride_ = PadStride(static_cast<int64_t>(series_length_));
  } else {
    SIMQ_CHECK_EQ(n, spectrum_length_);
    SIMQ_CHECK_EQ(static_cast<int>(normal_values.size()), series_length_);
  }
  spectra_.resize(spectra_.size() + static_cast<size_t>(spectrum_stride_),
                  0.0);
  double* spectrum_row =
      spectra_.data() + static_cast<size_t>(count_ * spectrum_stride_);
  for (int f = 0; f < n; ++f) {
    const Complex& c = features.normal_spectrum[static_cast<size_t>(f)];
    spectrum_row[2 * f] = c.real();
    spectrum_row[2 * f + 1] = c.imag();
  }
  normals_.resize(normals_.size() + static_cast<size_t>(normal_stride_), 0.0);
  double* normal_row =
      normals_.data() + static_cast<size_t>(count_ * normal_stride_);
  for (int t = 0; t < series_length_; ++t) {
    normal_row[t] = normal_values[static_cast<size_t>(t)];
  }
  prefixes_.push_back(spectrum_row[0]);
  prefixes_.push_back(n >= 1 ? spectrum_row[1] : 0.0);
  prefixes_.push_back(n >= 2 ? spectrum_row[2] : 0.0);
  prefixes_.push_back(n >= 2 ? spectrum_row[3] : 0.0);
  means_.push_back(features.mean);
  stds_.push_back(features.std_dev);
  ++count_;
}

std::vector<double> InterleaveSpectrum(const Spectrum& spectrum) {
  std::vector<double> out(2 * spectrum.size());
  for (size_t f = 0; f < spectrum.size(); ++f) {
    out[2 * f] = spectrum[f].real();
    out[2 * f + 1] = spectrum[f].imag();
  }
  return out;
}

}  // namespace simq
