/// The transformation rule language T of the [JMM95] framework, specialized
/// to sequence objects.
///
/// A rule rewrites a series and carries a nonnegative cost (the framework
/// measures similarity as the cheapest rule sequence that reduces one object
/// to another; see core/similarity.h). Rules that act as element-wise
/// multipliers on DFT coefficients additionally expose their spectral form,
/// which is what makes them *index-accelerable*: the engine lowers the
/// multiplier onto the feature space (geom/linear_transform.h) and evaluates
/// the query through the R*-tree (Algorithm 2 of [RM97]).

#ifndef SIMQ_CORE_TRANSFORMATION_H_
#define SIMQ_CORE_TRANSFORMATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/linear_transform.h"
#include "ts/dft.h"
#include "util/status.h"

namespace simq {

class TransformationRule {
 public:
  virtual ~TransformationRule() = default;

  virtual std::string name() const = 0;

  // Cost charged when the rule is used in a similarity derivation.
  virtual double cost() const = 0;

  // Length of the output series for an input of length n (time warping
  // stretches it; everything else preserves it).
  virtual int OutputLength(int input_length) const { return input_length; }

  // Time-domain application; the reference semantics of the rule.
  virtual std::vector<double> Apply(
      const std::vector<double>& series) const = 0;

  // Spectral form: the rule acts on the unitary DFT of a length-n input as
  //   DFT(T(x))_f = Multiplier(f, n) * X_{f mod n},  f < OutputLength(n).
  // Returns nullopt if the rule has no such form (then only scan execution
  // is possible).
  virtual std::optional<Complex> Multiplier(int f, int n) const {
    (void)f;
    (void)n;
    return std::nullopt;
  }

  // True if the rule is the identity on normal forms (e.g. value shifts and
  // positive scales, the [GK95] transformations): under normal-form
  // distance semantics the engine can drop it entirely.
  virtual bool IsNormalFormInvariant() const { return false; }

  bool IsSpectral(int n) const { return Multiplier(0, n).has_value(); }

  // Index-level linear transform over the first k coefficients (frequencies
  // 1..k) of a length-n input, or nullopt for non-spectral rules.
  std::optional<LinearTransform> IndexTransform(int n, int k) const;
};

// identity: T(x) = x.
std::unique_ptr<TransformationRule> MakeIdentityRule(double cost = 0.0);

// mavg(w): w-day circular moving average (Equation 11).
std::unique_ptr<TransformationRule> MakeMovingAverageRule(int window,
                                                          double cost = 0.0);

// wmavg: weighted circular moving average with explicit window weights.
std::unique_ptr<TransformationRule> MakeWeightedMovingAverageRule(
    std::vector<double> weights, double cost = 0.0);

// reverse: T(x) = -x (Example 2.2, opposite price movements).
std::unique_ptr<TransformationRule> MakeReverseRule(double cost = 0.0);

// warp(m): time dimension stretched by integer factor m (Appendix A).
std::unique_ptr<TransformationRule> MakeTimeWarpRule(int warp_factor,
                                                     double cost = 0.0);

// shift(c): T(x)_i = x_i + c. Normal-form invariant.
std::unique_ptr<TransformationRule> MakeShiftRule(double amount,
                                                  double cost = 0.0);

// scale(c): T(x)_i = c * x_i. Normal-form invariant for c > 0; for c < 0 it
// is `reverse` composed with a positive scale.
std::unique_ptr<TransformationRule> MakeScaleRule(double factor,
                                                  double cost = 0.0);

// diff: circular first difference T(x)_i = x_i - x_{i-1 mod n}; compares
// day-over-day changes instead of levels. Spectral with multiplier
// 1 - e^{-j 2 pi f / n}.
std::unique_ptr<TransformationRule> MakeDifferenceRule(double cost = 0.0);

// ewma(alpha): circular exponentially-weighted moving average with decay
// alpha in (0, 1]; trend smoothing that weights recent days more (the
// "weights at the end are usually chosen to be higher" variant of
// Equation 11). Spectral (a weighted moving average).
std::unique_ptr<TransformationRule> MakeExponentialSmoothingRule(
    double alpha, double cost = 0.0);

// smooth-spike removal: clamps single-sample spikes to the average of their
// neighbors. Deliberately non-spectral: exercises the scan-only path.
std::unique_ptr<TransformationRule> MakeDespikeRule(double spike_threshold,
                                                    double cost = 0.0);

// Sequential composition: rules[0] first. Cost is the sum of member costs;
// spectral iff every member is spectral and length-preserving (a trailing
// warp is also allowed).
std::unique_ptr<TransformationRule> MakeCompositeRule(
    std::vector<std::unique_ptr<TransformationRule>> rules);

// Factory used by the query-language parser: name plus numeric arguments.
// Recognized: identity | mavg(w) | reverse | warp(m) | shift(c) | scale(c)
// | despike(t), each with an optional trailing cost argument.
Result<std::unique_ptr<TransformationRule>> MakeRuleByName(
    const std::string& name, const std::vector<double>& args);

}  // namespace simq

#endif  // SIMQ_CORE_TRANSFORMATION_H_
