#include "core/parser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace simq {
namespace {

enum class TokenKind { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier or punctuation
  double number = 0.0;  // kNumber payload
  size_t position = 0;  // offset in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        Token token;
        token.kind = TokenKind::kIdent;
        token.text = text_.substr(start, i - start);
        token.position = start;
        tokens.push_back(std::move(token));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.') {
        const size_t start = i;
        const char* begin = text_.c_str() + start;
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        if (end == begin) {
          return Error(start, "malformed number");
        }
        i = start + static_cast<size_t>(end - begin);
        Token token;
        token.kind = TokenKind::kNumber;
        token.number = value;
        token.position = start;
        tokens.push_back(std::move(token));
        continue;
      }
      if (c == '#' || c == '[' || c == ']' || c == '(' || c == ')' ||
          c == ',' || c == '|') {
        Token token;
        token.kind = TokenKind::kPunct;
        token.text = std::string(1, c);
        token.position = i;
        tokens.push_back(std::move(token));
        ++i;
        continue;
      }
      return Error(i, std::string("unexpected character '") + c + "'");
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.position = text_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  Status Error(size_t position, const std::string& message) const {
    std::ostringstream out;
    out << message << " at offset " << position;
    return Status::InvalidArgument(out.str());
  }

  const std::string& text_;
};

std::string ToUpper(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    if (Peek().kind == TokenKind::kIdent && ToUpper(Peek().text) == "EXPLAIN") {
      Advance();
      query.explain = true;
      // EXPLAIN ANALYZE: execute and report actual timings/cardinalities
      // beside the plan. ANALYZE alone is not a query prefix.
      if (Peek().kind == TokenKind::kIdent &&
          ToUpper(Peek().text) == "ANALYZE") {
        Advance();
        query.analyze = true;
      }
    }
    const Token& head = Peek();
    if (head.kind != TokenKind::kIdent) {
      return Error("expected RANGE, PAIRS, or NEAREST");
    }
    const std::string keyword = ToUpper(head.text);
    if (keyword == "RANGE") {
      Advance();
      SIMQ_RETURN_IF_ERROR(ParseRange(&query));
    } else if (keyword == "PAIRS") {
      Advance();
      SIMQ_RETURN_IF_ERROR(ParsePairs(&query));
    } else if (keyword == "NEAREST") {
      Advance();
      SIMQ_RETURN_IF_ERROR(ParseNearest(&query));
    } else {
      return Error("expected RANGE, PAIRS, or NEAREST");
    }
    SIMQ_RETURN_IF_ERROR(ParseClauses(&query));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  Status Error(const std::string& message) const {
    return ErrorAt(Peek().position, message);
  }

  // Anchors the message at an explicit offset -- used when the offending
  // token has already been consumed (e.g. a bad VIA/MODE argument or an
  // unknown rule name), so the position points at it, not past it.
  Status ErrorAt(size_t position, const std::string& message) const {
    std::ostringstream out;
    out << message << " at offset " << position;
    return Status::InvalidArgument(out.str());
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (Peek().kind != TokenKind::kIdent || ToUpper(Peek().text) != keyword) {
      return Error("expected " + keyword);
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectPunct(const std::string& punct) {
    if (Peek().kind != TokenKind::kPunct || Peek().text != punct) {
      return Error("expected '" + punct + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ParseNumber(double* out) {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a number");
    }
    *out = Peek().number;
    Advance();
    return Status::Ok();
  }

  Status ParseIdent(std::string* out) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected an identifier");
    }
    *out = Peek().text;
    Advance();
    return Status::Ok();
  }

  Status ParseSeries(SeriesRef* out) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == "#") {
      Advance();
      std::string name;
      SIMQ_RETURN_IF_ERROR(ParseIdent(&name));
      out->name = name;
      return Status::Ok();
    }
    SIMQ_RETURN_IF_ERROR(ExpectPunct("["));
    while (true) {
      double value = 0.0;
      SIMQ_RETURN_IF_ERROR(ParseNumber(&value));
      out->literal.push_back(value);
      if (Peek().kind == TokenKind::kPunct && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    return ExpectPunct("]");
  }

  Status ParseRange(Query* query) {
    query->kind = QueryKind::kRange;
    SIMQ_RETURN_IF_ERROR(ParseIdent(&query->relation));
    SIMQ_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
    SIMQ_RETURN_IF_ERROR(ParseNumber(&query->epsilon));
    SIMQ_RETURN_IF_ERROR(ExpectKeyword("OF"));
    return ParseSeries(&query->query_series);
  }

  Status ParsePairs(Query* query) {
    query->kind = QueryKind::kAllPairs;
    SIMQ_RETURN_IF_ERROR(ParseIdent(&query->relation));
    SIMQ_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
    return ParseNumber(&query->epsilon);
  }

  Status ParseNearest(Query* query) {
    query->kind = QueryKind::kNearest;
    double k = 0.0;
    SIMQ_RETURN_IF_ERROR(ParseNumber(&k));
    query->k = static_cast<int>(k);
    if (query->k <= 0 || static_cast<double>(query->k) != k) {
      return Error("NEAREST expects a positive integer count");
    }
    SIMQ_RETURN_IF_ERROR(ParseIdent(&query->relation));
    SIMQ_RETURN_IF_ERROR(ExpectKeyword("TO"));
    return ParseSeries(&query->query_series);
  }

  Status ParseTransform(std::shared_ptr<const TransformationRule>* out) {
    std::vector<std::unique_ptr<TransformationRule>> rules;
    while (true) {
      const size_t name_position = Peek().position;
      std::string name;
      SIMQ_RETURN_IF_ERROR(ParseIdent(&name));
      std::vector<double> args;
      if (Peek().kind == TokenKind::kPunct && Peek().text == "(") {
        Advance();
        while (true) {
          double value = 0.0;
          SIMQ_RETURN_IF_ERROR(ParseNumber(&value));
          args.push_back(value);
          if (Peek().kind == TokenKind::kPunct && Peek().text == ",") {
            Advance();
            continue;
          }
          break;
        }
        SIMQ_RETURN_IF_ERROR(ExpectPunct(")"));
      }
      Result<std::unique_ptr<TransformationRule>> rule =
          MakeRuleByName(name, args);
      if (!rule.ok()) {
        return ErrorAt(name_position, rule.status().message());
      }
      rules.push_back(std::move(rule).value());
      if (Peek().kind == TokenKind::kPunct && Peek().text == "|") {
        Advance();
        continue;
      }
      break;
    }
    if (rules.size() == 1) {
      *out = std::move(rules[0]);
    } else {
      *out = MakeCompositeRule(std::move(rules));
    }
    return Status::Ok();
  }

  Status ParseClauses(Query* query) {
    while (Peek().kind == TokenKind::kIdent) {
      const std::string keyword = ToUpper(Peek().text);
      if (keyword == "USING") {
        Advance();
        SIMQ_RETURN_IF_ERROR(ParseTransform(&query->transform));
        // Optional per-side form for all-pairs joins: USING <left> VS
        // <right> expresses the join r >< T(r).
        if (Peek().kind == TokenKind::kIdent && ToUpper(Peek().text) == "VS") {
          if (query->kind != QueryKind::kAllPairs) {
            return Error("VS is only valid in PAIRS queries");
          }
          Advance();
          SIMQ_RETURN_IF_ERROR(ParseTransform(&query->transform_right));
        }
      } else if (keyword == "MODE") {
        Advance();
        const size_t arg_position = Peek().position;
        std::string mode;
        SIMQ_RETURN_IF_ERROR(ParseIdent(&mode));
        const std::string upper = ToUpper(mode);
        if (upper == "NORMAL") {
          query->mode = DistanceMode::kNormalForm;
        } else if (upper == "RAW") {
          query->mode = DistanceMode::kRaw;
        } else if (upper == "FILTERED") {
          // Engine toggle, not a distance mode: request the quantized
          // filter-and-refine path (answers unchanged; see core/query.h).
          query->filter = FilterMode::kFiltered;
        } else if (upper == "EXACT") {
          query->filter = FilterMode::kExact;
        } else {
          return ErrorAt(arg_position,
                         "MODE expects NORMAL, RAW, FILTERED, or EXACT");
        }
      } else if (keyword == "VIA") {
        Advance();
        const size_t arg_position = Peek().position;
        std::string via;
        SIMQ_RETURN_IF_ERROR(ParseIdent(&via));
        const std::string upper = ToUpper(via);
        if (upper == "AUTO") {
          query->strategy = ExecutionStrategy::kAuto;
        } else if (upper == "INDEX") {
          query->strategy = ExecutionStrategy::kIndex;
        } else if (upper == "SCAN") {
          query->strategy = ExecutionStrategy::kScan;
        } else if (upper == "FULLSCAN") {
          query->strategy = ExecutionStrategy::kScanNoEarlyAbandon;
        } else {
          return ErrorAt(arg_position,
                         "VIA expects AUTO, INDEX, SCAN, or FULLSCAN");
        }
      } else if (keyword == "PRENORMALIZED") {
        Advance();
        query->query_prenormalized = true;
      } else if (keyword == "MEAN") {
        Advance();
        double lo = 0.0;
        double hi = 0.0;
        SIMQ_RETURN_IF_ERROR(ParseNumber(&lo));
        SIMQ_RETURN_IF_ERROR(ParseNumber(&hi));
        if (lo > hi) {
          return Error("MEAN range must satisfy lo <= hi");
        }
        query->pattern.mean_range = {lo, hi};
      } else if (keyword == "STD") {
        Advance();
        double lo = 0.0;
        double hi = 0.0;
        SIMQ_RETURN_IF_ERROR(ParseNumber(&lo));
        SIMQ_RETURN_IF_ERROR(ParseNumber(&hi));
        if (lo > hi) {
          return Error("STD range must satisfy lo <= hi");
        }
        query->pattern.std_range = {lo, hi};
      } else {
        return Error("unexpected clause '" + Peek().text + "'");
      }
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace simq
