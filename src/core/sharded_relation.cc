#include "core/sharded_relation.h"

#include <algorithm>
#include <utility>

#include "geom/rect.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace simq {

ShardingOptions ShardingOptions::FromEnv() {
  ShardingOptions options;
  // A set-but-invalid SIMQ_SHARDS aborts with a clear message instead of
  // silently running unsharded (util/env.h).
  options.num_shards =
      PositiveIntFromEnv("SIMQ_SHARDS", options.num_shards);
  return options;
}

RelationShard::RelationShard(int dims, const RTree::Options& index_options)
    : index_(std::make_unique<RTree>(dims, index_options)) {}

const QuantizedCodes* RelationShard::quantized_codes_if_fresh(
    int bits) const {
  return quantized_.Peek(bits);
}

ShardedRelation::ShardedRelation(int dims,
                                 const RTree::Options& index_options,
                                 const ShardingOptions& options)
    : dims_(dims), index_options_(index_options), options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<RelationShard>(dims, index_options));
  }
}

uint64_t ShardedRelation::epoch() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->epoch_;
  }
  return sum;
}

uint64_t ShardedRelation::generation() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->generation_;
  }
  return sum;
}

int64_t ShardedRelation::delta_rows() const {
  int64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->size() - shard->packed_.covered();
  }
  return sum;
}

int64_t ShardedRelation::pending_tombstones() const {
  int64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->pending_tombstones_;
  }
  return sum;
}

int64_t ShardedRelation::delta_pressure() const {
  int64_t max = 0;
  for (const auto& shard : shards_) {
    max = std::max(max, shard->mutations_since_publish_);
  }
  return max;
}

int ShardedRelation::RouteNext() const {
  const int num = num_shards();
  if (num == 1) {
    return 0;
  }
  if (options_.partition == ShardingOptions::Partition::kHash) {
    return static_cast<int>(size() % num);
  }
  // kRange: fill the smallest shard; ties resolve to the lowest index, so
  // the routing is deterministic in the insertion sequence.
  int target = 0;
  for (int s = 1; s < num; ++s) {
    if (shards_[static_cast<size_t>(s)]->size() <
        shards_[static_cast<size_t>(target)]->size()) {
      target = s;
    }
  }
  return target;
}

void ShardedRelation::Append(const SeriesFeatures& features,
                             const std::vector<double>& normal_values,
                             const std::vector<double>& point) {
  const int64_t global = size();
  const int target = RouteNext();
  RelationShard& shard = *shards_[static_cast<size_t>(target)];
  shard_of_.push_back(target);
  local_of_.push_back(shard.size());
  shard.global_ids_.push_back(global);
  shard.alive_.push_back(1);
  shard.points_.insert(shard.points_.end(), point.begin(), point.end());
  shard.store_.Append(features, normal_values);
  shard.index_->InsertPoint(point, global);
  if (!delta_enabled_) {
    shard.packed_.Invalidate();
    shard.quantized_.Invalidate();
  }
  ++shard.mutations_since_publish_;
  ++shard.epoch_;
}

bool ShardedRelation::Delete(int64_t g) {
  RelationShard& shard = *shards_[static_cast<size_t>(shard_of(g))];
  uint8_t& alive = shard.alive_[static_cast<size_t>(local_of(g))];
  if (alive == 0) {
    return false;
  }
  alive = 0;
  ++dead_;
  ++shard.pending_tombstones_;
  if (!delta_enabled_) {
    shard.packed_.Invalidate();
    shard.quantized_.Invalidate();
  }
  ++shard.mutations_since_publish_;
  ++shard.epoch_;
  return true;
}

void ShardedRelation::BulkLoad(int64_t count, const LoadFn& load_row) {
  if (count <= 0) {
    return;
  }
  const int64_t base = size();
  const int num = num_shards();

  // Partition the batch: per-shard global-id lists, each ascending.
  std::vector<std::vector<int64_t>> shard_ids(static_cast<size_t>(num));
  if (options_.partition == ShardingOptions::Partition::kHash) {
    for (int64_t i = 0; i < count; ++i) {
      const int64_t g = base + i;
      shard_ids[static_cast<size_t>(g % num)].push_back(g);
    }
  } else {
    // kRange: contiguous id blocks, proportionally split.
    for (int s = 0; s < num; ++s) {
      const int64_t lo = base + count * s / num;
      const int64_t hi = base + count * (s + 1) / num;
      for (int64_t g = lo; g < hi; ++g) {
        shard_ids[static_cast<size_t>(s)].push_back(g);
      }
    }
  }

  // Locator entries are written up front (they depend only on the
  // partition, not on the shard builds).
  shard_of_.resize(static_cast<size_t>(base + count));
  local_of_.resize(static_cast<size_t>(base + count));
  for (int s = 0; s < num; ++s) {
    const int64_t existing = shards_[static_cast<size_t>(s)]->size();
    const std::vector<int64_t>& ids = shard_ids[static_cast<size_t>(s)];
    for (size_t i = 0; i < ids.size(); ++i) {
      shard_of_[static_cast<size_t>(ids[i])] = s;
      local_of_[static_cast<size_t>(ids[i])] =
          existing + static_cast<int64_t>(i);
    }
  }

  // Build every shard in parallel: derived-data computation, store fill,
  // and the STR tree build all run inside the shard task, so the load
  // scales with min(num_shards, pool threads). Each task touches only its
  // own shard (and, via load_row, only its own records), so the result is
  // deterministic and identical to a serial build.
  ThreadPool::Global().ParallelFor(
      0, num, /*min_grain=*/1, [&](int64_t /*block*/, int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          RelationShard& shard = *shards_[static_cast<size_t>(s)];
          const std::vector<int64_t>& ids =
              shard_ids[static_cast<size_t>(s)];
          if (ids.empty()) {
            continue;
          }
          std::vector<std::pair<Rect, int64_t>> entries;
          entries.reserve(ids.size());
          shard.global_ids_.reserve(shard.global_ids_.size() + ids.size());
          for (const int64_t g : ids) {
            const RowData row = load_row(g);
            SIMQ_CHECK(row.features != nullptr && row.normal_values != nullptr);
            shard.global_ids_.push_back(g);
            shard.alive_.push_back(1);
            shard.points_.insert(shard.points_.end(), row.point.begin(),
                                 row.point.end());
            shard.store_.Append(*row.features, *row.normal_values);
            entries.emplace_back(Rect::FromPoint(row.point), g);
          }
          shard.index_->BulkLoad(std::move(entries));
          // A bulk load replaces the shard tree wholesale, so the compiled
          // artifacts go stale even with the delta layer on; the next
          // compile covers everything, so no delta pressure accrues.
          shard.packed_.Invalidate();
          shard.quantized_.Invalidate();
          shard.mutations_since_publish_ = 0;
          ++shard.epoch_;
        }
      });
}

Status ShardedRelation::BuildRecompaction(
    int bits, std::vector<RelationShard::Recompaction>* out) const {
  SIMQ_RETURN_IF_FAILPOINT("recompact.build");
  out->clear();
  out->reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    const RelationShard& shard = *shard_ptr;
    RelationShard::Recompaction built;
    built.build_rows = shard.size();
    built.bits = bits;
    std::vector<std::pair<Rect, int64_t>> entries;
    entries.reserve(static_cast<size_t>(built.build_rows));
    for (int64_t r = 0; r < built.build_rows; ++r) {
      if (!shard.alive(r)) {
        continue;
      }
      const double* point = shard.points_.data() + r * dims_;
      entries.emplace_back(
          Rect::FromPoint(std::vector<double>(point, point + dims_)),
          shard.global_id(r));
    }
    built.shed =
        built.build_rows - static_cast<int64_t>(entries.size());
    built.tree = std::make_unique<RTree>(dims_, index_options_);
    if (!entries.empty()) {
      built.tree->BulkLoad(std::move(entries));
    }
    built.packed = std::make_unique<PackedRTree>(*built.tree);
    if (bits >= ScalarQuantizer::kMinBits &&
        bits <= ScalarQuantizer::kMaxBits && built.build_rows > 0) {
      built.codes = std::make_unique<QuantizedCodes>(shard.store_, bits);
    }
    out->push_back(std::move(built));
  }
  return Status::Ok();
}

Status ShardedRelation::PublishRecompaction(
    std::vector<RelationShard::Recompaction> built) {
  SIMQ_CHECK_EQ(static_cast<int>(built.size()), num_shards());
  SIMQ_RETURN_IF_FAILPOINT("recompact.publish.before");
  for (size_t s = 0; s < shards_.size(); ++s) {
    RelationShard& shard = *shards_[s];
    RelationShard::Recompaction& plan = built[s];
    if (s > 0) {
      // Between-shard boundary: a crash here leaves some shards on the
      // new generation and the rest on the old one -- each shard's
      // artifacts stay self-consistent, so answers are unaffected.
      SIMQ_RETURN_IF_FAILPOINT("recompact.publish.mid");
    }
    // Catch up rows appended since the build (dead or not: the tree keeps
    // an entry per un-shed row; tombstones filter at read time).
    for (int64_t r = plan.build_rows; r < shard.size(); ++r) {
      const double* point = shard.points_.data() + r * dims_;
      plan.tree->InsertPoint(std::vector<double>(point, point + dims_),
                             shard.global_id(r));
    }
    shard.index_ = std::move(plan.tree);
    shard.packed_.Install(std::move(plan.packed), plan.build_rows);
    shard.quantized_.Install(plan.bits, std::move(plan.codes));
    shard.pending_tombstones_ -= plan.shed;
    shard.mutations_since_publish_ = shard.size() - plan.build_rows;
    ++shard.generation_;
  }
  SIMQ_RETURN_IF_FAILPOINT("recompact.publish.after");
  return Status::Ok();
}

}  // namespace simq
