#include "core/sharded_relation.h"

#include <algorithm>
#include <utility>

#include "geom/rect.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace simq {

ShardingOptions ShardingOptions::FromEnv() {
  ShardingOptions options;
  // A set-but-invalid SIMQ_SHARDS aborts with a clear message instead of
  // silently running unsharded (util/env.h).
  options.num_shards =
      PositiveIntFromEnv("SIMQ_SHARDS", options.num_shards);
  return options;
}

RelationShard::RelationShard(int dims, const RTree::Options& index_options)
    : index_(std::make_unique<RTree>(dims, index_options)) {}

const QuantizedCodes* RelationShard::quantized_codes_if_fresh(
    int bits) const {
  return quantized_.Peek(bits);
}

ShardedRelation::ShardedRelation(int dims,
                                 const RTree::Options& index_options,
                                 const ShardingOptions& options)
    : options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<RelationShard>(dims, index_options));
  }
}

uint64_t ShardedRelation::epoch() const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->epoch_;
  }
  return sum;
}

int ShardedRelation::RouteNext() const {
  const int num = num_shards();
  if (num == 1) {
    return 0;
  }
  if (options_.partition == ShardingOptions::Partition::kHash) {
    return static_cast<int>(size() % num);
  }
  // kRange: fill the smallest shard; ties resolve to the lowest index, so
  // the routing is deterministic in the insertion sequence.
  int target = 0;
  for (int s = 1; s < num; ++s) {
    if (shards_[static_cast<size_t>(s)]->size() <
        shards_[static_cast<size_t>(target)]->size()) {
      target = s;
    }
  }
  return target;
}

void ShardedRelation::Append(const SeriesFeatures& features,
                             const std::vector<double>& normal_values,
                             const std::vector<double>& point) {
  const int64_t global = size();
  const int target = RouteNext();
  RelationShard& shard = *shards_[static_cast<size_t>(target)];
  shard_of_.push_back(target);
  local_of_.push_back(shard.size());
  shard.global_ids_.push_back(global);
  shard.store_.Append(features, normal_values);
  shard.index_->InsertPoint(point, global);
  shard.packed_.Invalidate();
  shard.quantized_.Invalidate();
  ++shard.epoch_;
}

void ShardedRelation::BulkLoad(int64_t count, const LoadFn& load_row) {
  if (count <= 0) {
    return;
  }
  const int64_t base = size();
  const int num = num_shards();

  // Partition the batch: per-shard global-id lists, each ascending.
  std::vector<std::vector<int64_t>> shard_ids(static_cast<size_t>(num));
  if (options_.partition == ShardingOptions::Partition::kHash) {
    for (int64_t i = 0; i < count; ++i) {
      const int64_t g = base + i;
      shard_ids[static_cast<size_t>(g % num)].push_back(g);
    }
  } else {
    // kRange: contiguous id blocks, proportionally split.
    for (int s = 0; s < num; ++s) {
      const int64_t lo = base + count * s / num;
      const int64_t hi = base + count * (s + 1) / num;
      for (int64_t g = lo; g < hi; ++g) {
        shard_ids[static_cast<size_t>(s)].push_back(g);
      }
    }
  }

  // Locator entries are written up front (they depend only on the
  // partition, not on the shard builds).
  shard_of_.resize(static_cast<size_t>(base + count));
  local_of_.resize(static_cast<size_t>(base + count));
  for (int s = 0; s < num; ++s) {
    const int64_t existing = shards_[static_cast<size_t>(s)]->size();
    const std::vector<int64_t>& ids = shard_ids[static_cast<size_t>(s)];
    for (size_t i = 0; i < ids.size(); ++i) {
      shard_of_[static_cast<size_t>(ids[i])] = s;
      local_of_[static_cast<size_t>(ids[i])] =
          existing + static_cast<int64_t>(i);
    }
  }

  // Build every shard in parallel: derived-data computation, store fill,
  // and the STR tree build all run inside the shard task, so the load
  // scales with min(num_shards, pool threads). Each task touches only its
  // own shard (and, via load_row, only its own records), so the result is
  // deterministic and identical to a serial build.
  ThreadPool::Global().ParallelFor(
      0, num, /*min_grain=*/1, [&](int64_t /*block*/, int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          RelationShard& shard = *shards_[static_cast<size_t>(s)];
          const std::vector<int64_t>& ids =
              shard_ids[static_cast<size_t>(s)];
          if (ids.empty()) {
            continue;
          }
          std::vector<std::pair<Rect, int64_t>> entries;
          entries.reserve(ids.size());
          shard.global_ids_.reserve(shard.global_ids_.size() + ids.size());
          for (const int64_t g : ids) {
            const RowData row = load_row(g);
            SIMQ_CHECK(row.features != nullptr && row.normal_values != nullptr);
            shard.global_ids_.push_back(g);
            shard.store_.Append(*row.features, *row.normal_values);
            entries.emplace_back(Rect::FromPoint(row.point), g);
          }
          shard.index_->BulkLoad(std::move(entries));
          shard.packed_.Invalidate();
          shard.quantized_.Invalidate();
          ++shard.epoch_;
        }
      });
}

}  // namespace simq
