#include "core/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace simq {

double WeightedEditDistance(const std::vector<double>& a,
                            const std::vector<double>& b,
                            const EditCosts& costs) {
  const size_t n = a.size();
  const size_t m = b.size();
  // Rolling single-row DP: row[j] = cost of reducing a[0..i) to b[0..j).
  std::vector<double> row(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    row[j] = static_cast<double>(j) * costs.insert_cost;
  }
  for (size_t i = 1; i <= n; ++i) {
    double diagonal = row[0];
    row[0] = static_cast<double>(i) * costs.delete_cost;
    for (size_t j = 1; j <= m; ++j) {
      const double replace =
          a[i - 1] == b[j - 1]
              ? diagonal
              : diagonal + costs.replace_flat +
                    costs.replace_per_unit * std::fabs(a[i - 1] - b[j - 1]);
      const double remove = row[j] + costs.delete_cost;
      const double insert = row[j - 1] + costs.insert_cost;
      diagonal = row[j];
      row[j] = std::min({replace, remove, insert});
    }
  }
  return row[m];
}

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   int band) {
  SIMQ_CHECK(!a.empty());
  SIMQ_CHECK(!b.empty());
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const double inf = std::numeric_limits<double>::infinity();
  if (band >= 0 && std::abs(n - m) > band) {
    // No monotone alignment fits inside the band.
    return inf;
  }

  std::vector<double> prev(static_cast<size_t>(m) + 1, inf);
  std::vector<double> curr(static_cast<size_t>(m) + 1, inf);
  prev[0] = 0.0;
  for (int i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    int j_lo = 1;
    int j_hi = m;
    if (band >= 0) {
      j_lo = std::max(1, i - band);
      j_hi = std::min(m, i + band);
    }
    for (int j = j_lo; j <= j_hi; ++j) {
      const double step = std::fabs(a[static_cast<size_t>(i - 1)] -
                                    b[static_cast<size_t>(j - 1)]);
      const double best =
          std::min({prev[static_cast<size_t>(j)],       // stutter in b
                    curr[static_cast<size_t>(j - 1)],   // stutter in a
                    prev[static_cast<size_t>(j - 1)]})  // advance both
          ;
      curr[static_cast<size_t>(j)] = step + best;
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m)];
}

}  // namespace simq
