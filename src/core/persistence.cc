#include "core/persistence.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace simq {
namespace {

constexpr char kMagicV1[] = "SIMQDB1\n";
constexpr char kMagicV2[] = "SIMQDB2\n";
constexpr size_t kMagicLength = 8;

class Writer {
 public:
  explicit Writer(const std::string& path)
      : stream_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return stream_.good(); }

  void Bytes(const void* data, size_t size) {
    stream_.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(size));
  }
  void U8(uint8_t value) { Bytes(&value, sizeof(value)); }
  void I32(int32_t value) { Bytes(&value, sizeof(value)); }
  void U32(uint32_t value) { Bytes(&value, sizeof(value)); }
  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }
  void String(const std::string& value) {
    U32(static_cast<uint32_t>(value.size()));
    Bytes(value.data(), value.size());
  }
  void Doubles(const std::vector<double>& values) {
    U64(values.size());
    Bytes(values.data(), values.size() * sizeof(double));
  }

 private:
  std::ofstream stream_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : stream_(path, std::ios::binary) {}

  bool opened() const { return stream_.is_open(); }

  Status Bytes(void* data, size_t size) {
    stream_.read(static_cast<char*>(data),
                 static_cast<std::streamsize>(size));
    if (!stream_.good()) {
      return Status::InvalidArgument("snapshot truncated or unreadable");
    }
    return Status::Ok();
  }
  Status U8(uint8_t* value) { return Bytes(value, sizeof(*value)); }
  Status I32(int32_t* value) { return Bytes(value, sizeof(*value)); }
  Status U32(uint32_t* value) { return Bytes(value, sizeof(*value)); }
  Status U64(uint64_t* value) { return Bytes(value, sizeof(*value)); }
  Status String(std::string* value) {
    uint32_t length = 0;
    SIMQ_RETURN_IF_ERROR(U32(&length));
    if (length > (1u << 20)) {
      return Status::InvalidArgument("snapshot string implausibly long");
    }
    value->resize(length);
    return length == 0 ? Status::Ok() : Bytes(value->data(), length);
  }
  Status Doubles(std::vector<double>* values) {
    uint64_t count = 0;
    SIMQ_RETURN_IF_ERROR(U64(&count));
    if (count > (1ull << 32)) {
      return Status::InvalidArgument("snapshot array implausibly long");
    }
    values->resize(count);
    return count == 0
               ? Status::Ok()
               : Bytes(values->data(), count * sizeof(double));
  }

 private:
  std::ifstream stream_;
};

// The SIMQDB2 per-relation summary block: min/max of the records' means
// and standard deviations. Derived bit-for-bit from the stored features,
// so the loader can recompute and compare exactly.
struct StatsSummary {
  double mean_min = 0.0;
  double mean_max = 0.0;
  double std_min = 0.0;
  double std_max = 0.0;
};

StatsSummary SummarizeRelation(const Relation& relation) {
  StatsSummary stats;
  bool first = true;
  for (const Record& record : relation.records()) {
    const double mean = record.features.mean;
    const double std_dev = record.features.std_dev;
    if (first) {
      stats.mean_min = stats.mean_max = mean;
      stats.std_min = stats.std_max = std_dev;
      first = false;
    } else {
      stats.mean_min = std::min(stats.mean_min, mean);
      stats.mean_max = std::max(stats.mean_max, mean);
      stats.std_min = std::min(stats.std_min, std_dev);
      stats.std_max = std::max(stats.std_max, std_dev);
    }
  }
  return stats;
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& path,
                    int format_version) {
  if (format_version != 1 && format_version != 2) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(format_version));
  }
  Writer writer(path);
  if (!writer.ok()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  writer.Bytes(format_version == 2 ? kMagicV2 : kMagicV1, kMagicLength);
  const FeatureConfig& config = db.config();
  writer.I32(config.num_coefficients);
  writer.I32(static_cast<int32_t>(config.space));
  writer.U8(config.include_mean_std ? 1 : 0);

  const std::vector<std::string> names = db.RelationNames();
  writer.U64(names.size());
  for (const std::string& name : names) {
    const Relation* relation = db.GetRelation(name);
    writer.String(name);
    writer.I32(relation->series_length());
    writer.U64(static_cast<uint64_t>(relation->size()));
    if (format_version == 2) {
      const StatsSummary stats = SummarizeRelation(*relation);
      writer.Bytes(&stats, sizeof(stats));
    }
    for (const Record& record : relation->records()) {
      if (format_version == 2) {
        writer.U64(static_cast<uint64_t>(record.id));
      }
      writer.String(record.name);
      writer.Doubles(record.raw);
    }
  }
  if (!writer.ok()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::Ok();
}

Result<Database> LoadDatabase(const std::string& path) {
  Reader reader(path);
  if (!reader.opened()) {
    return Status::NotFound("cannot open snapshot '" + path + "'");
  }
  char magic[kMagicLength];
  SIMQ_RETURN_IF_ERROR(reader.Bytes(magic, kMagicLength));
  const std::string magic_str(magic, kMagicLength);
  int version = 0;
  if (magic_str == std::string(kMagicV1, kMagicLength)) {
    version = 1;
  } else if (magic_str == std::string(kMagicV2, kMagicLength)) {
    version = 2;
  } else {
    return Status::InvalidArgument("'" + path + "' is not a simq snapshot");
  }

  FeatureConfig config;
  int32_t space = 0;
  uint8_t include_mean_std = 0;
  SIMQ_RETURN_IF_ERROR(reader.I32(&config.num_coefficients));
  SIMQ_RETURN_IF_ERROR(reader.I32(&space));
  SIMQ_RETURN_IF_ERROR(reader.U8(&include_mean_std));
  if (config.num_coefficients <= 0 || space < 0 || space > 1) {
    return Status::InvalidArgument("snapshot has a corrupt configuration");
  }
  config.space = static_cast<FeatureSpace>(space);
  config.include_mean_std = include_mean_std != 0;

  Database db(config);
  uint64_t relation_count = 0;
  SIMQ_RETURN_IF_ERROR(reader.U64(&relation_count));
  for (uint64_t r = 0; r < relation_count; ++r) {
    std::string relation_name;
    SIMQ_RETURN_IF_ERROR(reader.String(&relation_name));
    int32_t series_length = 0;
    SIMQ_RETURN_IF_ERROR(reader.I32(&series_length));
    uint64_t record_count = 0;
    SIMQ_RETURN_IF_ERROR(reader.U64(&record_count));
    StatsSummary stored_stats;
    if (version == 2) {
      SIMQ_RETURN_IF_ERROR(reader.Bytes(&stored_stats, sizeof(stored_stats)));
    }
    SIMQ_RETURN_IF_ERROR(db.CreateRelation(relation_name));

    std::vector<TimeSeries> series(record_count);
    for (uint64_t i = 0; i < record_count; ++i) {
      if (version == 2) {
        uint64_t id = 0;
        SIMQ_RETURN_IF_ERROR(reader.U64(&id));
        // The engine assigns dense ids in insertion order; a snapshot with
        // any other sequence is corrupt (and restoring it would silently
        // renumber the records).
        if (id != i) {
          return Status::InvalidArgument(
              "snapshot record ids are not the dense insertion sequence in "
              "relation '" + relation_name + "'");
        }
      }
      SIMQ_RETURN_IF_ERROR(reader.String(&series[i].id));
      SIMQ_RETURN_IF_ERROR(reader.Doubles(&series[i].values));
      if (series[i].length() != series_length) {
        return Status::InvalidArgument(
            "snapshot record length mismatch in relation '" + relation_name +
            "'");
      }
    }
    SIMQ_RETURN_IF_ERROR(db.BulkLoad(relation_name, series));
    if (version == 2 && record_count > 0) {
      const StatsSummary recomputed =
          SummarizeRelation(*db.GetRelation(relation_name));
      // Bit-pattern comparison (not ==): NaN stats from NaN-bearing series
      // must round-trip like any other value.
      if (std::memcmp(&recomputed, &stored_stats, sizeof(recomputed)) != 0) {
        return Status::InvalidArgument(
            "snapshot relation stats do not match the restored records in "
            "relation '" + relation_name + "'");
      }
    }
  }
  return db;
}

}  // namespace simq
