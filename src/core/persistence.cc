#include "core/persistence.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace simq {
namespace {

constexpr char kMagicV1[] = "SIMQDB1\n";
constexpr char kMagicV2[] = "SIMQDB2\n";
constexpr char kMagicV3[] = "SIMQDB3\n";
constexpr char kMagicV4[] = "SIMQDB4\n";
constexpr size_t kMagicLength = 8;

// Serializes into an in-memory buffer. The whole snapshot is built in
// memory first so it can be written to disk atomically; databases are
// memory-resident anyway, so the transient copy is acceptable.
class BufferWriter {
 public:
  void Bytes(const void* data, size_t size) {
    const char* bytes = static_cast<const char*>(data);
    buffer_.append(bytes, size);
  }
  void U8(uint8_t value) { Bytes(&value, sizeof(value)); }
  void I32(int32_t value) { Bytes(&value, sizeof(value)); }
  void U32(uint32_t value) { Bytes(&value, sizeof(value)); }
  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }
  void String(const std::string& value) {
    U32(static_cast<uint32_t>(value.size()));
    Bytes(value.data(), value.size());
  }
  void Doubles(const std::vector<double>& values) {
    U64(values.size());
    Bytes(values.data(), values.size() * sizeof(double));
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

// Parses a byte range with bounds checks: every count read from the bytes
// is validated against the bytes actually present before any allocation,
// so a corrupt length field yields kCorruption instead of a huge resize.
class BufferReader {
 public:
  BufferReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  Status Bytes(void* out, size_t size) {
    if (size > remaining()) {
      return Status::Corruption("snapshot truncated");
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return Status::Ok();
  }
  Status U8(uint8_t* value) { return Bytes(value, sizeof(*value)); }
  Status I32(int32_t* value) { return Bytes(value, sizeof(*value)); }
  Status U32(uint32_t* value) { return Bytes(value, sizeof(*value)); }
  Status U64(uint64_t* value) { return Bytes(value, sizeof(*value)); }
  Status String(std::string* value) {
    uint32_t length = 0;
    SIMQ_RETURN_IF_ERROR(U32(&length));
    if (length > remaining()) {
      return Status::Corruption("snapshot string extends past end of data");
    }
    value->assign(data_ + pos_, length);
    pos_ += length;
    return Status::Ok();
  }
  Status Doubles(std::vector<double>* values) {
    uint64_t count = 0;
    SIMQ_RETURN_IF_ERROR(U64(&count));
    if (count > remaining() / sizeof(double)) {
      return Status::Corruption("snapshot array extends past end of data");
    }
    values->resize(count);
    return count == 0 ? Status::Ok()
                      : Bytes(values->data(), count * sizeof(double));
  }

  // Returns the next `size` bytes without copying, or kCorruption.
  Status Span(size_t size, const char** out) {
    if (size > remaining()) {
      return Status::Corruption("snapshot section extends past end of file");
    }
    *out = data_ + pos_;
    pos_ += size;
    return Status::Ok();
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// The SIMQDB2+ per-relation summary block: min/max of the records' means
// and standard deviations. Derived bit-for-bit from the stored features,
// so the loader can recompute and compare exactly.
struct StatsSummary {
  double mean_min = 0.0;
  double mean_max = 0.0;
  double std_min = 0.0;
  double std_max = 0.0;
};

StatsSummary SummarizeRelation(const Relation& relation) {
  StatsSummary stats;
  bool first = true;
  for (const Record& record : relation.records()) {
    const double mean = record.features.mean;
    const double std_dev = record.features.std_dev;
    if (first) {
      stats.mean_min = stats.mean_max = mean;
      stats.std_min = stats.std_max = std_dev;
      first = false;
    } else {
      stats.mean_min = std::min(stats.mean_min, mean);
      stats.mean_max = std::max(stats.mean_max, mean);
      stats.std_min = std::min(stats.std_min, std_dev);
      stats.std_max = std::max(stats.std_max, std_dev);
    }
  }
  return stats;
}

// Serializes one relation in the version's per-relation layout (ids and
// stats from version 2 on).
void AppendRelationBlock(const std::string& name, const Relation& relation,
                         int version, BufferWriter* writer) {
  writer->String(name);
  writer->I32(relation.series_length());
  writer->U64(static_cast<uint64_t>(relation.size()));
  if (version >= 2) {
    const StatsSummary stats = SummarizeRelation(relation);
    writer->Bytes(&stats, sizeof(stats));
  }
  for (const Record& record : relation.records()) {
    if (version >= 2) {
      writer->U64(static_cast<uint64_t>(record.id));
    }
    writer->String(record.name);
    writer->Doubles(record.raw);
  }
  if (version >= 4) {
    // Tombstone block: ids of deleted records. The records themselves are
    // still stored above (their names stay reserved), so the loader
    // restores by bulk-loading everything and re-deleting these ids.
    std::vector<uint64_t> dead;
    for (const Record& record : relation.records()) {
      if (!relation.sharded().alive(record.id)) {
        dead.push_back(static_cast<uint64_t>(record.id));
      }
    }
    writer->U64(dead.size());
    for (const uint64_t id : dead) {
      writer->U64(id);
    }
  }
}

// Parses one relation block and restores it into `db` via bulk load,
// validating ids and stats for version >= 2.
Status ParseRelationBlock(BufferReader* reader, int version, Database* db) {
  std::string relation_name;
  SIMQ_RETURN_IF_ERROR(reader->String(&relation_name));
  int32_t series_length = 0;
  SIMQ_RETURN_IF_ERROR(reader->I32(&series_length));
  uint64_t record_count = 0;
  SIMQ_RETURN_IF_ERROR(reader->U64(&record_count));
  StatsSummary stored_stats;
  if (version >= 2) {
    SIMQ_RETURN_IF_ERROR(reader->Bytes(&stored_stats, sizeof(stored_stats)));
  }
  SIMQ_RETURN_IF_ERROR(db->CreateRelation(relation_name));

  // Every record carries at least a length-prefixed name and a double
  // count, so `record_count` cannot exceed the bytes left to parse.
  if (record_count > reader->remaining() / sizeof(uint64_t)) {
    return Status::Corruption("snapshot record count extends past end of "
                              "data in relation '" + relation_name + "'");
  }
  std::vector<TimeSeries> series(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    if (version >= 2) {
      uint64_t id = 0;
      SIMQ_RETURN_IF_ERROR(reader->U64(&id));
      // The engine assigns dense ids in insertion order; a snapshot with
      // any other sequence is corrupt (and restoring it would silently
      // renumber the records).
      if (id != i) {
        return Status::Corruption(
            "snapshot record ids are not the dense insertion sequence in "
            "relation '" + relation_name + "'");
      }
    }
    SIMQ_RETURN_IF_ERROR(reader->String(&series[i].id));
    SIMQ_RETURN_IF_ERROR(reader->Doubles(&series[i].values));
    if (series[i].length() != series_length) {
      return Status::Corruption(
          "snapshot record length mismatch in relation '" + relation_name +
          "'");
    }
  }
  SIMQ_RETURN_IF_ERROR(db->BulkLoad(relation_name, series));
  if (version >= 2 && record_count > 0) {
    const StatsSummary recomputed =
        SummarizeRelation(*db->GetRelation(relation_name));
    // Bit-pattern comparison (not ==): NaN stats from NaN-bearing series
    // must round-trip like any other value.
    if (std::memcmp(&recomputed, &stored_stats, sizeof(recomputed)) != 0) {
      return Status::Corruption(
          "snapshot relation stats do not match the restored records in "
          "relation '" + relation_name + "'");
    }
  }
  if (version >= 4) {
    uint64_t tombstone_count = 0;
    SIMQ_RETURN_IF_ERROR(reader->U64(&tombstone_count));
    if (tombstone_count > reader->remaining() / sizeof(uint64_t) ||
        tombstone_count > record_count) {
      return Status::Corruption(
          "snapshot tombstone count extends past end of data in relation '" +
          relation_name + "'");
    }
    for (uint64_t i = 0; i < tombstone_count; ++i) {
      uint64_t id = 0;
      SIMQ_RETURN_IF_ERROR(reader->U64(&id));
      if (id >= record_count) {
        return Status::Corruption(
            "snapshot tombstone id out of range in relation '" +
            relation_name + "'");
      }
      SIMQ_RETURN_IF_ERROR(
          db->Delete(relation_name, static_cast<int64_t>(id)));
    }
  }
  return Status::Ok();
}

// Appends a [length][crc][payload] section frame to the file buffer.
void AppendSection(const std::string& payload, BufferWriter* file) {
  file->U32(static_cast<uint32_t>(payload.size()));
  file->U32(Crc32(payload.data(), payload.size()));
  file->Bytes(payload.data(), payload.size());
}

// Reads one section frame, validates its CRC, and returns the payload as
// a view into the file buffer.
Status ReadSection(BufferReader* file, const char** payload, size_t* size) {
  uint32_t length = 0;
  uint32_t crc = 0;
  SIMQ_RETURN_IF_ERROR(file->U32(&length));
  SIMQ_RETURN_IF_ERROR(file->U32(&crc));
  SIMQ_RETURN_IF_ERROR(file->Span(length, payload));
  if (Crc32(*payload, length) != crc) {
    return Status::Corruption("snapshot section checksum mismatch");
  }
  *size = length;
  return Status::Ok();
}

// Writes `data` to `path` via the atomic protocol: temp file, fsync,
// rename, parent-directory fsync. On any failure the temp file is
// unlinked and the previous contents of `path` are untouched.
Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp_path = path + ".tmp";
  SIMQ_RETURN_IF_FAILPOINT("save.open");
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp_path +
                           "' for writing: " + std::strerror(errno));
  }
  Status status = [&]() -> Status {
    size_t offset = 0;
    while (offset < data.size()) {
      SIMQ_RETURN_IF_FAILPOINT("save.write");
      const ssize_t written =
          ::write(fd, data.data() + offset, data.size() - offset);
      if (written < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("write to '" + tmp_path +
                               "' failed: " + std::strerror(errno));
      }
      offset += static_cast<size_t>(written);
    }
    SIMQ_RETURN_IF_FAILPOINT("save.sync");
    if (::fsync(fd) != 0) {
      return Status::IoError("fsync of '" + tmp_path +
                             "' failed: " + std::strerror(errno));
    }
    return Status::Ok();
  }();
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError("close of '" + tmp_path +
                             "' failed: " + std::strerror(errno));
  }
  if (status.ok()) {
    if (SIMQ_FAILPOINT_FIRED("save.rename")) {
      status = Status::IoError("injected failure at failpoint 'save.rename'");
    } else if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
      status = Status::IoError("rename of '" + tmp_path + "' to '" + path +
                               "' failed: " + std::strerror(errno));
    }
  }
  if (!status.ok()) {
    ::unlink(tmp_path.c_str());
    return status;
  }
  // Persist the rename itself: fsync the parent directory so the new
  // directory entry survives a crash. Best-effort -- some filesystems
  // refuse O_RDONLY opens of directories.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

// Reads the whole file into `out`, sized from fstat -- allocations are
// bounded by the bytes actually on disk, never by counts inside them.
Status ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("cannot open snapshot '" + path + "'");
    }
    return Status::IoError("cannot open snapshot '" + path +
                           "': " + std::strerror(errno));
  }
  Status status = [&]() -> Status {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return Status::IoError("fstat of '" + path +
                             "' failed: " + std::strerror(errno));
    }
    out->resize(static_cast<size_t>(st.st_size));
    size_t offset = 0;
    while (offset < out->size()) {
      const ssize_t n =
          ::read(fd, out->data() + offset, out->size() - offset);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("read of '" + path +
                               "' failed: " + std::strerror(errno));
      }
      if (n == 0) {
        // Shrank under us; parse what we got and let validation decide.
        out->resize(offset);
        break;
      }
      offset += static_cast<size_t>(n);
    }
    return Status::Ok();
  }();
  ::close(fd);
  return status;
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& path,
                    int format_version) {
  if (format_version < 1 || format_version > 4) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(format_version));
  }
  const FeatureConfig& config = db.config();
  const std::vector<std::string> names = db.RelationNames();

  BufferWriter file;
  if (format_version >= 3) {
    file.Bytes(format_version == 4 ? kMagicV4 : kMagicV3, kMagicLength);
    BufferWriter header;
    header.I32(config.num_coefficients);
    header.I32(static_cast<int32_t>(config.space));
    header.U8(config.include_mean_std ? 1 : 0);
    header.U64(names.size());
    AppendSection(header.buffer(), &file);
    for (const std::string& name : names) {
      BufferWriter section;
      AppendRelationBlock(name, *db.GetRelation(name), format_version,
                          &section);
      AppendSection(section.buffer(), &file);
    }
  } else {
    file.Bytes(format_version == 2 ? kMagicV2 : kMagicV1, kMagicLength);
    file.I32(config.num_coefficients);
    file.I32(static_cast<int32_t>(config.space));
    file.U8(config.include_mean_std ? 1 : 0);
    file.U64(names.size());
    for (const std::string& name : names) {
      AppendRelationBlock(name, *db.GetRelation(name), format_version,
                          &file);
    }
  }
  return AtomicWriteFile(path, file.buffer());
}

Result<Database> LoadDatabase(const std::string& path) {
  std::string bytes;
  SIMQ_RETURN_IF_ERROR(ReadFile(path, &bytes));
  if (bytes.size() < kMagicLength) {
    return Status::Corruption("'" + path + "' is not a simq snapshot");
  }
  int version = 0;
  if (std::memcmp(bytes.data(), kMagicV1, kMagicLength) == 0) {
    version = 1;
  } else if (std::memcmp(bytes.data(), kMagicV2, kMagicLength) == 0) {
    version = 2;
  } else if (std::memcmp(bytes.data(), kMagicV3, kMagicLength) == 0) {
    version = 3;
  } else if (std::memcmp(bytes.data(), kMagicV4, kMagicLength) == 0) {
    version = 4;
  } else {
    return Status::Corruption("'" + path + "' is not a simq snapshot");
  }
  BufferReader file(bytes.data() + kMagicLength, bytes.size() - kMagicLength);

  FeatureConfig config;
  int32_t space = 0;
  uint8_t include_mean_std = 0;
  uint64_t relation_count = 0;

  if (version >= 3) {
    const char* header_bytes = nullptr;
    size_t header_size = 0;
    SIMQ_RETURN_IF_ERROR(ReadSection(&file, &header_bytes, &header_size));
    BufferReader header(header_bytes, header_size);
    SIMQ_RETURN_IF_ERROR(header.I32(&config.num_coefficients));
    SIMQ_RETURN_IF_ERROR(header.I32(&space));
    SIMQ_RETURN_IF_ERROR(header.U8(&include_mean_std));
    SIMQ_RETURN_IF_ERROR(header.U64(&relation_count));
    if (header.remaining() != 0) {
      return Status::Corruption("snapshot header has trailing bytes");
    }
  } else {
    SIMQ_RETURN_IF_ERROR(file.I32(&config.num_coefficients));
    SIMQ_RETURN_IF_ERROR(file.I32(&space));
    SIMQ_RETURN_IF_ERROR(file.U8(&include_mean_std));
    SIMQ_RETURN_IF_ERROR(file.U64(&relation_count));
  }
  if (config.num_coefficients <= 0 || space < 0 || space > 1) {
    return Status::Corruption("snapshot has a corrupt configuration");
  }
  config.space = static_cast<FeatureSpace>(space);
  config.include_mean_std = include_mean_std != 0;

  Database db(config);
  for (uint64_t r = 0; r < relation_count; ++r) {
    if (version >= 3) {
      const char* section_bytes = nullptr;
      size_t section_size = 0;
      SIMQ_RETURN_IF_ERROR(ReadSection(&file, &section_bytes, &section_size));
      BufferReader section(section_bytes, section_size);
      SIMQ_RETURN_IF_ERROR(ParseRelationBlock(&section, version, &db));
      if (section.remaining() != 0) {
        return Status::Corruption("snapshot relation section has trailing "
                                  "bytes");
      }
    } else {
      SIMQ_RETURN_IF_ERROR(ParseRelationBlock(&file, version, &db));
    }
  }
  if (version >= 3 && file.remaining() != 0) {
    return Status::Corruption("snapshot has trailing bytes after the last "
                              "section");
  }
  return db;
}

}  // namespace simq
