/// Cooperative deadline and cancellation for query execution.
///
/// An ExecutionContext travels with a Query (Query::exec). The execution
/// drivers in core/database.cc poll Check() at block boundaries -- between
/// scan units, shards, outer join rows, and index candidates -- and
/// propagate its typed error (kTimeout or kCancelled) instead of returning
/// partial garbage. Polling is cooperative: a query stops within one block
/// of work after the deadline passes or Cancel() is called, never
/// mid-block, so results are always all-or-nothing.
///
/// The context is shared (shared_ptr, atomics only) so a service session
/// can cancel a query running on another thread. A null context on the
/// query means "no deadline, not cancellable" and costs nothing.
///
/// The context also carries the query's optional trace (obs/trace.h):
/// the service attaches one before execution when the query is EXPLAIN
/// ANALYZE, tracing is forced, or the sampler fires, and the engine reads
/// it through trace() at stage boundaries. A null trace (the common case)
/// keeps every instrumentation site at one pointer load.

#ifndef SIMQ_CORE_EXEC_CONTEXT_H_
#define SIMQ_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace simq {

namespace obs {
class Trace;
struct QueryAccounting;
}  // namespace obs

class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;

  // Sets an absolute deadline; queries polled after it return kTimeout.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(Clock::now() + budget);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_relaxed)));
  }

  // Requests cancellation; the running query observes it at its next poll.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Attaches / reads the per-query trace. The service sets it before the
  // engine runs and detaches it after (never mid-flight), so there is a
  // single writer with happens-before edges to every engine reader. The
  // Trace itself is internally synchronized, and attaching observational
  // metadata does not mutate the context's execution semantics -- hence
  // const, so the service can attach through Query::exec's const pointer.
  void set_trace(std::shared_ptr<obs::Trace> trace) const {
    trace_ = std::move(trace);
  }
  obs::Trace* trace() const { return trace_.get(); }
  std::shared_ptr<obs::Trace> shared_trace() const { return trace_; }

  // Attaches / reads the per-query resource-accounting cells
  // (obs/resource_usage.h). Same single-writer discipline and const
  // rationale as the trace: the service attaches before the engine runs
  // and detaches after; the cells themselves are atomics, written by
  // pool workers through the thread pool's CPU sink.
  void set_accounting(std::shared_ptr<obs::QueryAccounting> acct) const {
    accounting_ = std::move(acct);
  }
  obs::QueryAccounting* accounting() const { return accounting_.get(); }

  // The poll: OK while the query may continue, kCancelled / kTimeout once
  // it must stop. Cancellation wins over timeout when both apply.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    const int64_t deadline_ns =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline_ns != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= deadline_ns) {
      return Status::Timeout("query deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<bool> cancelled_{false};
  mutable std::shared_ptr<obs::Trace> trace_;
  mutable std::shared_ptr<obs::QueryAccounting> accounting_;
};

// Polls an optional context: a null pointer never stops execution.
inline Status CheckExecution(
    const std::shared_ptr<const ExecutionContext>& exec) {
  return exec == nullptr ? Status::Ok() : exec->Check();
}

}  // namespace simq

#endif  // SIMQ_CORE_EXEC_CONTEXT_H_
