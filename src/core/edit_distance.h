/// Closed-form reducibility solvers for discrete transformation-rule systems.
///
/// [JMM95] relates its cost-bounded reducibility to classical sequence
/// comparison: when the rule set consists of local editing rules
/// (insert/delete/replace a sample, or stutter/drop for time warping
/// [SK83]), the cheapest reducing derivation is computed by dynamic
/// programming instead of searching over rule sequences. These solvers are
/// the framework's polynomial special cases; core/similarity.h provides the
/// general branch-and-bound search.

#ifndef SIMQ_CORE_EDIT_DISTANCE_H_
#define SIMQ_CORE_EDIT_DISTANCE_H_

#include <vector>

namespace simq {

// Costs of the three editing rules. Replacement cost is
//   replace_flat + replace_per_unit * |a - b|,
// so both classic unit-cost edit distance (flat=1, per_unit=0) and
// magnitude-sensitive variants are expressible.
struct EditCosts {
  double insert_cost = 1.0;
  double delete_cost = 1.0;
  double replace_flat = 0.0;
  double replace_per_unit = 1.0;
};

// Minimum total rule cost reducing sequence `a` to sequence `b` using
// insert/delete/replace rules. O(|a| * |b|) time, O(min) space.
double WeightedEditDistance(const std::vector<double>& a,
                            const std::vector<double>& b,
                            const EditCosts& costs);

// Dynamic time warping distance: minimum sum of |a_i - b_j| over monotone
// alignments (the stutter/drop rule system). `band` restricts |i - j| to a
// Sakoe-Chiba band; band < 0 means unconstrained.
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   int band = -1);

}  // namespace simq

#endif  // SIMQ_CORE_EDIT_DISTANCE_H_
