#include "core/transformation.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

#include "ts/transforms.h"
#include "util/logging.h"

namespace simq {
namespace {

// Renders a rule's double argument at full round-trip precision
// (max_digits10): name() is the canonical textual identity of a rule --
// the parser reconstructs rules from it and the query service fingerprints
// cache entries with it -- so two rules that behave differently must never
// print identically. Integer-valued doubles keep their short form.
std::string FormatRuleArg(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

class IdentityRule : public TransformationRule {
 public:
  explicit IdentityRule(double cost) : cost_(cost) {}
  std::string name() const override { return "identity"; }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    return series;
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    (void)f;
    (void)n;
    return Complex(1.0, 0.0);
  }
  bool IsNormalFormInvariant() const override { return true; }

 private:
  double cost_;
};

class WeightedMovingAverageRule : public TransformationRule {
 public:
  WeightedMovingAverageRule(std::vector<double> weights, std::string name,
                            double cost)
      : weights_(std::move(weights)), name_(std::move(name)), cost_(cost) {
    SIMQ_CHECK(!weights_.empty());
  }
  std::string name() const override { return name_; }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    // Kernels longer than the series fold modulo n: circular convolution
    // wraps them anyway (needed for long exponential-smoothing tails on
    // short series).
    if (weights_.size() <= series.size()) {
      return WeightedCircularMovingAverage(series, weights_);
    }
    std::vector<double> folded(series.size(), 0.0);
    for (size_t t = 0; t < weights_.size(); ++t) {
      folded[t % series.size()] += weights_[t];
    }
    return WeightedCircularMovingAverage(series, folded);
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    // e^{-j 2 pi t f / n} is periodic in t with period n, so weights past
    // the series length fold automatically.
    Complex sum(0.0, 0.0);
    for (size_t t = 0; t < weights_.size(); ++t) {
      const double phase = -2.0 * M_PI * static_cast<double>(t) *
                           static_cast<double>(f) / static_cast<double>(n);
      sum += weights_[t] * Complex(std::cos(phase), std::sin(phase));
    }
    return sum;
  }

 private:
  std::vector<double> weights_;
  std::string name_;
  double cost_;
};

class ReverseRule : public TransformationRule {
 public:
  explicit ReverseRule(double cost) : cost_(cost) {}
  std::string name() const override { return "reverse"; }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    return ReverseSeries(series);
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    (void)f;
    (void)n;
    return Complex(-1.0, 0.0);
  }

 private:
  double cost_;
};

class TimeWarpRule : public TransformationRule {
 public:
  TimeWarpRule(int warp_factor, double cost)
      : warp_factor_(warp_factor), cost_(cost) {
    SIMQ_CHECK_GT(warp_factor_, 0);
  }
  std::string name() const override {
    std::ostringstream out;
    out << "warp(" << warp_factor_ << ")";
    return out.str();
  }
  double cost() const override { return cost_; }
  int OutputLength(int input_length) const override {
    return input_length * warp_factor_;
  }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    return TimeWarpSeries(series, warp_factor_);
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    // Appendix A with the corrected unitary normalization: the multiplier
    // connecting X_{f mod n} of the input to coefficient f of the warped,
    // length m*n output.
    const double mn =
        static_cast<double>(warp_factor_) * static_cast<double>(n);
    Complex sum(0.0, 0.0);
    for (int t = 0; t < warp_factor_; ++t) {
      const double phase =
          -2.0 * M_PI * static_cast<double>(t) * static_cast<double>(f) / mn;
      sum += Complex(std::cos(phase), std::sin(phase));
    }
    return sum / std::sqrt(static_cast<double>(warp_factor_));
  }

 private:
  int warp_factor_;
  double cost_;
};

class ShiftRule : public TransformationRule {
 public:
  ShiftRule(double amount, double cost) : amount_(amount), cost_(cost) {}
  std::string name() const override {
    std::ostringstream out;
    out << "shift(" << FormatRuleArg(amount_) << ")";
    return out.str();
  }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    std::vector<double> out(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      out[i] = series[i] + amount_;
    }
    return out;
  }
  // A shift moves only DFT coefficient 0, which the normal-form index drops;
  // it is not an element-wise multiplier, but it is invisible to normal-form
  // distance semantics.
  bool IsNormalFormInvariant() const override { return true; }

 private:
  double amount_;
  double cost_;
};

class ScaleRule : public TransformationRule {
 public:
  ScaleRule(double factor, double cost) : factor_(factor), cost_(cost) {}
  std::string name() const override {
    std::ostringstream out;
    out << "scale(" << FormatRuleArg(factor_) << ")";
    return out.str();
  }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    std::vector<double> out(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      out[i] = factor_ * series[i];
    }
    return out;
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    (void)f;
    (void)n;
    return Complex(factor_, 0.0);
  }
  bool IsNormalFormInvariant() const override { return factor_ > 0.0; }

 private:
  double factor_;
  double cost_;
};

class DifferenceRule : public TransformationRule {
 public:
  explicit DifferenceRule(double cost) : cost_(cost) {}
  std::string name() const override { return "diff"; }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    const size_t n = series.size();
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = series[i] - series[(i + n - 1) % n];
    }
    return out;
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    // T(x) = circconv(x, (1, -1, 0, ...)): multiplier is the unnormalized
    // DFT of the kernel, 1 - e^{-j 2 pi f / n}.
    const double phase =
        -2.0 * M_PI * static_cast<double>(f) / static_cast<double>(n);
    return Complex(1.0, 0.0) - Complex(std::cos(phase), std::sin(phase));
  }

 private:
  double cost_;
};

class DespikeRule : public TransformationRule {
 public:
  DespikeRule(double threshold, double cost)
      : threshold_(threshold), cost_(cost) {
    SIMQ_CHECK_GE(threshold_, 0.0);
  }
  std::string name() const override {
    std::ostringstream out;
    out << "despike(" << FormatRuleArg(threshold_) << ")";
    return out.str();
  }
  double cost() const override { return cost_; }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    const size_t n = series.size();
    std::vector<double> out = series;
    if (n < 3) {
      return out;
    }
    for (size_t i = 0; i < n; ++i) {
      const double neighbors =
          0.5 * (series[(i + n - 1) % n] + series[(i + 1) % n]);
      if (std::fabs(series[i] - neighbors) > threshold_) {
        out[i] = neighbors;
      }
    }
    return out;
  }

 private:
  double threshold_;
  double cost_;
};

class CompositeRule : public TransformationRule {
 public:
  explicit CompositeRule(std::vector<std::unique_ptr<TransformationRule>> rules)
      : rules_(std::move(rules)) {
    SIMQ_CHECK(!rules_.empty());
  }
  std::string name() const override {
    std::string out;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (i > 0) {
        out += "|";
      }
      out += rules_[i]->name();
    }
    return out;
  }
  double cost() const override {
    double total = 0.0;
    for (const auto& rule : rules_) {
      total += rule->cost();
    }
    return total;
  }
  int OutputLength(int input_length) const override {
    int length = input_length;
    for (const auto& rule : rules_) {
      length = rule->OutputLength(length);
    }
    return length;
  }
  std::vector<double> Apply(const std::vector<double>& series) const override {
    std::vector<double> out = series;
    for (const auto& rule : rules_) {
      out = rule->Apply(out);
    }
    return out;
  }
  std::optional<Complex> Multiplier(int f, int n) const override {
    // Chain multipliers back to front, reducing the coefficient index
    // modulo each stage's input length (length changes only via warps).
    std::vector<int> lengths(rules_.size() + 1);
    lengths[0] = n;
    for (size_t i = 0; i < rules_.size(); ++i) {
      lengths[i + 1] = rules_[i]->OutputLength(lengths[i]);
    }
    Complex product(1.0, 0.0);
    int index = f;
    for (size_t i = rules_.size(); i-- > 0;) {
      const std::optional<Complex> m =
          rules_[i]->Multiplier(index, lengths[i]);
      if (!m.has_value()) {
        return std::nullopt;
      }
      product *= *m;
      index %= lengths[i];
    }
    return product;
  }
  bool IsNormalFormInvariant() const override {
    for (const auto& rule : rules_) {
      if (!rule->IsNormalFormInvariant()) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<TransformationRule>> rules_;
};

}  // namespace

std::optional<LinearTransform> TransformationRule::IndexTransform(
    int n, int k) const {
  SIMQ_CHECK_GT(k, 0);
  if (k >= n) {
    return std::nullopt;
  }
  std::vector<Complex> stretch(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    const std::optional<Complex> m = Multiplier(c + 1, n);
    if (!m.has_value()) {
      return std::nullopt;
    }
    stretch[static_cast<size_t>(c)] = *m;
  }
  return LinearTransform(
      std::move(stretch),
      std::vector<Complex>(static_cast<size_t>(k), Complex(0.0, 0.0)));
}

std::unique_ptr<TransformationRule> MakeIdentityRule(double cost) {
  return std::make_unique<IdentityRule>(cost);
}

std::unique_ptr<TransformationRule> MakeMovingAverageRule(int window,
                                                          double cost) {
  SIMQ_CHECK_GT(window, 0);
  std::ostringstream name;
  name << "mavg(" << window << ")";
  return std::make_unique<WeightedMovingAverageRule>(
      std::vector<double>(static_cast<size_t>(window),
                          1.0 / static_cast<double>(window)),
      name.str(), cost);
}

std::unique_ptr<TransformationRule> MakeWeightedMovingAverageRule(
    std::vector<double> weights, double cost) {
  std::ostringstream name;
  name << "wmavg(";
  for (size_t i = 0; i < weights.size(); ++i) {
    name << (i > 0 ? "," : "") << FormatRuleArg(weights[i]);
  }
  name << ")";
  return std::make_unique<WeightedMovingAverageRule>(std::move(weights),
                                                     name.str(), cost);
}

std::unique_ptr<TransformationRule> MakeReverseRule(double cost) {
  return std::make_unique<ReverseRule>(cost);
}

std::unique_ptr<TransformationRule> MakeTimeWarpRule(int warp_factor,
                                                     double cost) {
  return std::make_unique<TimeWarpRule>(warp_factor, cost);
}

std::unique_ptr<TransformationRule> MakeShiftRule(double amount, double cost) {
  return std::make_unique<ShiftRule>(amount, cost);
}

std::unique_ptr<TransformationRule> MakeScaleRule(double factor, double cost) {
  return std::make_unique<ScaleRule>(factor, cost);
}

std::unique_ptr<TransformationRule> MakeDifferenceRule(double cost) {
  return std::make_unique<DifferenceRule>(cost);
}

std::unique_ptr<TransformationRule> MakeExponentialSmoothingRule(
    double alpha, double cost) {
  SIMQ_CHECK(alpha > 0.0 && alpha <= 1.0);
  // Truncate the geometric tail once the residual weight is negligible;
  // weights are normalized to sum to 1 so the rule preserves the mean.
  std::vector<double> weights;
  double weight = alpha;
  double total = 0.0;
  while (weight > 1e-12 * alpha && weights.size() < 512) {
    weights.push_back(weight);
    total += weight;
    weight *= (1.0 - alpha);
  }
  for (double& w : weights) {
    w /= total;
  }
  std::ostringstream name;
  name << "ewma(" << FormatRuleArg(alpha) << ")";
  return std::make_unique<WeightedMovingAverageRule>(std::move(weights),
                                                     name.str(), cost);
}

std::unique_ptr<TransformationRule> MakeDespikeRule(double spike_threshold,
                                                    double cost) {
  return std::make_unique<DespikeRule>(spike_threshold, cost);
}

std::unique_ptr<TransformationRule> MakeCompositeRule(
    std::vector<std::unique_ptr<TransformationRule>> rules) {
  return std::make_unique<CompositeRule>(std::move(rules));
}

Result<std::unique_ptr<TransformationRule>> MakeRuleByName(
    const std::string& name, const std::vector<double>& args) {
  auto arg_count_error = [&](const char* expected) {
    std::ostringstream out;
    out << "rule '" << name << "' expects " << expected;
    return Status::InvalidArgument(out.str());
  };
  const double cost = args.size() >= 2 ? args.back() : 0.0;

  if (name == "identity") {
    if (args.size() > 1) {
      return arg_count_error("at most one argument (cost)");
    }
    return MakeIdentityRule(args.empty() ? 0.0 : args[0]);
  }
  if (name == "reverse") {
    if (args.size() > 1) {
      return arg_count_error("at most one argument (cost)");
    }
    return MakeReverseRule(args.empty() ? 0.0 : args[0]);
  }
  if (name == "mavg") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("window [, cost]");
    }
    const int window = static_cast<int>(args[0]);
    if (window <= 0 || static_cast<double>(window) != args[0]) {
      return Status::InvalidArgument("mavg window must be a positive integer");
    }
    return MakeMovingAverageRule(window, args.size() == 2 ? cost : 0.0);
  }
  if (name == "warp") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("factor [, cost]");
    }
    const int factor = static_cast<int>(args[0]);
    if (factor <= 0 || static_cast<double>(factor) != args[0]) {
      return Status::InvalidArgument("warp factor must be a positive integer");
    }
    return MakeTimeWarpRule(factor, args.size() == 2 ? cost : 0.0);
  }
  if (name == "shift") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("amount [, cost]");
    }
    return MakeShiftRule(args[0], args.size() == 2 ? cost : 0.0);
  }
  if (name == "scale") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("factor [, cost]");
    }
    return MakeScaleRule(args[0], args.size() == 2 ? cost : 0.0);
  }
  if (name == "despike") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("threshold [, cost]");
    }
    return MakeDespikeRule(args[0], args.size() == 2 ? cost : 0.0);
  }
  if (name == "diff") {
    if (args.size() > 1) {
      return arg_count_error("at most one argument (cost)");
    }
    return MakeDifferenceRule(args.empty() ? 0.0 : args[0]);
  }
  if (name == "ewma") {
    if (args.empty() || args.size() > 2) {
      return arg_count_error("alpha [, cost]");
    }
    if (args[0] <= 0.0 || args[0] > 1.0) {
      return Status::InvalidArgument("ewma alpha must be in (0, 1]");
    }
    return MakeExponentialSmoothingRule(args[0], args.size() == 2 ? cost : 0.0);
  }
  return Status::InvalidArgument("unknown transformation rule: " + name);
}

}  // namespace simq
