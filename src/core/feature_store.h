/// Columnar (structure-of-arrays) storage of a relation's derived data, plus
/// the batch distance kernels that run over it.
///
/// The row-of-structs layout (std::vector<Record>, each record owning its
/// own heap-allocated Spectrum) forces every scan and join to chase a
/// pointer per record and to run a branch-per-coefficient early-abandon
/// loop. The FeatureStore lays the same data out as flat double arrays:
///
///   spectra_  : one row per record, the full normal-form unitary DFT as
///               interleaved (re, im) pairs, rows padded to a 64-byte
///               multiple so every row starts on a cache-line boundary;
///   normals_  : one row per record, the Goldin-Kanellakis normal form
///               (time domain), used by the non-spectral scan path;
///   means_/stds_: the per-record statistics as dense columns, so pattern
///               predicates scan without touching the records.
///
/// The kernels below consume these rows. They accumulate into independent
/// partial sums (breaking the loop-carried dependence of the naive sum so
/// the compiler can vectorize / the CPU can overlap the FMA chains) and
/// check the early-abandon threshold after the first two coefficients --
/// the abandon point of the scalar reference loop, since coefficient 0 of a
/// normal-form spectrum is zero and similarity thresholds are tiny relative
/// to total spectrum energy -- and then once per block of 8 coefficients.
/// Because squared terms are nonnegative the partial sums are nondecreasing,
/// so block-granular abandoning returns +infinity exactly when the
/// per-coefficient version does; only the rounding of the final sum can
/// differ from the scalar reference (by reassociation), which the
/// equivalence tests bound. They are defined inline so the per-row calls in
/// the scan/join loops disappear into the caller.
///
/// See DESIGN.md "Columnar execution" for how core/database.cc drives these
/// kernels and how blocks map onto the thread pool.

#ifndef SIMQ_CORE_FEATURE_STORE_H_
#define SIMQ_CORE_FEATURE_STORE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "ts/dft.h"
#include "ts/feature.h"

namespace simq {

class FeatureStore {
 public:
  FeatureStore() = default;

  // Appends one record's derived data. Every append after the first must
  // have the same spectrum/series length.
  void Append(const SeriesFeatures& features,
              const std::vector<double>& normal_values);

  int64_t size() const { return count_; }
  // Number of complex coefficients per spectrum row (the series length n).
  int spectrum_length() const { return spectrum_length_; }
  int series_length() const { return series_length_; }

  // Row i of the normal-form spectrum: 2*spectrum_length() doubles,
  // interleaved (re, im).
  const double* SpectrumRow(int64_t i) const {
    return spectra_.data() + i * spectrum_stride_;
  }
  // Row i of the normal form in the time domain: series_length() doubles.
  const double* NormalRow(int64_t i) const {
    return normals_.data() + i * normal_stride_;
  }

  const double* means() const { return means_.data(); }
  const double* stds() const { return stds_.data(); }
  double mean(int64_t i) const { return means_[static_cast<size_t>(i)]; }
  double std_dev(int64_t i) const { return stds_[static_cast<size_t>(i)]; }

  // Packed prefix column: the first two spectrum coefficients of every
  // record as 4 contiguous doubles per record (zero-padded for n < 2).
  // Early-abandoning scans screen against this column -- 32 sequential
  // bytes per record -- and touch the strided full row only for the rare
  // survivors.
  const double* Prefixes() const { return prefixes_.data(); }
  const double* PrefixRow(int64_t i) const {
    return prefixes_.data() + 4 * i;
  }

 private:
  int64_t count_ = 0;
  int spectrum_length_ = 0;
  int series_length_ = 0;
  int64_t spectrum_stride_ = 0;  // doubles per spectrum row (padded)
  int64_t normal_stride_ = 0;    // doubles per normal-form row (padded)
  std::vector<double> spectra_;
  std::vector<double> normals_;
  std::vector<double> prefixes_;
  std::vector<double> means_;
  std::vector<double> stds_;
};

// Lays out a complex spectrum as interleaved (re, im) doubles, the query-
// and multiplier-side format of the kernels below.
std::vector<double> InterleaveSpectrum(const Spectrum& spectrum);

// All kernels: `n` is the number of complex coefficients; `limit_sq` is the
// squared early-abandon threshold (pass +infinity to disable). They return
// the squared distance, or +infinity as soon as a partial sum exceeds
// `limit_sq`.

namespace internal {

constexpr double kKernelInf = std::numeric_limits<double>::infinity();

// Unchecked distance sum: no abandon checks, so the main loop is a pure
// 4-lane reduction with no horizontal sums.
inline double RowDistanceSqNoLimit(const double* a, const double* q,
                                   int len) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int i = 0;
  for (; i + 4 <= len; i += 4) {
    const double d0 = a[i] - q[i];
    const double d1 = a[i + 1] - q[i + 1];
    const double d2 = a[i + 2] - q[i + 2];
    const double d3 = a[i + 3] - q[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < len; ++i) {
    const double d = a[i] - q[i];
    tail += d * d;
  }
  return (s0 + s1) + (s2 + s3) + tail;
}

}  // namespace internal

// |a - q|^2 summed over n coefficients.
inline double RowDistanceSq(const double* a, const double* q, int n,
                            double limit_sq) {
  const int len = 2 * n;
  if (limit_sq == internal::kKernelInf) {
    return internal::RowDistanceSqNoLimit(a, q, len);
  }
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int i = 0;
  // Prefix: the first two coefficients, then a check.
  if (len >= 4) {
    const double d0 = a[0] - q[0];
    const double d1 = a[1] - q[1];
    const double d2 = a[2] - q[2];
    const double d3 = a[3] - q[3];
    s0 = d0 * d0;
    s1 = d1 * d1;
    s2 = d2 * d2;
    s3 = d3 * d3;
    if (s0 + s1 + s2 + s3 > limit_sq) {
      return internal::kKernelInf;
    }
    i = 4;
  }
  // 16 doubles (8 coefficients) per abandon check; four independent
  // accumulators keep the FMA chains overlapped.
  for (; i + 16 <= len; i += 16) {
    for (int j = 0; j < 16; j += 4) {
      const double d0 = a[i + j] - q[i + j];
      const double d1 = a[i + j + 1] - q[i + j + 1];
      const double d2 = a[i + j + 2] - q[i + j + 2];
      const double d3 = a[i + j + 3] - q[i + j + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    if (s0 + s1 + s2 + s3 > limit_sq) {
      return internal::kKernelInf;
    }
  }
  double tail = 0.0;
  for (; i < len; ++i) {
    const double d = a[i] - q[i];
    tail += d * d;
  }
  const double sum = (s0 + s1) + (s2 + s3) + tail;
  return sum > limit_sq ? internal::kKernelInf : sum;
}

// |a * m - q|^2: data row `a` passed through the spectral multiplier `m`.
inline double RowDistanceSqMult(const double* a, const double* m,
                                const double* q, int n, double limit_sq) {
  const int len = 2 * n;
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  if (len >= 4) {
    for (; i < 4; i += 2) {
      const double ar = a[i], ai = a[i + 1];
      const double mr = m[i], mi = m[i + 1];
      const double dr = ar * mr - ai * mi - q[i];
      const double di = ar * mi + ai * mr - q[i + 1];
      s0 += dr * dr;
      s1 += di * di;
    }
    if (s0 + s1 > limit_sq) {
      return internal::kKernelInf;
    }
  }
  for (; i + 16 <= len; i += 16) {
    for (int j = 0; j < 16; j += 2) {
      const double ar = a[i + j], ai = a[i + j + 1];
      const double mr = m[i + j], mi = m[i + j + 1];
      const double dr = ar * mr - ai * mi - q[i + j];
      const double di = ar * mi + ai * mr - q[i + j + 1];
      s0 += dr * dr;
      s1 += di * di;
    }
    if (s0 + s1 > limit_sq) {
      return internal::kKernelInf;
    }
  }
  for (; i < len; i += 2) {
    const double ar = a[i], ai = a[i + 1];
    const double mr = m[i], mi = m[i + 1];
    const double dr = ar * mr - ai * mi - q[i];
    const double di = ar * mi + ai * mr - q[i + 1];
    s0 += dr * dr;
    s1 += di * di;
  }
  const double sum = s0 + s1;
  return sum > limit_sq ? internal::kKernelInf : sum;
}

namespace internal {

// Two-sided kernel body, specialized on which sides carry a multiplier so
// the per-coefficient branches constant-fold away.
template <bool kLeftMult, bool kRightMult>
inline double TwoSidedBody(const double* a, const double* b,
                           const double* lm, const double* rm, int n,
                           double limit_sq) {
  const int len = 2 * n;
  double s0 = 0.0, s1 = 0.0;
  int i = 0;
  const auto accumulate = [&](int idx) {
    double lr = a[idx], li = a[idx + 1];
    if (kLeftMult) {
      const double mr = lm[idx], mi = lm[idx + 1];
      const double r = lr * mr - li * mi;
      li = lr * mi + li * mr;
      lr = r;
    }
    double rr = b[idx], ri = b[idx + 1];
    if (kRightMult) {
      const double mr = rm[idx], mi = rm[idx + 1];
      const double r = rr * mr - ri * mi;
      ri = rr * mi + ri * mr;
      rr = r;
    }
    const double dr = lr - rr;
    const double di = li - ri;
    s0 += dr * dr;
    s1 += di * di;
  };
  if (len >= 4) {
    accumulate(0);
    accumulate(2);
    if (s0 + s1 > limit_sq) {
      return kKernelInf;
    }
    i = 4;
  }
  for (; i + 16 <= len; i += 16) {
    for (int j = 0; j < 16; j += 2) {
      accumulate(i + j);
    }
    if (s0 + s1 > limit_sq) {
      return kKernelInf;
    }
  }
  for (; i < len; i += 2) {
    accumulate(i);
  }
  const double sum = s0 + s1;
  return sum > limit_sq ? kKernelInf : sum;
}

}  // namespace internal

// |a * lm - b * rm|^2: both sides of a join transformed; either multiplier
// may be null (identity on that side).
inline double RowDistanceSqTwoSided(const double* a, const double* b,
                                    const double* lm, const double* rm,
                                    int n, double limit_sq) {
  if (lm != nullptr) {
    return rm != nullptr
               ? internal::TwoSidedBody<true, true>(a, b, lm, rm, n, limit_sq)
               : internal::TwoSidedBody<true, false>(a, b, lm, rm, n,
                                                     limit_sq);
  }
  return rm != nullptr
             ? internal::TwoSidedBody<false, true>(a, b, lm, rm, n, limit_sq)
             : RowDistanceSq(a, b, n, limit_sq);
}

// Prefix screens over the packed 4-double prefix column
// (FeatureStore::PrefixRow): true iff the corresponding kernel's FIRST
// abandon check would return +infinity for this row. They replay the
// kernels' prefix arithmetic -- same operations, same association -- so
// screening before a kernel call never changes the outcome; keep them in
// lockstep with the kernel prefixes above. Valid for n >= 2.

// Mirror of the RowDistanceSq prefix: q0..q3 are the first 4 doubles of
// the query (or of the other row of a pair).
inline bool PrefixScreenDead(const double* p, double q0, double q1,
                             double q2, double q3, double limit_sq) {
  const double d0 = p[0] - q0;
  const double d1 = p[1] - q1;
  const double d2 = p[2] - q2;
  const double d3 = p[3] - q3;
  return d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3 > limit_sq;
}

// Mirror of the RowDistanceSqMult prefix: `m` is the interleaved
// multiplier (first 4 doubles used).
inline bool PrefixScreenMultDead(const double* p, const double* m, double q0,
                                 double q1, double q2, double q3,
                                 double limit_sq) {
  const double dr0 = p[0] * m[0] - p[1] * m[1] - q0;
  const double di0 = p[0] * m[1] + p[1] * m[0] - q1;
  const double dr1 = p[2] * m[2] - p[3] * m[3] - q2;
  const double di1 = p[2] * m[3] + p[3] * m[2] - q3;
  const double s0 = dr0 * dr0 + dr1 * dr1;
  const double s1 = di0 * di0 + di1 * di1;
  return s0 + s1 > limit_sq;
}

}  // namespace simq

#endif  // SIMQ_CORE_FEATURE_STORE_H_
