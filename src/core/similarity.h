/// Cost-bounded transformation distance: the dissimilarity measure of the
/// [JMM95] framework (Equation 10 of [RM97]).
///
///   D(x, y) = min( D0(x, y),
///                  min_T  cost(T) + D(T(x), y),
///                  min_T  cost(T) + D(x, T(y)),
///                  min_{T1,T2} cost(T1) + cost(T2) + D(T1(x), T2(y)) )
///
/// where D0 is the Euclidean distance and T ranges over a caller-supplied
/// rule set. Computed by best-first branch-and-bound over rule application
/// sequences: states are (x', y', accumulated cost); a state is pruned when
/// its accumulated cost already reaches the best known total distance or the
/// cost budget. Zero-cost rules are admitted through a depth cap. This is
/// the general (exponential worst case) solver; the polynomial special cases
/// for editing-rule systems live in core/edit_distance.h.

#ifndef SIMQ_CORE_SIMILARITY_H_
#define SIMQ_CORE_SIMILARITY_H_

#include <string>
#include <vector>

#include "core/transformation.h"

namespace simq {

struct SimilarityOptions {
  // Upper bound on the summed rule costs of a derivation, following the
  // [JMM95] convention that similarity is only meaningful up to a cost
  // budget (see [RM97] §2's discussion of repeated smoothing).
  double cost_budget = 1e100;
  // Maximum number of rule applications per side; bounds derivations even
  // when rules are free.
  int max_rule_applications = 3;
  // If false, rules are applied to x only (the min over T(x) branches).
  bool transform_both_sides = true;
};

struct SimilarityResult {
  double distance = 0.0;
  // Rule names applied to each side in the best derivation found.
  std::vector<std::string> applied_to_x;
  std::vector<std::string> applied_to_y;
  // Search effort: number of (x', y') states expanded.
  int64_t states_expanded = 0;
};

// Computes D(x, y) under `rules`. Sequences of different lengths have
// infinite D0, so unless a length-changing rule (time warp) bridges them
// the result may be infinity.
SimilarityResult TransformationDistance(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<const TransformationRule*>& rules,
    const SimilarityOptions& options);

}  // namespace simq

#endif  // SIMQ_CORE_SIMILARITY_H_
