// Discrete Fourier transform with the unitary normalization of [RM97] §1.1:
//
//   X_f = (1/sqrt(n)) * sum_t x_t e^{-j 2 pi t f / n}
//   x_t = (1/sqrt(n)) * sum_f X_f e^{+j 2 pi t f / n}
//
// With this convention energy is preserved exactly (Parseval, Equation 7),
// so Euclidean distances are identical in the time and frequency domains
// (Equation 8) -- the foundation of the k-index filter (Lemma 1).
//
// Implementation: iterative radix-2 Cooley-Tukey for power-of-two lengths,
// Bluestein's chirp-z algorithm for arbitrary lengths (so every experiment
// parameter is legal), and a naive O(n^2) reference used by tests.

#ifndef SIMQ_TS_DFT_H_
#define SIMQ_TS_DFT_H_

#include <complex>
#include <vector>

namespace simq {

using Complex = std::complex<double>;
using Spectrum = std::vector<Complex>;

bool IsPowerOfTwo(size_t n);

// Forward unitary DFT of a real or complex signal.
Spectrum Dft(const std::vector<double>& x);
Spectrum Dft(const Spectrum& x);

// Inverse unitary DFT.
Spectrum InverseDft(const Spectrum& spectrum);

// Inverse unitary DFT of a spectrum known to come from a real signal;
// returns the real parts (imaginary parts are checked to be numerically 0
// in debug builds).
std::vector<double> InverseDftReal(const Spectrum& spectrum);

// O(n^2) direct evaluation of the unitary DFT; reference for tests.
Spectrum NaiveDft(const Spectrum& x);

// Circular convolution (Equation 4): out_i = sum_k a_k b_{(i-k) mod n}.
// Evaluated through the FFT (O(n log n), both real signals packed into one
// complex transform) above a small-size cutoff, directly below it.
std::vector<double> CircularConvolution(const std::vector<double>& a,
                                        const std::vector<double>& b);

// O(n^2) direct evaluation of the circular convolution; the reference
// oracle for the FFT path in tests.
std::vector<double> CircularConvolutionNaive(const std::vector<double>& a,
                                             const std::vector<double>& b);

// Fraction of total signal energy captured by spectrum coefficients
// 1..num_coefficients (coefficient 0 excluded, matching the normal-form
// index layout). Used by the energy-concentration ablation.
double LowFrequencyEnergyFraction(const Spectrum& spectrum,
                                  int num_coefficients);

}  // namespace simq

#endif  // SIMQ_TS_DFT_H_
