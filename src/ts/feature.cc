#include "ts/feature.h"

#include <cmath>

#include "ts/transforms.h"
#include "util/logging.h"

namespace simq {

int FeatureDimension(const FeatureConfig& config) {
  SIMQ_CHECK_GT(config.num_coefficients, 0);
  return 2 * config.num_coefficients + (config.include_mean_std ? 2 : 0);
}

std::vector<bool> AngleDimensions(const FeatureConfig& config) {
  std::vector<bool> angle(static_cast<size_t>(FeatureDimension(config)),
                          false);
  if (config.space == FeatureSpace::kPolar) {
    const int base = config.include_mean_std ? 2 : 0;
    for (int c = 0; c < config.num_coefficients; ++c) {
      angle[static_cast<size_t>(base + 2 * c + 1)] = true;
    }
  }
  return angle;
}

SeriesFeatures ComputeFeatures(const std::vector<double>& series) {
  SIMQ_CHECK(!series.empty());
  SeriesFeatures features;
  const NormalFormResult normal = ToNormalForm(series);
  features.mean = normal.mean;
  features.std_dev = normal.std_dev;
  features.normal_spectrum = Dft(normal.values);
  return features;
}

std::vector<Complex> ExtractCoefficients(const Spectrum& spectrum,
                                         int num_coefficients) {
  SIMQ_CHECK_GT(num_coefficients, 0);
  std::vector<Complex> coeffs(static_cast<size_t>(num_coefficients),
                              Complex(0.0, 0.0));
  for (int c = 0; c < num_coefficients; ++c) {
    const size_t f = static_cast<size_t>(c) + 1;  // skip coefficient 0
    if (f < spectrum.size()) {
      coeffs[static_cast<size_t>(c)] = spectrum[f];
    }
  }
  return coeffs;
}

std::vector<double> CoefficientsToCoords(const std::vector<Complex>& coeffs,
                                         FeatureSpace space) {
  std::vector<double> coords;
  coords.reserve(2 * coeffs.size());
  for (const Complex& c : coeffs) {
    if (space == FeatureSpace::kRectangular) {
      coords.push_back(c.real());
      coords.push_back(c.imag());
    } else {
      coords.push_back(std::abs(c));
      coords.push_back(std::arg(c));  // in (-pi, pi]
    }
  }
  return coords;
}

std::vector<double> MakeFeaturePoint(const SeriesFeatures& features,
                                     const FeatureConfig& config) {
  std::vector<double> point;
  point.reserve(static_cast<size_t>(FeatureDimension(config)));
  if (config.include_mean_std) {
    point.push_back(features.mean);
    point.push_back(features.std_dev);
  }
  const std::vector<Complex> coeffs =
      ExtractCoefficients(features.normal_spectrum, config.num_coefficients);
  const std::vector<double> coords = CoefficientsToCoords(coeffs, config.space);
  point.insert(point.end(), coords.begin(), coords.end());
  return point;
}

}  // namespace simq
