// Mapping from time series to points in a low-dimensional feature space.
//
// Following [RM97] §3.1/§5, a series is represented by its Goldin-Kanellakis
// normal form: the mean and standard deviation are kept as two separate
// index dimensions, and the first few DFT coefficients of the normal form
// (coefficient 0 is identically zero for a normal form and is dropped) are
// mapped to pairs of real dimensions -- either (Re, Im) in the rectangular
// space S_rect or (magnitude, phase angle) in the polar space S_pol.
//
// With the paper's default of 2 coefficients and mean/std included this is
// the 6-dimensional index layout of §5:
//   (mean, std, |X1|, arg X1, |X2|, arg X2).

#ifndef SIMQ_TS_FEATURE_H_
#define SIMQ_TS_FEATURE_H_

#include <vector>

#include "ts/dft.h"

namespace simq {

// Representation of complex feature coordinates (see Theorems 2 and 3 of
// [RM97] for which transformations are safe in which space).
enum class FeatureSpace {
  kRectangular,  // (Re, Im) pairs; safe for real stretches a, complex shifts b
  kPolar,        // (magnitude, angle) pairs; safe for complex stretches, b=0
};

struct FeatureConfig {
  // Number of DFT coefficients X1..Xk of the normal form kept in the index
  // (the "cut-off point" k of the k-index).
  int num_coefficients = 2;
  FeatureSpace space = FeatureSpace::kPolar;
  // Store the original series' mean and standard deviation as the first two
  // index dimensions, enabling [GK95]-style shift/scale predicates.
  bool include_mean_std = true;
};

// Total number of real index dimensions for a configuration.
int FeatureDimension(const FeatureConfig& config);

// dims()[d] is true iff dimension d holds a phase angle (polar space only);
// angle dimensions use circular-interval geometry.
std::vector<bool> AngleDimensions(const FeatureConfig& config);

// Everything the database stores per series to answer similarity queries:
// normal-form statistics plus the full normal-form spectrum (used for exact
// postprocessing distances; the index keeps only the first k coefficients).
struct SeriesFeatures {
  double mean = 0.0;
  double std_dev = 0.0;
  Spectrum normal_spectrum;  // unitary DFT of the normal form, full length

  int length() const { return static_cast<int>(normal_spectrum.size()); }
};

SeriesFeatures ComputeFeatures(const std::vector<double>& series);

// First num_coefficients coefficients X1..Xk (coefficient 0 skipped).
// If the spectrum is shorter, missing entries are zero.
std::vector<Complex> ExtractCoefficients(const Spectrum& spectrum,
                                         int num_coefficients);

// Lays out complex coefficients as 2k real coordinates per `space`.
std::vector<double> CoefficientsToCoords(const std::vector<Complex>& coeffs,
                                         FeatureSpace space);

// Full index point for a series under `config` (mean/std prefix if enabled).
std::vector<double> MakeFeaturePoint(const SeriesFeatures& features,
                                     const FeatureConfig& config);

}  // namespace simq

#endif  // SIMQ_TS_FEATURE_H_
