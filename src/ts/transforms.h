// Time-domain transformations of [RM97] §§1-3 and their frequency-domain
// (spectral multiplier) forms.
//
// Every transformation here can be written as T = (a, 0): element-wise
// multiplication of the DFT coefficients by a complex vector a
// (Convolution-Multiplication, Equation 6). The spectral constructors below
// return exactly the multiplier that makes the frequency-domain application
// equal to the time-domain definition under the unitary DFT convention --
// including the sqrt(n) and sqrt(m) factors that the paper's algebra drops
// (see DESIGN.md, "Normalization corrections"). Tests verify the
// equivalences numerically.

#ifndef SIMQ_TS_TRANSFORMS_H_
#define SIMQ_TS_TRANSFORMS_H_

#include <vector>

#include "ts/dft.h"

namespace simq {

// ---------------------------------------------------------------------------
// Normal form (Goldin-Kanellakis [GK95], Equation 9 of [RM97]).
// ---------------------------------------------------------------------------

struct NormalFormResult {
  std::vector<double> values;  // (s - mean) / std, or all zeros if std == 0
  double mean = 0.0;
  double std_dev = 0.0;  // population standard deviation
};

// Shifts the mean to zero and scales by the inverse standard deviation.
// A constant series (std == 0) normalizes to the all-zero series.
NormalFormResult ToNormalForm(const std::vector<double>& series);

// ---------------------------------------------------------------------------
// Time-domain transformations.
// ---------------------------------------------------------------------------

// l-day circular moving average: out_i = mean(s_{i-l+1 mod n} .. s_i).
// This is the paper's variant that circulates the window past the beginning
// of the sequence, producing an output of the same length n. Equal to
// CircularConvolution(s, m_l) with m_l = (1/l, ..., 1/l, 0, ..., 0).
std::vector<double> CircularMovingAverage(const std::vector<double>& series,
                                          int window);

// Generalized form with caller-supplied window weights (e.g. higher weights
// at the end for trend prediction, Equation 11's discussion).
// weights.size() <= series.size(); weights need not sum to 1.
std::vector<double> WeightedCircularMovingAverage(
    const std::vector<double>& series, const std::vector<double>& weights);

// Reversal of price movements (Example 2.2): every value multiplied by -1.
std::vector<double> ReverseSeries(const std::vector<double>& series);

// Time warping (Example 1.2, Appendix A): stretch the time dimension by m,
// replacing every value v by m consecutive copies of v. Output length m*n.
std::vector<double> TimeWarpSeries(const std::vector<double>& series,
                                   int warp_factor);

// ---------------------------------------------------------------------------
// Spectral multipliers: a such that DFT(T(x)) = a * DFT(x) element-wise.
// ---------------------------------------------------------------------------

// Identity: vector of 1s of length n.
Spectrum IdentitySpectrum(int n);

// Multiplier for the l-day circular moving average of length-n series:
//   a_f = sum_{t=0}^{l-1} (1/l) e^{-j 2 pi t f / n}
// (the *unnormalized* DFT of the window weights; with the unitary transform
// DFT(circconv(x,w)) = sqrt(n) X*W = X * a).
Spectrum MovingAverageSpectrum(int n, int window);

// Weighted generalization of the above.
Spectrum WeightedMovingAverageSpectrum(int n,
                                       const std::vector<double>& weights);

// Multiplier for series reversal: all entries -1 (Linearity, Equation 5).
Spectrum ReverseSpectrum(int n);

// Multiplier connecting the first num_coefficients unitary DFT coefficients
// of a length-n series to those of its m-fold time-warped, length m*n
// version (Appendix A, with the corrected 1/sqrt(m) normalization):
//   a_f = (1/sqrt(m)) sum_{t=0}^{m-1} e^{-j 2 pi t f / (m n)}
// so that DFT_{mn}(warp_m(x))_f = a_f * DFT_n(x)_f for f < num_coefficients.
Spectrum TimeWarpSpectrum(int n, int warp_factor, int num_coefficients);

}  // namespace simq

#endif  // SIMQ_TS_TRANSFORMS_H_
