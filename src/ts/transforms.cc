#include "ts/transforms.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace simq {

NormalFormResult ToNormalForm(const std::vector<double>& series) {
  NormalFormResult result;
  result.mean = Mean(series);
  result.std_dev = StdDev(series);
  result.values.resize(series.size());
  if (result.std_dev == 0.0) {
    // Constant series: the normal form is defined as the zero series.
    return result;
  }
  for (size_t i = 0; i < series.size(); ++i) {
    result.values[i] = (series[i] - result.mean) / result.std_dev;
  }
  return result;
}

std::vector<double> CircularMovingAverage(const std::vector<double>& series,
                                          int window) {
  SIMQ_CHECK_GT(window, 0);
  SIMQ_CHECK_LE(static_cast<size_t>(window), series.size());
  const std::vector<double> weights(static_cast<size_t>(window),
                                    1.0 / static_cast<double>(window));
  return WeightedCircularMovingAverage(series, weights);
}

std::vector<double> WeightedCircularMovingAverage(
    const std::vector<double>& series, const std::vector<double>& weights) {
  SIMQ_CHECK(!weights.empty());
  SIMQ_CHECK_LE(weights.size(), series.size());
  const size_t n = series.size();
  std::vector<double> out(n, 0.0);
  // out_i = sum_t w_t * s_{(i - t) mod n}: a circular convolution where the
  // window trails behind position i and wraps past the beginning.
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t t = 0; t < weights.size(); ++t) {
      sum += weights[t] * series[(i + n - t) % n];
    }
    out[i] = sum;
  }
  return out;
}

std::vector<double> ReverseSeries(const std::vector<double>& series) {
  std::vector<double> out(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    out[i] = -series[i];
  }
  return out;
}

std::vector<double> TimeWarpSeries(const std::vector<double>& series,
                                   int warp_factor) {
  SIMQ_CHECK_GT(warp_factor, 0);
  std::vector<double> out;
  out.reserve(series.size() * static_cast<size_t>(warp_factor));
  for (double value : series) {
    for (int copy = 0; copy < warp_factor; ++copy) {
      out.push_back(value);
    }
  }
  return out;
}

Spectrum IdentitySpectrum(int n) {
  SIMQ_CHECK_GT(n, 0);
  return Spectrum(static_cast<size_t>(n), Complex(1.0, 0.0));
}

Spectrum MovingAverageSpectrum(int n, int window) {
  SIMQ_CHECK_GT(window, 0);
  SIMQ_CHECK_LE(window, n);
  const std::vector<double> weights(static_cast<size_t>(window),
                                    1.0 / static_cast<double>(window));
  return WeightedMovingAverageSpectrum(n, weights);
}

Spectrum WeightedMovingAverageSpectrum(int n,
                                       const std::vector<double>& weights) {
  SIMQ_CHECK_GT(n, 0);
  SIMQ_CHECK_LE(weights.size(), static_cast<size_t>(n));
  Spectrum out(static_cast<size_t>(n));
  for (int f = 0; f < n; ++f) {
    Complex sum(0.0, 0.0);
    for (size_t t = 0; t < weights.size(); ++t) {
      const double phase = -2.0 * M_PI * static_cast<double>(t) *
                           static_cast<double>(f) / static_cast<double>(n);
      sum += weights[t] * Complex(std::cos(phase), std::sin(phase));
    }
    out[static_cast<size_t>(f)] = sum;
  }
  return out;
}

Spectrum ReverseSpectrum(int n) {
  SIMQ_CHECK_GT(n, 0);
  return Spectrum(static_cast<size_t>(n), Complex(-1.0, 0.0));
}

Spectrum TimeWarpSpectrum(int n, int warp_factor, int num_coefficients) {
  SIMQ_CHECK_GT(n, 0);
  SIMQ_CHECK_GT(warp_factor, 0);
  SIMQ_CHECK_GT(num_coefficients, 0);
  SIMQ_CHECK_LE(num_coefficients, n);
  Spectrum out(static_cast<size_t>(num_coefficients));
  const double mn = static_cast<double>(warp_factor) * static_cast<double>(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(warp_factor));
  for (int f = 0; f < num_coefficients; ++f) {
    Complex sum(0.0, 0.0);
    for (int t = 0; t < warp_factor; ++t) {
      const double phase =
          -2.0 * M_PI * static_cast<double>(t) * static_cast<double>(f) / mn;
      sum += Complex(std::cos(phase), std::sin(phase));
    }
    out[static_cast<size_t>(f)] = sum * scale;
  }
  return out;
}

}  // namespace simq
