// The basic data object of the library: a named sequence of real values.

#ifndef SIMQ_TS_TIME_SERIES_H_
#define SIMQ_TS_TIME_SERIES_H_

#include <string>
#include <vector>

namespace simq {

// A time series is a finite sequence of real numbers, each representing a
// value at a time point (stock closes, sensor readings, ...). Passive data
// carrier; all operations live in ts/transforms.h and ts/dft.h.
struct TimeSeries {
  std::string id;
  std::vector<double> values;

  int length() const { return static_cast<int>(values.size()); }
};

}  // namespace simq

#endif  // SIMQ_TS_TIME_SERIES_H_
