#include "ts/dft.h"

#include <cmath>
#include <cstdint>
#include <memory>

#include "util/logging.h"

namespace simq {
namespace {

// In-place non-normalized radix-2 FFT. sign = -1 forward, +1 inverse.
void Radix2Fft(Spectrum* data, int sign) {
  const size_t n = data->size();
  SIMQ_DCHECK(IsPowerOfTwo(n));
  Spectrum& a = *data;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Precomputed state for Bluestein's chirp-z transform of one (n, sign)
// pair: the chirp and the FFT of the (input-independent) convolution
// kernel. Cached per thread so repeated transforms of the same length --
// the normal case: every series in a relation has one length -- do two
// power-of-two FFTs instead of three, with no per-call allocation beyond
// the output.
struct BluesteinPlan {
  size_t n = 0;
  int sign = 0;
  size_t m = 0;
  std::vector<Complex> chirp;  // c_j = exp(sign * i * pi * j^2 / n)
  Spectrum kernel_fft;         // forward FFT of the padded conj-chirp kernel
};

const BluesteinPlan& GetBluesteinPlan(size_t n, int sign) {
  static thread_local std::vector<std::unique_ptr<BluesteinPlan>> cache;
  for (const auto& plan : cache) {
    if (plan->n == n && plan->sign == sign) {
      return *plan;
    }
  }
  auto plan = std::make_unique<BluesteinPlan>();
  plan->n = n;
  plan->sign = sign;
  plan->m = NextPowerOfTwo(2 * n - 1);

  // Chirp c_j = exp(sign * i * pi * j^2 / n). j^2 is reduced mod 2n before
  // the float division to keep the phase accurate for long inputs.
  plan->chirp.resize(n);
  for (size_t j = 0; j < n; ++j) {
    const int64_t j2 = static_cast<int64_t>(j) * static_cast<int64_t>(j) %
                       static_cast<int64_t>(2 * n);
    const double phase =
        sign * M_PI * static_cast<double>(j2) / static_cast<double>(n);
    plan->chirp[j] = Complex(std::cos(phase), std::sin(phase));
  }

  plan->kernel_fft.assign(plan->m, Complex(0.0, 0.0));
  plan->kernel_fft[0] = std::conj(plan->chirp[0]);
  for (size_t j = 1; j < n; ++j) {
    plan->kernel_fft[j] = std::conj(plan->chirp[j]);
    plan->kernel_fft[plan->m - j] = std::conj(plan->chirp[j]);
  }
  Radix2Fft(&plan->kernel_fft, -1);

  if (cache.size() >= 8) {
    cache.erase(cache.begin());  // FIFO: keep the most recent lengths
  }
  cache.push_back(std::move(plan));
  return *cache.back();
}

// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
// linear convolution, evaluated with zero-padded power-of-two FFTs.
// Returns the non-normalized forward DFT (sign = -1) or inverse kernel
// (sign = +1) of x.
Spectrum BluesteinDft(const Spectrum& x, int sign) {
  const size_t n = x.size();
  SIMQ_CHECK_GT(n, 0u);
  const BluesteinPlan& plan = GetBluesteinPlan(n, sign);

  static thread_local Spectrum scratch;
  scratch.assign(plan.m, Complex(0.0, 0.0));
  for (size_t j = 0; j < n; ++j) {
    scratch[j] = x[j] * plan.chirp[j];
  }
  Radix2Fft(&scratch, -1);
  for (size_t j = 0; j < plan.m; ++j) {
    scratch[j] *= plan.kernel_fft[j];
  }
  Radix2Fft(&scratch, +1);

  Spectrum out(n);
  const double inv_m = 1.0 / static_cast<double>(plan.m);
  for (size_t k = 0; k < n; ++k) {
    out[k] = scratch[k] * inv_m * plan.chirp[k];
  }
  return out;
}

// Non-normalized DFT dispatcher.
Spectrum RawDft(const Spectrum& x, int sign) {
  if (IsPowerOfTwo(x.size())) {
    Spectrum copy = x;
    Radix2Fft(&copy, sign);
    return copy;
  }
  return BluesteinDft(x, sign);
}

}  // namespace

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

Spectrum Dft(const std::vector<double>& x) {
  Spectrum input(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    input[i] = Complex(x[i], 0.0);
  }
  return Dft(input);
}

Spectrum Dft(const Spectrum& x) {
  SIMQ_CHECK(!x.empty());
  Spectrum out = RawDft(x, -1);
  const double scale = 1.0 / std::sqrt(static_cast<double>(x.size()));
  for (Complex& value : out) {
    value *= scale;
  }
  return out;
}

Spectrum InverseDft(const Spectrum& spectrum) {
  SIMQ_CHECK(!spectrum.empty());
  Spectrum out = RawDft(spectrum, +1);
  const double scale = 1.0 / std::sqrt(static_cast<double>(spectrum.size()));
  for (Complex& value : out) {
    value *= scale;
  }
  return out;
}

std::vector<double> InverseDftReal(const Spectrum& spectrum) {
  const Spectrum complex_signal = InverseDft(spectrum);
  std::vector<double> out(complex_signal.size());
  for (size_t i = 0; i < complex_signal.size(); ++i) {
    SIMQ_DCHECK(std::abs(complex_signal[i].imag()) < 1e-6)
        << "spectrum is not that of a real signal";
    out[i] = complex_signal[i].real();
  }
  return out;
}

Spectrum NaiveDft(const Spectrum& x) {
  const size_t n = x.size();
  SIMQ_CHECK_GT(n, 0u);
  Spectrum out(n, Complex(0.0, 0.0));
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (size_t f = 0; f < n; ++f) {
    Complex sum(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      const double phase = -2.0 * M_PI * static_cast<double>(t) *
                           static_cast<double>(f) / static_cast<double>(n);
      sum += x[t] * Complex(std::cos(phase), std::sin(phase));
    }
    out[f] = sum * scale;
  }
  return out;
}

std::vector<double> CircularConvolutionNaive(const std::vector<double>& a,
                                             const std::vector<double>& b) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t k = 0; k < n; ++k) {
      const size_t idx = (i + n - k) % n;
      sum += a[k] * b[idx];
    }
    out[i] = sum;
  }
  return out;
}

std::vector<double> CircularConvolution(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  // Below the cutoff the O(n^2) loop beats the transform overhead.
  if (n < 32) {
    return CircularConvolutionNaive(a, b);
  }
  // Pack both real signals into one complex transform: with
  // c_t = a_t + i b_t, the halves unpack as A_f = (C_f + conj(C_{-f}))/2
  // and B_f = (C_f - conj(C_{-f}))/(2i).
  Spectrum packed(n);
  for (size_t t = 0; t < n; ++t) {
    packed[t] = Complex(a[t], b[t]);
  }
  const Spectrum c = RawDft(packed, -1);
  Spectrum product(n);
  for (size_t f = 0; f < n; ++f) {
    const Complex cf = c[f];
    const Complex cm = std::conj(c[(n - f) % n]);
    const Complex af = 0.5 * (cf + cm);
    const Complex bf = Complex(0.0, -0.5) * (cf - cm);
    product[f] = af * bf;
  }
  // conv = IDFT_raw(A .* B) / n (the raw transforms are unnormalized).
  const Spectrum inverse = RawDft(product, +1);
  std::vector<double> out(n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = inverse[i].real() * inv_n;
  }
  return out;
}

double LowFrequencyEnergyFraction(const Spectrum& spectrum,
                                  int num_coefficients) {
  SIMQ_CHECK_GE(num_coefficients, 0);
  double total = 0.0;
  for (size_t f = 1; f < spectrum.size(); ++f) {
    total += std::norm(spectrum[f]);
  }
  if (total == 0.0) {
    return 1.0;
  }
  // Real signals have conjugate-symmetric spectra: coefficient f and n-f
  // carry the same energy, so coefficient f "captures" both.
  double captured = 0.0;
  const size_t n = spectrum.size();
  for (int f = 1; f <= num_coefficients && f < static_cast<int>(n); ++f) {
    captured += std::norm(spectrum[f]);
    const size_t mirror = n - static_cast<size_t>(f);
    if (mirror != static_cast<size_t>(f) && mirror > 0) {
      captured += std::norm(spectrum[mirror]);
    }
  }
  return std::min(1.0, captured / total);
}

}  // namespace simq
