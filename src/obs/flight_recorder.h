/// Black-box flight recorder: an always-on, fixed-size ring of the most
/// recent structured events (query admissions and finishes with resource
/// usage, mutations, recompaction publishes, terminations, connection
/// open/close, checkpoints), dumpable as JSONL at any moment -- on demand
/// (the shell's `.flight`, HTTP /flightrecorder, SIGUSR1) and
/// automatically from the fatal-signal / std::terminate path, so every
/// crash leaves a readable record of the seconds before it next to the
/// WAL.
///
/// Design constraints, in order:
///
///  * Recording is lock-free and bounded. A writer formats its line into
///    a stack buffer, claims a slot with one fetch_add on the ring
///    sequence, and publishes with a per-slot version counter (odd while
///    writing, even when published -- a seqlock per slot). No mutex, no
///    allocation after construction, ~one memcpy of <= kLineBytes.
///  * Dumping from a fatal context is async-signal-safe. The crash-path
///    dump reads slot memory and calls only open()/write()/fsync():
///    torn slots (version mismatch across the copy) are skipped, never
///    blocked on. The on-demand dump is the same walk without the
///    signal-safety restriction.
///  * Every published slot is one complete JSON object. Lines carry a
///    monotone "seq" so a reader can order events and detect the ring's
///    wrap losses; over-long field fragments are truncated at a quote
///    boundary and closed, so truncation never yields invalid JSON.
///
/// One recorder per process is the intended shape (a black box records
/// the aircraft, not the instrument): Global() is that instance, and
/// ServiceOptions::flight_recorder defaults to it. Tests that need
/// isolation construct their own.

#ifndef SIMQ_OBS_FLIGHT_RECORDER_H_
#define SIMQ_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace simq {
namespace obs {

class FlightRecorder {
 public:
  /// Bytes per slot line, including the trailing '\n'. Sized so a query
  /// finish event with its full ResourceUsage fragment fits; an
  /// oversized fields fragment is truncated cleanly.
  static constexpr size_t kLineBytes = 320;
  static constexpr size_t kDefaultCapacity = 4096;  // slots (~1.5 MiB)

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder (never destroyed; safe from atexit and
  /// signal handlers).
  static FlightRecorder& Global();

  /// Records one event. `type` is the event name ("query", "mutation",
  /// "recompact", "conn", "checkpoint", "stall", ...; catalog in
  /// docs/OBSERVABILITY.md); `fields` is a pre-rendered JSON fragment
  /// (`"key":value,...`, no surrounding braces, may be empty). The line
  /// published is {"seq":N,"ts_ms":...,"ev":"type",fields}.
  void Record(const char* type, const char* fields);

  /// printf-style convenience for the fields fragment.
  void Recordf(const char* type, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// All currently published events, oldest first, one JSON object per
  /// line. Allocates; not for signal handlers.
  std::string DumpJsonl() const;

  /// Async-signal-safe dump: walks the ring with atomic loads and writes
  /// complete lines to `fd` with write(). Skips slots that are mid-write.
  void DumpToFd(int fd) const;

  /// Where the fatal path writes its dump. Stored in a fixed buffer so
  /// the signal handler needs no allocation; empty disables the
  /// automatic crash dump. Call before InstallCrashHandlers.
  void SetCrashDumpPath(const std::string& path);
  const char* crash_dump_path() const { return crash_path_; }

  /// Opens crash_dump_path (O_CREAT|O_TRUNC) and dumps; fsyncs before
  /// closing. Async-signal-safe; no-op when the path is unset. Returns
  /// true when a dump was written.
  bool DumpToCrashPath() const;

  /// Installs handlers that dump `recorder` before dying: SIGSEGV,
  /// SIGBUS, SIGILL, SIGFPE, SIGABRT re-raise after dumping so the exit
  /// status is preserved; std::terminate dumps then aborts; SIGUSR1
  /// dumps on demand and continues. Idempotent; the recorder must
  /// outlive the process (use Global()).
  static void InstallCrashHandlers(FlightRecorder* recorder);

  int64_t events_recorded() const {
    return static_cast<int64_t>(seq_.load(std::memory_order_relaxed));
  }
  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr size_t kWords = kLineBytes / sizeof(uint64_t);

  /// A per-slot seqlock. The line bytes live in relaxed atomic words (not
  /// a plain char array) so the concurrent dump walk is free of formal
  /// data races -- same machine code as a memcpy on every target we
  /// build, but clean under TSan and the standard.
  struct alignas(64) Slot {
    std::atomic<uint32_t> version{0};  // odd while being written
    std::atomic<uint32_t> len{0};      // published line length
    std::atomic<uint64_t> words[kWords] = {};
  };

  /// Copies a consistent published line out of `slot`; false if the slot
  /// is empty or was torn by a concurrent writer.
  bool ReadSlot(const Slot& slot, char* out, size_t* len) const;

  std::atomic<uint64_t> seq_{0};
  std::vector<Slot> slots_;
  char crash_path_[512] = {0};
};

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_FLIGHT_RECORDER_H_
