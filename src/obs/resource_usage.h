/// Per-query resource accounting: what one execution actually cost, in
/// engine units rather than wall-clock alone.
///
/// A ResourceUsage is assembled by the query service when an execution
/// finishes -- the engine-effort fields come from ExecutionStats and the
/// QueryPlan (rows scanned, candidates, exact checks, delta rows merged),
/// the memory field from the result-cache byte approximation, and the CPU
/// fields from the live QueryAccounting cells below, which the thread
/// pool's per-task CLOCK_THREAD_CPUTIME_ID metering feeds while the query
/// runs. The finished struct is plain data: it rides on ServiceResult,
/// rolls up per session and per connection, and aggregates (sum + max)
/// into the statements table (obs/statements.h).
///
/// These are exactly the per-fingerprint selectivity measurements the
/// ROADMAP's cost-based `VIA AUTO` planner will consume -- keep the fields
/// integral and additive so aggregation stays exact.

#ifndef SIMQ_OBS_RESOURCE_USAGE_H_
#define SIMQ_OBS_RESOURCE_USAGE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace simq {
namespace obs {

/// Cost of one finished execution. All fields are additive except
/// peak_parallelism, which aggregates by max.
struct ResourceUsage {
  /// Rows whose stored data the execution touched: the quantized filter's
  /// bound-scan count when that path ran, otherwise the rows the exact
  /// scan or index walk evaluated.
  int64_t rows_scanned = 0;
  /// Entries surviving the index / code filter into refinement.
  int64_t candidates = 0;
  /// Full-distance computations performed.
  int64_t exact_checks = 0;
  /// Delta-layer rows merged into the answer by exact side scans.
  int64_t delta_rows_merged = 0;
  /// Approximate bytes of the answer set (ResultCache::ApproxResultBytes).
  int64_t result_bytes = 0;
  /// Thread CPU consumed, summed over every pool task plus the calling
  /// thread (CLOCK_THREAD_CPUTIME_ID deltas; 0 when accounting is off).
  int64_t cpu_ns = 0;
  /// Parallel-for blocks executed on behalf of this query.
  int64_t pool_tasks = 0;
  /// The admission scheduler's parallelism budget for this execution --
  /// the widest the query was allowed to fan out.
  int64_t peak_parallelism = 0;

  /// Aggregation used by the statements table and the session roll-up:
  /// component-wise sum, except peak_parallelism which takes the max.
  void Add(const ResourceUsage& other) {
    rows_scanned += other.rows_scanned;
    candidates += other.candidates;
    exact_checks += other.exact_checks;
    delta_rows_merged += other.delta_rows_merged;
    result_bytes += other.result_bytes;
    cpu_ns += other.cpu_ns;
    pool_tasks += other.pool_tasks;
    peak_parallelism = std::max(peak_parallelism, other.peak_parallelism);
  }

  /// Component-wise max (the statements table's per-statement maxima).
  void MaxWith(const ResourceUsage& other) {
    rows_scanned = std::max(rows_scanned, other.rows_scanned);
    candidates = std::max(candidates, other.candidates);
    exact_checks = std::max(exact_checks, other.exact_checks);
    delta_rows_merged = std::max(delta_rows_merged, other.delta_rows_merged);
    result_bytes = std::max(result_bytes, other.result_bytes);
    cpu_ns = std::max(cpu_ns, other.cpu_ns);
    pool_tasks = std::max(pool_tasks, other.pool_tasks);
    peak_parallelism = std::max(peak_parallelism, other.peak_parallelism);
  }
};

/// Live accounting cells one execution writes while it runs. The service
/// attaches a QueryAccounting to the ExecutionContext and installs its
/// cells as the thread pool's CPU sink (util/thread_pool.h,
/// ThreadPool::ScopedCpuAccounting); pool workers add their per-block CPU
/// deltas here from any thread, hence the atomics. Folded into the final
/// ResourceUsage when the execution finishes.
struct QueryAccounting {
  std::atomic<int64_t> cpu_ns{0};
  std::atomic<int64_t> pool_tasks{0};
};

/// Renders `usage` as a flat JSON object fragment (no surrounding braces),
/// e.g. `"rows_scanned":12,"candidates":3,...` -- shared by the
/// /statements endpoint and the flight recorder so every surface spells
/// the schema identically (docs/OBSERVABILITY.md "Resource usage").
inline std::string FormatResourceUsageJson(const ResourceUsage& usage) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "\"rows_scanned\":%lld,\"candidates\":%lld,\"exact_checks\":%lld,"
      "\"delta_rows_merged\":%lld,\"result_bytes\":%lld,\"cpu_ns\":%lld,"
      "\"pool_tasks\":%lld,\"peak_parallelism\":%lld",
      static_cast<long long>(usage.rows_scanned),
      static_cast<long long>(usage.candidates),
      static_cast<long long>(usage.exact_checks),
      static_cast<long long>(usage.delta_rows_merged),
      static_cast<long long>(usage.result_bytes),
      static_cast<long long>(usage.cpu_ns),
      static_cast<long long>(usage.pool_tasks),
      static_cast<long long>(usage.peak_parallelism));
  return buf;
}

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_RESOURCE_USAGE_H_
