/// Per-query trace spans: a wall-clock span tree recording where a query
/// spent its time and how many rows each stage touched.
///
/// A Trace rides on the query's ExecutionContext (core/exec_context.h):
/// the service attaches one when the query is EXPLAIN ANALYZE, when the
/// caller forces tracing (ExecOptions::force_trace, the shell's `.trace
/// on`), or when the sampling counter fires (ServiceOptions::
/// trace_sample_every). A null trace pointer means tracing is off and the
/// instrumentation sites cost one pointer load and a predicted branch --
/// the <2% hot-path budget bench/obs_overhead.cc asserts.
///
/// Stages recorded today (the span glossary in docs/OBSERVABILITY.md):
/// parse, admission, execute (with the engine choice in its note), cache
/// probe results, per-shard index descents and scans (one span per shard,
/// with candidate/exact-check counts), the quantized filter and refine
/// phases, and the final merge/sort. The service closes the root span and
/// stamps the returned row count.
///
/// Thread-safety: spans may be opened and closed from any thread (the
/// engine's scatter-gather workers record per-shard spans); every method
/// locks a private mutex. That cost is paid only while tracing is on.
/// ScopedSpan is the no-op-on-null RAII the instrumentation sites use.

#ifndef SIMQ_OBS_TRACE_H_
#define SIMQ_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace simq {
namespace obs {

/// One recorded stage. Offsets are milliseconds since the trace was
/// created; `parent` indexes the owning Trace's span list (-1 = root).
struct TraceSpan {
  std::string name;
  int parent = -1;
  int shard = -1;  // >= 0 on per-shard spans (render/sort key)
  double start_ms = 0.0;
  double elapsed_ms = 0.0;
  int64_t rows_scanned = 0;   // rows (or pairs) the stage examined
  int64_t rows_pruned = 0;    // examined entries discarded by a bound
  int64_t rows_returned = 0;  // rows the stage passed downstream
  std::string note;           // engine choice / cache outcome / detail
};

class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  /// Creation opens the root span (index 0, named "query"); the service
  /// closes it when the execution finishes.
  Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  static constexpr int kRoot = 0;

  /// Opens a span; returns its id (stable index into spans()).
  int StartSpan(const std::string& name, int parent = kRoot);
  /// Closes an open span, fixing its elapsed time.
  void EndSpan(int id);
  /// Records an already-measured stage (e.g. a parse that finished before
  /// the trace existed, or a per-shard duration captured by a worker).
  int AddCompleted(const std::string& name, int parent, double start_ms,
                   double elapsed_ms);

  void SetShard(int id, int shard);
  void SetRows(int id, int64_t scanned, int64_t pruned, int64_t returned);
  void SetNote(int id, const std::string& note);

  /// Milliseconds since the trace was created (for AddCompleted starts).
  double NowMs() const;

  /// Parent span id the engine should attach its stages under; the
  /// service points this at its "execute" span before calling into the
  /// engine (the engine never sees service span ids otherwise).
  void SetEngineParent(int id);
  int engine_parent() const;

  /// Snapshot of every span recorded so far (open spans report the
  /// elapsed time up to now).
  std::vector<TraceSpan> spans() const;

 private:
  mutable std::mutex mutex_;
  Clock::time_point start_;
  std::vector<TraceSpan> spans_;
  std::vector<Clock::time_point> opened_;  // open spans' start instants
  std::vector<char> open_;                 // 1 while the span is open
  int engine_parent_ = kRoot;
};

/// RAII span that is a complete no-op when `trace` is null -- the form
/// every instrumentation site uses so the tracing-off cost stays at one
/// branch.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name, int parent = Trace::kRoot)
      : trace_(trace),
        id_(trace != nullptr ? trace->StartSpan(name, parent) : -1) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int id() const { return id_; }
  bool active() const { return trace_ != nullptr; }

  void Rows(int64_t scanned, int64_t pruned, int64_t returned) {
    if (trace_ != nullptr) {
      trace_->SetRows(id_, scanned, pruned, returned);
    }
  }
  void Note(const std::string& note) {
    if (trace_ != nullptr) {
      trace_->SetNote(id_, note);
    }
  }

 private:
  Trace* trace_;
  int id_;
};

/// Renders the span tree as an indented text table (what EXPLAIN ANALYZE
/// and `.trace` print): one line per span, children indented under their
/// parent, per-shard children ordered by shard id, with wall time and
/// nonzero row counts.
std::string RenderTraceTree(const std::vector<TraceSpan>& spans);

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_TRACE_H_
