#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace simq {
namespace obs {

namespace {

void CloseIfOpen(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// Writes the whole buffer, tolerating short writes; returns false on
/// error. The peer is a scraper on loopback, so blocking is fine.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* Reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Parses "METHOD SP TARGET SP HTTP/x.y" out of `line` (no CR/LF).
/// Returns false when the line is not that shape.
bool ParseRequestLine(const std::string& line, std::string* method,
                      std::string* target) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    return false;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return false;
  }
  const std::string version = line.substr(sp2 + 1);
  if (version.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  *method = line.substr(0, sp1);
  *target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  return !target->empty() && (*target)[0] == '/';
}

}  // namespace

MetricsHttpExporter::MetricsHttpExporter(const MetricRegistry* registry,
                                         RefreshFn refresh)
    : registry_(registry), refresh_(std::move(refresh)) {}

MetricsHttpExporter::~MetricsHttpExporter() { Stop(); }

void MetricsHttpExporter::AddHandler(const std::string& path,
                                     HandlerFn handler) {
  handlers_[path] = std::move(handler);
}

void MetricsHttpExporter::SetHealthCheck(HealthFn health) {
  health_ = std::move(health);
}

bool MetricsHttpExporter::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire) || registry_ == nullptr) {
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0 || ::pipe(wake_pipe_) != 0) {
    CloseIfOpen(&listen_fd_);
    CloseIfOpen(&wake_pipe_[0]);
    CloseIfOpen(&wake_pipe_[1]);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void MetricsHttpExporter::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  CloseIfOpen(&listen_fd_);
  CloseIfOpen(&wake_pipe_[0]);
  CloseIfOpen(&wake_pipe_[1]);
  port_ = 0;
}

void MetricsHttpExporter::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int n = ::poll(fds, 2, -1);
    if (n <= 0) {
      continue;  // EINTR
    }
    if (fds[1].revents != 0) {
      return;  // Stop() woke us
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

MetricsHttpExporter::Response MetricsHttpExporter::Dispatch(
    const std::string& path) {
  const auto it = handlers_.find(path);
  if (it != handlers_.end()) {
    return it->second();
  }
  if (path == "/metrics") {
    if (refresh_) {
      refresh_();
    }
    Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_->RenderPrometheusText();
    return response;
  }
  if (path == "/healthz") {
    Response response;
    std::string detail;
    if (health_ && !health_(&detail)) {
      response.status = 503;
      response.body = detail.empty() ? "unavailable\n" : detail + "\n";
    } else {
      response.body = "ok\n";
    }
    return response;
  }
  Response response;
  response.status = 404;
  response.body = "unknown path\n";
  return response;
}

void MetricsHttpExporter::HandleConnection(int fd) {
  // Read until the header terminator. The cap bounds a hostile peer: a
  // request whose headers do not fit is rejected with 431, never
  // buffered further.
  char buf[4096];
  size_t got = 0;
  bool complete = false;
  while (got < sizeof(buf) - 1) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 2000) <= 0) {
      return;  // slow or dead client: drop it
    }
    const ssize_t n = ::read(fd, buf + got, sizeof(buf) - 1 - got);
    if (n <= 0) {
      return;
    }
    got += static_cast<size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      complete = true;
      break;
    }
  }

  Response response;
  if (!complete) {
    response.status = 431;
    response.body = "headers too large\n";
  } else {
    // Isolate the request line.
    const char* eol = std::strpbrk(buf, "\r\n");
    const std::string line(buf, eol != nullptr
                                    ? static_cast<size_t>(eol - buf)
                                    : got);
    std::string method;
    std::string target;
    if (!ParseRequestLine(line, &method, &target)) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (method != "GET") {
      response.status = 405;
      response.body = "only GET is served\n";
    } else {
      const size_t query = target.find('?');
      response = Dispatch(query == std::string::npos
                              ? target
                              : target.substr(0, query));
    }
  }

  char header[224];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "%s"
      "Connection: close\r\n\r\n",
      response.status, Reason(response.status),
      response.content_type.c_str(), response.body.size(),
      response.status == 405 ? "Allow: GET\r\n" : "");
  if (header_len > 0 &&
      WriteAll(fd, header, static_cast<size_t>(header_len))) {
    WriteAll(fd, response.body.data(), response.body.size());
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (response.status != 200) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace simq
