#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace simq {
namespace obs {

namespace {

void CloseIfOpen(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// Writes the whole buffer, tolerating short writes; returns false on
/// error. The peer is a scraper on loopback, so blocking is fine.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MetricsHttpExporter::MetricsHttpExporter(const MetricRegistry* registry,
                                         RefreshFn refresh)
    : registry_(registry), refresh_(std::move(refresh)) {}

MetricsHttpExporter::~MetricsHttpExporter() { Stop(); }

bool MetricsHttpExporter::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire) || registry_ == nullptr) {
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0 || ::pipe(wake_pipe_) != 0) {
    CloseIfOpen(&listen_fd_);
    CloseIfOpen(&wake_pipe_[0]);
    CloseIfOpen(&wake_pipe_[1]);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void MetricsHttpExporter::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  CloseIfOpen(&listen_fd_);
  CloseIfOpen(&wake_pipe_[0]);
  CloseIfOpen(&wake_pipe_[1]);
  port_ = 0;
}

void MetricsHttpExporter::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int n = ::poll(fds, 2, -1);
    if (n <= 0) {
      continue;  // EINTR
    }
    if (fds[1].revents != 0) {
      return;  // Stop() woke us
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpExporter::HandleConnection(int fd) {
  // Read until the header terminator or a small cap; the request line is
  // all we need and we answer every path identically.
  char buf[2048];
  size_t got = 0;
  while (got < sizeof(buf) - 1) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 2000) <= 0) {
      return;  // slow or dead client: drop it
    }
    const ssize_t n = ::read(fd, buf + got, sizeof(buf) - 1 - got);
    if (n <= 0) {
      return;
    }
    got += static_cast<size_t>(n);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  if (refresh_) {
    refresh_();
  }
  const std::string body = registry_->RenderPrometheusText();
  char header[160];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      body.size());
  if (header_len > 0 &&
      WriteAll(fd, header, static_cast<size_t>(header_len))) {
    WriteAll(fd, body.data(), body.size());
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace simq
