#include "obs/slow_query_log.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace simq {
namespace obs {

namespace {

void AppendEscaped(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "0";
    return;
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    *out += buf;
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  *out += buf;
}

void AppendField(const char* key, const std::string& value, bool* first,
                 std::string* out) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  out->push_back('"');
  *out += key;
  *out += "\":";
  AppendEscaped(value, out);
}

void AppendField(const char* key, double value, bool* first,
                 std::string* out) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  out->push_back('"');
  *out += key;
  *out += "\":";
  AppendNumber(value, out);
}

void AppendField(const char* key, bool value, bool* first,
                 std::string* out) {
  if (!*first) {
    out->push_back(',');
  }
  *first = false;
  out->push_back('"');
  *out += key;
  *out += "\":";
  *out += value ? "true" : "false";
}

// -------------------------------------------------------------------------
// Minimal JSON reader for the subset FormatSlowQueryJson emits: one flat
// object whose values are strings, numbers, bools, or one array of flat
// objects. Poisoned-cursor style like net/wire.h.
// -------------------------------------------------------------------------

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool ok() const { return ok_; }
  void Poison() { ok_ = false; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return '\0';
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      ok_ = false;
      return;
    }
    ++pos_;
  }

  bool TryConsume(char c) {
    if (ok_ && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadString() {
    std::string out;
    Expect('"');
    while (ok_) {
      if (pos_ >= text_.size()) {
        ok_ = false;
        break;
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        ok_ = false;
        break;
      }
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ok_ = false;
            break;
          }
          unsigned value = 0;
          for (int i = 0; i < 4 && ok_; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              ok_ = false;
            }
          }
          // The writer only emits \u00XX control escapes; anything in
          // the Latin-1 range round-trips, the rest is replaced.
          out.push_back(value < 0x100 ? static_cast<char>(value) : '?');
          break;
        }
        default:
          ok_ = false;
      }
    }
    return out;
  }

  double ReadNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return 0.0;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      ok_ = false;
      return 0.0;
    }
    return value;
  }

  bool ReadBool() {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    ok_ = false;
    return false;
  }

  /// Skips any scalar value (string / number / bool / null) -- how
  /// unknown keys stay forward-compatible.
  void SkipScalar() {
    const char c = Peek();
    if (c == '"') {
      ReadString();
    } else if (c == 't' || c == 'f') {
      ReadBool();
    } else if (c == 'n') {
      if (text_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
      } else {
        ok_ = false;
      }
    } else {
      ReadNumber();
    }
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool ParseSpan(JsonCursor* cur, TraceSpan* span) {
  cur->Expect('{');
  if (cur->TryConsume('}')) {
    return cur->ok();
  }
  while (cur->ok()) {
    const std::string key = cur->ReadString();
    cur->Expect(':');
    if (!cur->ok()) {
      return false;
    }
    if (key == "name") {
      span->name = cur->ReadString();
    } else if (key == "parent") {
      span->parent = static_cast<int>(cur->ReadNumber());
    } else if (key == "shard") {
      span->shard = static_cast<int>(cur->ReadNumber());
    } else if (key == "start_ms") {
      span->start_ms = cur->ReadNumber();
    } else if (key == "elapsed_ms") {
      span->elapsed_ms = cur->ReadNumber();
    } else if (key == "scanned") {
      span->rows_scanned = static_cast<int64_t>(cur->ReadNumber());
    } else if (key == "pruned") {
      span->rows_pruned = static_cast<int64_t>(cur->ReadNumber());
    } else if (key == "rows") {
      span->rows_returned = static_cast<int64_t>(cur->ReadNumber());
    } else if (key == "note") {
      span->note = cur->ReadString();
    } else {
      cur->SkipScalar();
    }
    if (cur->TryConsume('}')) {
      return cur->ok();
    }
    cur->Expect(',');
  }
  return false;
}

}  // namespace

std::string FormatSlowQueryJson(const SlowQueryEntry& entry) {
  std::string out;
  out.reserve(256 + entry.spans.size() * 96);
  out.push_back('{');
  bool first = true;
  AppendField("ts_ms", static_cast<double>(entry.unix_ms), &first, &out);
  AppendField("fingerprint", entry.fingerprint, &first, &out);
  AppendField("epoch", static_cast<double>(entry.epoch), &first, &out);
  AppendField("relation", entry.relation, &first, &out);
  AppendField("elapsed_ms", entry.elapsed_ms, &first, &out);
  AppendField("strategy", entry.strategy, &first, &out);
  AppendField("engine", entry.engine, &first, &out);
  AppendField("filtered", entry.filtered, &first, &out);
  AppendField("cache_hit", entry.cache_hit, &first, &out);
  AppendField("degraded", entry.degraded, &first, &out);
  AppendField("shards", static_cast<double>(entry.shards), &first, &out);
  out += ",\"spans\":[";
  for (size_t i = 0; i < entry.spans.size(); ++i) {
    const TraceSpan& span = entry.spans[i];
    if (i > 0) {
      out.push_back(',');
    }
    out.push_back('{');
    bool sfirst = true;
    AppendField("name", span.name, &sfirst, &out);
    AppendField("parent", static_cast<double>(span.parent), &sfirst, &out);
    if (span.shard >= 0) {
      AppendField("shard", static_cast<double>(span.shard), &sfirst, &out);
    }
    AppendField("start_ms", span.start_ms, &sfirst, &out);
    AppendField("elapsed_ms", span.elapsed_ms, &sfirst, &out);
    if (span.rows_scanned > 0) {
      AppendField("scanned", static_cast<double>(span.rows_scanned),
                  &sfirst, &out);
    }
    if (span.rows_pruned > 0) {
      AppendField("pruned", static_cast<double>(span.rows_pruned),
                  &sfirst, &out);
    }
    if (span.rows_returned > 0) {
      AppendField("rows", static_cast<double>(span.rows_returned),
                  &sfirst, &out);
    }
    if (!span.note.empty()) {
      AppendField("note", span.note, &sfirst, &out);
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

bool ParseSlowQueryJson(const std::string& line, SlowQueryEntry* out) {
  SlowQueryEntry entry;
  bool saw_fingerprint = false;
  bool saw_elapsed = false;
  JsonCursor cur(line);
  cur.Expect('{');
  if (!cur.ok()) {
    return false;
  }
  if (!cur.TryConsume('}')) {
    while (cur.ok()) {
      const std::string key = cur.ReadString();
      cur.Expect(':');
      if (!cur.ok()) {
        return false;
      }
      if (key == "ts_ms") {
        entry.unix_ms = static_cast<int64_t>(cur.ReadNumber());
      } else if (key == "fingerprint") {
        entry.fingerprint = cur.ReadString();
        saw_fingerprint = true;
      } else if (key == "epoch") {
        entry.epoch = static_cast<uint64_t>(cur.ReadNumber());
      } else if (key == "relation") {
        entry.relation = cur.ReadString();
      } else if (key == "elapsed_ms") {
        entry.elapsed_ms = cur.ReadNumber();
        saw_elapsed = true;
      } else if (key == "strategy") {
        entry.strategy = cur.ReadString();
      } else if (key == "engine") {
        entry.engine = cur.ReadString();
      } else if (key == "filtered") {
        entry.filtered = cur.ReadBool();
      } else if (key == "cache_hit") {
        entry.cache_hit = cur.ReadBool();
      } else if (key == "degraded") {
        entry.degraded = cur.ReadBool();
      } else if (key == "shards") {
        entry.shards = static_cast<int>(cur.ReadNumber());
      } else if (key == "spans") {
        cur.Expect('[');
        if (!cur.TryConsume(']')) {
          while (cur.ok()) {
            TraceSpan span;
            if (!ParseSpan(&cur, &span)) {
              return false;
            }
            entry.spans.push_back(std::move(span));
            if (cur.TryConsume(']')) {
              break;
            }
            cur.Expect(',');
          }
        }
      } else {
        cur.SkipScalar();
      }
      if (cur.TryConsume('}')) {
        break;
      }
      cur.Expect(',');
    }
  }
  if (!cur.ok() || !cur.AtEnd() || !saw_fingerprint || !saw_elapsed) {
    return false;
  }
  *out = std::move(entry);
  return true;
}

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options)
    : options_(std::move(options)) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "a");
  }
}

SlowQueryLog::~SlowQueryLog() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

bool SlowQueryLog::ShouldLog(double elapsed_ms) {
  if (file_ == nullptr || elapsed_ms < options_.threshold_ms) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const int every = options_.sample_every > 0 ? options_.sample_every : 1;
  return (qualifying_++ % every) == 0;
}

void SlowQueryLog::Append(const SlowQueryEntry& entry) {
  if (file_ == nullptr) {
    return;
  }
  const std::string line = FormatSlowQueryJson(entry);
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++written_;
}

int64_t SlowQueryLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

}  // namespace obs
}  // namespace simq
