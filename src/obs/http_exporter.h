/// Minimal Prometheus-style scrape endpoint: a background thread that
/// answers every HTTP GET on its port with the owning registry's text
/// exposition (metrics.h RenderPrometheusText).
///
/// Scope is deliberately small -- this is a scrape surface, not a web
/// server: one thread, blocking accept via poll (so Stop() can interrupt
/// it through a self-pipe), one request served per connection, request
/// path ignored. A scrape happens every few seconds at most; per-request
/// latency is measured by bench/obs_overhead.cc, not optimized.
///
/// The optional refresh callback runs before each render so callers can
/// sync derived gauges first (QueryService::stats() mirrors cache and
/// degradation counters into the registry on read; simq_server passes
/// exactly that).

#ifndef SIMQ_OBS_HTTP_EXPORTER_H_
#define SIMQ_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace simq {
namespace obs {

class MetricsHttpExporter {
 public:
  using RefreshFn = std::function<void()>;

  /// `registry` must outlive the exporter. `refresh` may be null.
  MetricsHttpExporter(const MetricRegistry* registry, RefreshFn refresh);
  ~MetricsHttpExporter();

  MetricsHttpExporter(const MetricsHttpExporter&) = delete;
  MetricsHttpExporter& operator=(const MetricsHttpExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// serving thread. Returns false if the socket could not be set up.
  bool Start(uint16_t port);

  /// Stops the thread and closes the socket. Safe to call twice.
  void Stop();

  /// The bound port (resolves port 0); 0 before Start succeeds.
  uint16_t port() const { return port_; }

  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricRegistry* registry_;
  RefreshFn refresh_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() interrupts poll()
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_HTTP_EXPORTER_H_
