/// Minimal observability HTTP endpoint: a background thread serving the
/// registry's Prometheus text exposition on /metrics, a readiness probe
/// on /healthz, and any caller-registered paths (the server wires
/// /statements and /flightrecorder here).
///
/// Scope is deliberately small -- this is a scrape surface, not a web
/// server: one thread, blocking accept via poll (so Stop() can interrupt
/// it through a self-pipe), one request served per connection. It is
/// hardened the way an exposed port must be, not feature-rich: the
/// request line is parsed and validated (405 for non-GET, 400 for a
/// malformed line, 431 for headers that exceed the read cap, 404 for an
/// unknown path), never trusted.
///
/// The optional refresh callback runs before rendering /metrics so
/// callers can sync derived gauges first (simq_server passes
/// QueryService::RefreshScrapeGauges, so every scrape -- not only
/// stats() calls -- sees current delta and cache state).

#ifndef SIMQ_OBS_HTTP_EXPORTER_H_
#define SIMQ_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace simq {
namespace obs {

class MetricsHttpExporter {
 public:
  using RefreshFn = std::function<void()>;

  /// A registered endpoint's reply. `status` must be a code Reason()
  /// knows (200, 400, 404, 405, 431, 503); body is sent verbatim.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using HandlerFn = std::function<Response()>;

  /// Readiness probe: return true when the service can take traffic;
  /// on false, fill `detail` with why (degraded/overloaded state) --
  /// /healthz answers 503 with it.
  using HealthFn = std::function<bool(std::string* detail)>;

  /// `registry` must outlive the exporter. `refresh` may be null.
  MetricsHttpExporter(const MetricRegistry* registry, RefreshFn refresh);
  ~MetricsHttpExporter();

  MetricsHttpExporter(const MetricsHttpExporter&) = delete;
  MetricsHttpExporter& operator=(const MetricsHttpExporter&) = delete;

  /// Registers `handler` for GET `path` (exact match after stripping any
  /// query string). Call before Start; /metrics and /healthz are built
  /// in, and registering them replaces the built-in behavior.
  void AddHandler(const std::string& path, HandlerFn handler);

  /// Installs the /healthz readiness callback; without one, /healthz
  /// answers 200 "ok" whenever the thread serves at all.
  void SetHealthCheck(HealthFn health);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// serving thread. Returns false if the socket could not be set up.
  bool Start(uint16_t port);

  /// Stops the thread and closes the socket. Safe to call twice.
  void Stop();

  /// The bound port (resolves port 0); 0 before Start succeeds.
  uint16_t port() const { return port_; }

  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Requests answered with a non-200 status (hardening rejections and
  /// unknown paths).
  int64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);
  Response Dispatch(const std::string& path);

  const MetricRegistry* registry_;
  RefreshFn refresh_;
  HealthFn health_;
  std::map<std::string, HandlerFn> handlers_;  // frozen once Start runs
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() interrupts poll()
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> rejected_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_HTTP_EXPORTER_H_
