#include "obs/watchdog.h"

#include <chrono>

namespace simq {
namespace obs {

StallWatchdog::StallWatchdog(Options options, ProbeFn probe,
                             StallFn on_stall)
    : options_(options),
      probe_(std::move(probe)),
      on_stall_(std::move(on_stall)) {}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return;
  }
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void StallWatchdog::Loop() {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.poll_interval_ms);
  int64_t last_completed = -1;
  Clock::time_point progress_at = Clock::now();
  bool fired = false;  // one action per stall; re-armed by progress
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    cv_.wait_for(lock, interval, [this] { return !running_; });
    if (!running_) {
      return;
    }
    lock.unlock();
    const Probe probe = probe_();
    const Clock::time_point now = Clock::now();
    if (probe.completed != last_completed || probe.pending == 0) {
      // Progress (or nothing to wait for): reset the stall clock. An
      // idle service never counts as stalled no matter how quiet it is.
      last_completed = probe.completed;
      progress_at = now;
      fired = false;
    } else if (!fired) {
      const double stalled_ms =
          std::chrono::duration<double, std::milli>(now - progress_at)
              .count();
      if (stalled_ms >= options_.stall_after_ms) {
        fired = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (on_stall_) {
          on_stall_(stalled_ms, probe);
        }
      }
    }
    lock.lock();
  }
}

}  // namespace obs
}  // namespace simq
