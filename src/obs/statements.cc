#include "obs/statements.h"

#include <algorithm>

namespace simq {
namespace obs {

namespace {

// RFC 8259 string escaping (the slow-query log's convention): quotes,
// backslashes, and control characters; everything else passes through.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void StatementsTable::Record(uint64_t fingerprint, const std::string& text,
                             const Status& status, bool cache_hit,
                             double elapsed_ms,
                             const ResourceUsage& usage) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().fingerprint);
      lru_.pop_back();
      ++evictions_;
    }
    StatementStats fresh;
    fresh.fingerprint = fingerprint;
    fresh.text = text.size() > kStatementTextCap
                     ? text.substr(0, kStatementTextCap)
                     : text;
    lru_.push_front(std::move(fresh));
    it = index_.emplace(fingerprint, lru_.begin()).first;
  } else if (it->second != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
  }
  StatementStats& row = *it->second;
  ++row.calls;
  if (!status.ok()) {
    switch (status.code()) {
      case StatusCode::kTimeout: ++row.timeouts; break;
      case StatusCode::kCancelled: ++row.cancellations; break;
      case StatusCode::kOverloaded: ++row.sheds; break;
      default: ++row.errors;
    }
  }
  if (cache_hit) {
    ++row.cache_hits;
  }
  row.total_ms += elapsed_ms;
  row.max_ms = std::max(row.max_ms, elapsed_ms);
  row.latency.Observe(elapsed_ms);
  row.total.Add(usage);
  row.max.MaxWith(usage);
}

std::vector<StatementStats> StatementsTable::Top(size_t n) const {
  std::vector<StatementStats> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.assign(lru_.begin(), lru_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const StatementStats& a, const StatementStats& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.fingerprint < b.fingerprint;
            });
  if (n > 0 && out.size() > n) {
    out.resize(n);
  }
  return out;
}

size_t StatementsTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

int64_t StatementsTable::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void StatementsTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::string RenderStatementsJson(const std::vector<StatementStats>& rows) {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const StatementStats& row = rows[i];
    if (i > 0) {
      out += ",";
    }
    std::snprintf(buf, sizeof(buf), "{\"fingerprint\":\"%016llx\",",
                  static_cast<unsigned long long>(row.fingerprint));
    out += buf;
    out += "\"text\":\"" + EscapeJson(row.text) + "\",";
    std::snprintf(
        buf, sizeof(buf), "\"calls\":%lld,\"errors\":%lld,",
        static_cast<long long>(row.calls), static_cast<long long>(row.errors));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"timeouts\":%lld,\"cancelled\":%lld,",
                  static_cast<long long>(row.timeouts),
                  static_cast<long long>(row.cancellations));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"sheds\":%lld,\"cache_hits\":%lld,",
                  static_cast<long long>(row.sheds),
                  static_cast<long long>(row.cache_hits));
    out += buf;
    out += "\"total_ms\":" + FormatMetricValue(row.total_ms) + ",";
    out += "\"mean_ms\":" +
           FormatMetricValue(row.calls > 0
                                 ? row.total_ms /
                                       static_cast<double>(row.calls)
                                 : 0.0) +
           ",";
    out += "\"max_ms\":" + FormatMetricValue(row.max_ms) + ",";
    out += "\"p50_ms\":" + FormatMetricValue(row.latency.Percentile(50)) +
           ",";
    out += "\"p95_ms\":" + FormatMetricValue(row.latency.Percentile(95)) +
           ",";
    out += "\"p99_ms\":" + FormatMetricValue(row.latency.Percentile(99)) +
           ",";
    out += "\"total\":{" + FormatResourceUsageJson(row.total) + "},";
    out += "\"max\":{" + FormatResourceUsageJson(row.max) + "}}";
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace simq
