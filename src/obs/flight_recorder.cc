#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>

namespace simq {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::Global() {
  // Intentionally leaked: signal handlers and std::terminate may dump
  // during (or after) static destruction, so the black box must never be
  // destroyed.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(const char* type, const char* fields) {
  char line[kLineBytes];
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  timespec ts;
  long long ts_ms = 0;
  if (::clock_gettime(CLOCK_REALTIME, &ts) == 0) {
    ts_ms = static_cast<long long>(ts.tv_sec) * 1000 +
            ts.tv_nsec / 1000000;
  }
  int n;
  if (fields != nullptr && fields[0] != '\0') {
    n = std::snprintf(line, sizeof(line),
                      "{\"seq\":%llu,\"ts_ms\":%lld,\"ev\":\"%s\",%s}\n",
                      static_cast<unsigned long long>(seq), ts_ms, type,
                      fields);
  } else {
    n = std::snprintf(line, sizeof(line),
                      "{\"seq\":%llu,\"ts_ms\":%lld,\"ev\":\"%s\"}\n",
                      static_cast<unsigned long long>(seq), ts_ms, type);
  }
  if (n < 0) {
    return;
  }
  if (static_cast<size_t>(n) >= sizeof(line)) {
    // The fields fragment did not fit. Publish the envelope with a
    // truncation marker instead of a cut-off (invalid) JSON line.
    n = std::snprintf(
        line, sizeof(line),
        "{\"seq\":%llu,\"ts_ms\":%lld,\"ev\":\"%s\",\"truncated\":true}\n",
        static_cast<unsigned long long>(seq), ts_ms, type);
    if (n < 0 || static_cast<size_t>(n) >= sizeof(line)) {
      return;
    }
  }

  Slot& slot = slots_[seq % slots_.size()];
  // Seqlock write: odd marks in-progress, the final release store
  // publishes. A writer lapped by a full ring revolution mid-copy could
  // race another writer on this slot; with thousands of slots that needs
  // the process to record its entire history inside one memcpy, so the
  // (benign, version-detected) window is accepted.
  const uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint64_t words[kWords] = {};
  std::memcpy(words, line, static_cast<size_t>(n));
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.len.store(static_cast<uint32_t>(n), std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

void FlightRecorder::Recordf(const char* type, const char* fmt, ...) {
  char fields[kLineBytes];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(fields, sizeof(fields), fmt, args);
  va_end(args);
  if (n < 0) {
    return;
  }
  Record(type, fields);
}

bool FlightRecorder::ReadSlot(const Slot& slot, char* out,
                              size_t* len) const {
  const uint32_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1u) != 0) {
    return false;  // never written, or mid-write
  }
  const uint32_t n = slot.len.load(std::memory_order_relaxed);
  if (n == 0 || n > kLineBytes) {
    return false;
  }
  uint64_t words[kWords];
  for (size_t i = 0; i < kWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) {
    return false;  // torn by a concurrent writer
  }
  std::memcpy(out, words, n);
  *len = n;
  return true;
}

void FlightRecorder::DumpToFd(int fd) const {
  // Oldest first: walk the last `capacity` sequence numbers. A slot may
  // have been overwritten by a newer event since `head` was sampled; the
  // line's own "seq" field keeps the output self-describing either way.
  const uint64_t head = seq_.load(std::memory_order_acquire);
  const uint64_t span =
      head < slots_.size() ? head : static_cast<uint64_t>(slots_.size());
  char line[kLineBytes];
  for (uint64_t s = head - span; s < head; ++s) {
    const Slot& slot = slots_[s % slots_.size()];
    size_t len = 0;
    if (!ReadSlot(slot, line, &len)) {
      continue;
    }
    size_t sent = 0;
    while (sent < len) {
      const ssize_t w = ::write(fd, line + sent, len - sent);
      if (w <= 0) {
        return;
      }
      sent += static_cast<size_t>(w);
    }
  }
}

std::string FlightRecorder::DumpJsonl() const {
  const uint64_t head = seq_.load(std::memory_order_acquire);
  const uint64_t span =
      head < slots_.size() ? head : static_cast<uint64_t>(slots_.size());
  std::string out;
  out.reserve(static_cast<size_t>(span) * 96);
  char line[kLineBytes];
  for (uint64_t s = head - span; s < head; ++s) {
    size_t len = 0;
    if (ReadSlot(slots_[s % slots_.size()], line, &len)) {
      out.append(line, len);
    }
  }
  return out;
}

void FlightRecorder::SetCrashDumpPath(const std::string& path) {
  const size_t n = path.size() < sizeof(crash_path_) - 1
                       ? path.size()
                       : sizeof(crash_path_) - 1;
  std::memcpy(crash_path_, path.data(), n);
  crash_path_[n] = '\0';
}

bool FlightRecorder::DumpToCrashPath() const {
  if (crash_path_[0] == '\0') {
    return false;
  }
  const int fd = ::open(crash_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  DumpToFd(fd);
  ::fsync(fd);
  ::close(fd);
  return true;
}

namespace {

FlightRecorder* g_crash_recorder = nullptr;
std::terminate_handler g_prev_terminate = nullptr;

// Fatal path: dump the black box, then die with the original signal.
// SA_RESETHAND restored the default disposition on entry, so the
// re-raise terminates with the correct exit status. Everything here is
// async-signal-safe (atomic loads + open/write/fsync).
void FatalSignalHandler(int sig) {
  FlightRecorder* recorder = g_crash_recorder;
  if (recorder != nullptr) {
    recorder->DumpToCrashPath();
  }
  ::raise(sig);
}

// On-demand path: dump and keep flying.
void DumpSignalHandler(int /*sig*/) {
  FlightRecorder* recorder = g_crash_recorder;
  if (recorder != nullptr) {
    recorder->DumpToCrashPath();
  }
}

[[noreturn]] void TerminateWithDump() {
  FlightRecorder* recorder = g_crash_recorder;
  if (recorder != nullptr) {
    recorder->DumpToCrashPath();
  }
  if (g_prev_terminate != nullptr) {
    g_prev_terminate();
  }
  std::abort();
}

}  // namespace

void FlightRecorder::InstallCrashHandlers(FlightRecorder* recorder) {
  g_crash_recorder = recorder;
  static bool installed = false;
  if (installed) {
    return;
  }
  installed = true;

  struct sigaction fatal;
  std::memset(&fatal, 0, sizeof(fatal));
  fatal.sa_handler = FatalSignalHandler;
  sigemptyset(&fatal.sa_mask);
  fatal.sa_flags = SA_RESETHAND;  // one shot: the re-raise is default
  const int fatal_signals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};
  for (const int sig : fatal_signals) {
    ::sigaction(sig, &fatal, nullptr);
  }

  struct sigaction dump;
  std::memset(&dump, 0, sizeof(dump));
  dump.sa_handler = DumpSignalHandler;
  sigemptyset(&dump.sa_mask);
  dump.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &dump, nullptr);

  g_prev_terminate = std::set_terminate(TerminateWithDump);
}

}  // namespace obs
}  // namespace simq
