/// Structured slow-query log: one JSONL line per traced query that
/// crossed the latency threshold, carrying enough context (fingerprint,
/// epoch, plan choice, span summary) to reconstruct where the time went
/// without re-running the query.
///
/// The service owns one SlowQueryLog when ServiceOptions::slow_query_log_
/// path is set; after each traced execution it calls ShouldLog(elapsed)
/// -- threshold first, then the 1-in-N sampling counter -- and appends a
/// FormatSlowQueryJson line. Appends take a mutex and write+flush one
/// line; the slow path is by definition not the hot path.
///
/// The JSON subset used here is deliberately tiny (string/number/bool
/// scalars, one flat object, one array of flat span objects, no nesting
/// beyond that) so ParseSlowQueryJson can round-trip it for tests and
/// offline tooling without a JSON dependency. Strings are escaped per
/// RFC 8259 (backslash, quote, and control characters as \uXXXX).

#ifndef SIMQ_OBS_SLOW_QUERY_LOG_H_
#define SIMQ_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace simq {
namespace obs {

/// What one slow-query line records. `spans` is the trace snapshot at
/// completion; everything else is the query's service-level summary.
struct SlowQueryEntry {
  int64_t unix_ms = 0;          // wall-clock completion time
  std::string fingerprint;      // canonical query text (cache key text)
  uint64_t epoch = 0;           // snapshot epoch the query ran against
  std::string relation;
  double elapsed_ms = 0.0;
  std::string strategy;         // plan strategy (scan/index/...)
  std::string engine;           // engine choice (scalar/packed/...)
  bool filtered = false;        // quantized filter path ran
  bool cache_hit = false;
  bool degraded = false;        // engine degradation fallback fired
  int shards = 0;
  std::vector<TraceSpan> spans;
};

/// Serializes `entry` as a single JSON object (no trailing newline).
std::string FormatSlowQueryJson(const SlowQueryEntry& entry);

/// Parses a line produced by FormatSlowQueryJson. Returns false on any
/// syntax error or missing required field; unknown keys are skipped so
/// the schema can grow.
bool ParseSlowQueryJson(const std::string& line, SlowQueryEntry* out);

/// Threshold + sampling config for the log (ServiceOptions mirrors this).
struct SlowQueryLogOptions {
  std::string path;            // empty = disabled
  double threshold_ms = 100.0; // log only queries at least this slow
  int sample_every = 1;        // keep 1 in N of the qualifying queries
};

/// Append-only JSONL writer. Thread-safe; one line per Append.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// True when the log is open and `elapsed_ms` clears the threshold and
  /// the sampling counter elects this query. Advances the sampling
  /// counter only for qualifying queries, so "1 in N" means 1 in N slow
  /// queries, not 1 in N queries.
  bool ShouldLog(double elapsed_ms);

  /// Writes one line and flushes. No-op if the file failed to open.
  void Append(const SlowQueryEntry& entry);

  bool ok() const { return file_ != nullptr; }
  int64_t lines_written() const;

 private:
  const SlowQueryLogOptions options_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  int64_t qualifying_ = 0;  // slow queries seen (sampling counter)
  int64_t written_ = 0;
};

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_SLOW_QUERY_LOG_H_
