/// Stall watchdog: a background thread that detects "work is pending but
/// nothing completes" and captures the evidence while the hang is live.
///
/// The owner supplies a probe (a cheap snapshot of progress: a monotone
/// count of finished executions plus the number of queries currently
/// running or queued) and a stall action. The watchdog polls the probe on
/// its interval; when the pending count stays positive while the finished
/// count does not move for `stall_after_ms`, it fires the action once --
/// the query service's action records a "stall" event with the
/// admission-state snapshot and dumps the flight recorder, so the black
/// box lands on disk while the stall is observable rather than after the
/// operator kills the process. The watchdog re-arms after progress
/// resumes, so a machine that stalls twice dumps twice.
///
/// Tuning (docs/OBSERVABILITY.md "Stall watchdog"): stall_after_ms must
/// comfortably exceed the slowest legitimate query; the poll interval
/// only bounds detection latency and can stay coarse.

#ifndef SIMQ_OBS_WATCHDOG_H_
#define SIMQ_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace simq {
namespace obs {

class StallWatchdog {
 public:
  struct Options {
    /// How often the probe runs. Bounds detection latency only.
    double poll_interval_ms = 250.0;
    /// No completion while work is pending for this long == a stall.
    double stall_after_ms = 5000.0;
  };

  /// One progress snapshot. `completed` must be monotone non-decreasing;
  /// `pending` is the instantaneous running + queued count.
  struct Probe {
    int64_t completed = 0;
    int64_t pending = 0;
  };

  using ProbeFn = std::function<Probe()>;
  /// Invoked once per detected stall with how long progress has been
  /// absent and the probe that tripped it. Runs on the watchdog thread.
  using StallFn = std::function<void(double stalled_ms, const Probe& probe)>;

  StallWatchdog(Options options, ProbeFn probe, StallFn on_stall);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void Start();
  void Stop();

  int64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const Options options_;
  const ProbeFn probe_;
  const StallFn on_stall_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread thread_;
  std::atomic<int64_t> stalls_{0};
};

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_WATCHDOG_H_
