/// Lock-cheap metrics registry: named counters, gauges, and log-bucketed
/// latency histograms for the whole stack (service, engine, net front
/// end), exported as Prometheus-style text and over the kMetrics wire
/// frame.
///
/// Design constraints, in order:
///
///  * Writes are hot-path safe. A Counter is sharded across a small fixed
///    set of cache-line-padded atomics; each thread picks a home shard
///    once (round-robin at first use) and increments it with a relaxed
///    fetch_add -- no lock, no false sharing between unrelated threads.
///    A Histogram is the same idea per bucket. Gauges are single atomics
///    (they are set, not contended-incremented).
///  * Reads merge. Value() / snapshot() sum the shards; readers pay the
///    O(shards) walk so writers never pay anything. Reads are racy-exact:
///    a concurrent snapshot observes every increment that happened-before
///    it and possibly some in-flight ones, never torn values.
///  * Registration is rare and locked; use is lock-free. GetCounter /
///    GetGauge / GetHistogram take a mutex to intern the name, but the
///    returned pointer is stable for the registry's lifetime -- callers
///    cache it at construction and never touch the map on a query path.
///
/// Histogram buckets are fixed exponential (powers of two starting at
/// kFirstBoundMs = 1 microsecond, kBuckets of them, plus an overflow
/// bucket), so two histograms are always mergeable and a percentile read
/// is O(buckets) with linear interpolation inside the winning bucket --
/// this is what replaced the unbounded latency sample vector behind
/// ServiceStats p50/p95/p99.
///
/// Thread-safety: every method on every type here is safe from any
/// thread. Metrics are never deleted; the registry owns them until it is
/// destroyed. Each QueryService owns its own registry by default, so
/// counters never bleed across service instances (tests rely on that);
/// pass ServiceOptions::metrics_registry to share one.

#ifndef SIMQ_OBS_METRICS_H_
#define SIMQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simq {
namespace obs {

namespace internal {
/// Round-robin home-shard index for the calling thread, in [0, shards).
/// One thread always maps to the same slot; distinct threads spread out.
int ThreadShard(int shards);
}  // namespace internal

/// Monotonically increasing counter, sharded across padded atomics.
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(int64_t delta = 1) {
    shards_[internal::ThreadShard(kShards)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merge-on-read: the sum over all shards.
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time value (set or adjusted; not write-contended enough to
/// shard).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of nonnegative values (milliseconds by
/// convention). Bucket i spans (UpperBound(i-1), UpperBound(i)] with
/// UpperBound(i) = kFirstBoundMs * 2^i; values beyond the last bound land
/// in the overflow bucket. Observe() is sharded like Counter::Add.
class Histogram {
 public:
  static constexpr int kBuckets = 40;        // 1us .. ~6.4 days, x2 steps
  static constexpr double kFirstBoundMs = 0.001;
  static constexpr int kShards = 8;

  /// Upper (inclusive) bound of bucket i; i == kBuckets is the overflow
  /// bucket with bound +infinity.
  static double UpperBound(int i);
  /// Index of the bucket that contains `value_ms` (overflow included).
  static int BucketIndex(double value_ms);

  void Observe(double value_ms);

  /// Merged read of all shards. Percentile() walks the cumulative counts
  /// and interpolates linearly inside the winning bucket; it is an
  /// approximation bounded by the bucket width (a factor-of-two band),
  /// monotone in p, and exact for the degenerate 0/1-sample cases.
  struct Snapshot {
    int64_t counts[kBuckets + 1] = {};  // [kBuckets] = overflow
    int64_t count = 0;
    double sum_ms = 0.0;

    double Percentile(double p) const;

    /// Adds one observation directly into the snapshot. For
    /// single-writer accumulators that live under their own lock (the
    /// statements table's per-statement latency distribution); the live
    /// Histogram stays the concurrent surface.
    void Observe(double value_ms);

    /// Adds `other` bucket-for-bucket. Always valid: every histogram in
    /// the process shares the same fixed exponential bounds, which is
    /// precisely why the bounds are compile-time constants.
    void Merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> counts[kBuckets + 1] = {};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_us{0};  // sum in integer microseconds
  };
  Shard shards_[kShards];
};

/// One rendered metric in a registry snapshot.
struct MetricSample {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  Type type = Type::kCounter;
  double value = 0.0;           // counter / gauge
  Histogram::Snapshot histogram;  // type == kHistogram only
};

/// Name -> metric interning table. Names follow Prometheus conventions
/// ([a-zA-Z_][a-zA-Z0-9_]*, *_total suffix on counters); the catalog
/// lives in docs/OBSERVABILITY.md.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Interns `name`; returns the same pointer for the same name every
  /// time. A name registered as one type must not be requested as
  /// another (the mismatch returns a distinct private metric so callers
  /// never alias through the wrong type, and the first registration wins
  /// the name in snapshots).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format: "# TYPE" comments, counter and
  /// gauge sample lines, and per-histogram cumulative _bucket{le="..."}
  /// series plus _sum and _count.
  std::string RenderPrometheusText() const;

 private:
  struct Entry {
    MetricSample::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
  /// Type-mismatched re-registrations park here, off the snapshot path.
  std::vector<std::unique_ptr<Entry>> orphans_;
};

/// Formats `value` the way the exposition text does (shortest round-trip
/// double; integers without a trailing ".0").
std::string FormatMetricValue(double value);

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_METRICS_H_
