/// pg_stat_statements for similarity queries: a bounded LRU table keyed
/// by AST fingerprint (service/fingerprint.h) aggregating, per statement
/// shape, call counts, failure counts by kind, a full latency
/// distribution, and summed + maximum ResourceUsage.
///
/// The service records one row update per finished execution -- success,
/// cache hit, timeout, cancellation, shed, or error alike -- under the
/// table's own mutex (one short critical section per query; the map
/// lookup is the cost). Capacity-bounded: when a new fingerprint would
/// exceed the capacity, the least-recently-updated statement is evicted,
/// so one-off ad-hoc shapes cannot grow the table without bound while
/// the shapes that carry the traffic stay hot.
///
/// Read surfaces -- the shell's `.top`, the kStatements wire frame, and
/// the HTTP /statements JSON endpoint -- all render from the same
/// Top() snapshot, which is how the aggregates stay bit-identical across
/// them (the acceptance test in tests/statements_test.cc pins this).

#ifndef SIMQ_OBS_STATEMENTS_H_
#define SIMQ_OBS_STATEMENTS_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/resource_usage.h"
#include "util/status.h"

namespace simq {
namespace obs {

/// Aggregated statistics for one statement shape. `mean` usage is not
/// stored -- it is `total` divided by `calls`, derived at render time so
/// every surface computes it from the same exact integers.
struct StatementStats {
  uint64_t fingerprint = 0;
  /// Canonical text sample (first execution's canonical key, truncated
  /// to kStatementTextCap); identifies the shape for humans.
  std::string text;
  int64_t calls = 0;          // every recorded execution, any outcome
  int64_t errors = 0;         // failures other than the three below
  int64_t timeouts = 0;       // kTimeout
  int64_t cancellations = 0;  // kCancelled
  int64_t sheds = 0;          // kOverloaded (admission refused)
  int64_t cache_hits = 0;     // served from the result cache
  double total_ms = 0.0;      // summed wall-clock
  double max_ms = 0.0;        // slowest single call
  /// Full latency distribution (fixed exponential buckets; merge-safe).
  Histogram::Snapshot latency;
  ResourceUsage total;  // summed ResourceUsage over all calls
  ResourceUsage max;    // component-wise maxima over all calls
};

/// Longest canonical-text sample a row keeps (and ships on the wire).
constexpr size_t kStatementTextCap = 200;

class StatementsTable {
 public:
  /// `capacity` == 0 disables the table (Record becomes a no-op).
  explicit StatementsTable(size_t capacity) : capacity_(capacity) {}

  StatementsTable(const StatementsTable&) = delete;
  StatementsTable& operator=(const StatementsTable&) = delete;

  bool enabled() const { return capacity_ > 0; }

  /// Folds one finished execution into its statement row (creating or
  /// reviving the row; evicting the coldest if at capacity). `status` is
  /// the execution outcome; `elapsed_ms` is wall-clock including queue
  /// time; `usage` may be all-zero when accounting is off.
  void Record(uint64_t fingerprint, const std::string& text,
              const Status& status, bool cache_hit, double elapsed_ms,
              const ResourceUsage& usage);

  /// The top `n` statements by total_ms (ties: more calls first, then
  /// smaller fingerprint -- fully deterministic). n == 0 returns all.
  std::vector<StatementStats> Top(size_t n) const;

  size_t size() const;
  int64_t evictions() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Recency list, most recently updated at the front; the map indexes it.
  std::list<StatementStats> lru_;
  std::unordered_map<uint64_t, std::list<StatementStats>::iterator> index_;
  int64_t evictions_ = 0;
};

/// Renders rows as a JSON array (RFC 8259; text escaped like the
/// slow-query log) -- the /statements HTTP body. Doubles use shortest
/// round-trip formatting so parsing the JSON recovers the exact values
/// the wire frame carries.
std::string RenderStatementsJson(const std::vector<StatementStats>& rows);

}  // namespace obs
}  // namespace simq

#endif  // SIMQ_OBS_STATEMENTS_H_
