#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace simq {
namespace obs {

namespace internal {

int ThreadShard(int shards) {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(slot % static_cast<unsigned>(shards));
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

// Precomputed bucket bounds so BucketIndex and UpperBound agree exactly
// (both read the same doubles; no re-derivation through pow()).
struct BucketBounds {
  double bounds[Histogram::kBuckets];
  BucketBounds() {
    double b = Histogram::kFirstBoundMs;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      bounds[i] = b;
      b *= 2.0;
    }
  }
};

const BucketBounds& Bounds() {
  static const BucketBounds bounds;
  return bounds;
}

}  // namespace

double Histogram::UpperBound(int i) {
  if (i >= kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return Bounds().bounds[std::max(0, i)];
}

int Histogram::BucketIndex(double value_ms) {
  const double* bounds = Bounds().bounds;
  // First bucket whose (inclusive) upper bound is >= value. NaN and
  // negatives clamp into bucket 0 rather than poisoning the overflow.
  if (!(value_ms > bounds[0])) {
    return 0;
  }
  const double* it =
      std::lower_bound(bounds, bounds + kBuckets, value_ms);
  return static_cast<int>(it - bounds);  // == kBuckets -> overflow
}

void Histogram::Observe(double value_ms) {
  Shard& shard = shards_[internal::ThreadShard(kShards)];
  shard.counts[BucketIndex(value_ms)].fetch_add(1,
                                                std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  const double us = value_ms * 1000.0;
  const int64_t us_int =
      std::isfinite(us) && us > 0
          ? static_cast<int64_t>(std::min(us, 9.0e18))
          : 0;
  shard.sum_us.fetch_add(us_int, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  int64_t sum_us = 0;
  for (const Shard& shard : shards_) {
    for (int i = 0; i <= kBuckets; ++i) {
      out.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    sum_us += shard.sum_us.load(std::memory_order_relaxed);
  }
  out.sum_ms = static_cast<double>(sum_us) / 1000.0;
  return out;
}

void Histogram::Snapshot::Observe(double value_ms) {
  counts[BucketIndex(value_ms)] += 1;
  count += 1;
  if (std::isfinite(value_ms) && value_ms > 0.0) {
    sum_ms += value_ms;
  }
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  for (int i = 0; i <= kBuckets; ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum_ms += other.sum_ms;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count <= 0) {
    return 0.0;
  }
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Rank in [1, count]: the sample the percentile names, matching the
  // nearest-rank convention the old reservoir used.
  const double rank = std::max(1.0, clamped / 100.0 *
                                        static_cast<double>(count));
  int64_t cumulative = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const int64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = i == 0 ? 0.0 : UpperBound(i - 1);
      double hi = UpperBound(i);
      if (!std::isfinite(hi)) {
        hi = lo * 2.0;  // overflow bucket: report one band above the top
      }
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative = next;
  }
  return UpperBound(kBuckets - 1);
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.type = MetricSample::Type::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type == MetricSample::Type::kCounter) {
    return it->second.counter.get();
  }
  // Type mismatch: hand back a private metric so the caller still has a
  // valid object; the original keeps the name.
  auto orphan = std::make_unique<Entry>();
  orphan->type = MetricSample::Type::kCounter;
  orphan->counter = std::make_unique<Counter>();
  Counter* out = orphan->counter.get();
  orphans_.push_back(std::move(orphan));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.type = MetricSample::Type::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type == MetricSample::Type::kGauge) {
    return it->second.gauge.get();
  }
  auto orphan = std::make_unique<Entry>();
  orphan->type = MetricSample::Type::kGauge;
  orphan->gauge = std::make_unique<Gauge>();
  Gauge* out = orphan->gauge.get();
  orphans_.push_back(std::move(orphan));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.type = MetricSample::Type::kHistogram;
    entry.histogram = std::make_unique<Histogram>();
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  if (it->second.type == MetricSample::Type::kHistogram) {
    return it->second.histogram.get();
  }
  auto orphan = std::make_unique<Entry>();
  orphan->type = MetricSample::Type::kHistogram;
  orphan->histogram = std::make_unique<Histogram>();
  Histogram* out = orphan->histogram.get();
  orphans_.push_back(std::move(orphan));
  return out;
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& entry : metrics_) {
    MetricSample sample;
    sample.name = entry.first;
    sample.type = entry.second.type;
    switch (entry.second.type) {
      case MetricSample::Type::kCounter:
        sample.value = static_cast<double>(entry.second.counter->Value());
        break;
      case MetricSample::Type::kGauge:
        sample.value = static_cast<double>(entry.second.gauge->Value());
        break;
      case MetricSample::Type::kHistogram:
        sample.histogram = entry.second.histogram->snapshot();
        sample.value = sample.histogram.sum_ms;
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string MetricRegistry::RenderPrometheusText() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out;
  out.reserve(samples.size() * 64);
  for (const MetricSample& sample : samples) {
    switch (sample.type) {
      case MetricSample::Type::kCounter:
        out += "# TYPE " + sample.name + " counter\n";
        out += sample.name + " " + FormatMetricValue(sample.value) + "\n";
        break;
      case MetricSample::Type::kGauge:
        out += "# TYPE " + sample.name + " gauge\n";
        out += sample.name + " " + FormatMetricValue(sample.value) + "\n";
        break;
      case MetricSample::Type::kHistogram: {
        out += "# TYPE " + sample.name + " histogram\n";
        int64_t cumulative = 0;
        for (int i = 0; i <= Histogram::kBuckets; ++i) {
          cumulative += sample.histogram.counts[i];
          // Only emit the populated prefix plus +Inf: 41 series per
          // histogram is scrape noise when most buckets are empty.
          if (sample.histogram.counts[i] == 0 && i < Histogram::kBuckets) {
            continue;
          }
          const double bound = Histogram::UpperBound(i);
          const std::string le =
              std::isfinite(bound) ? FormatMetricValue(bound) : "+Inf";
          out += sample.name + "_bucket{le=\"" + le + "\"} " +
                 FormatMetricValue(static_cast<double>(cumulative)) + "\n";
        }
        out += sample.name + "_sum " +
               FormatMetricValue(sample.histogram.sum_ms) + "\n";
        out += sample.name + "_count " +
               FormatMetricValue(static_cast<double>(
                   sample.histogram.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace simq
