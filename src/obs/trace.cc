#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace simq {
namespace obs {

namespace {

double MillisBetween(Trace::Clock::time_point a, Trace::Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Trace::Trace() : start_(Clock::now()) {
  TraceSpan root;
  root.name = "query";
  root.parent = -1;
  spans_.push_back(std::move(root));
  opened_.push_back(start_);
  open_.push_back(1);
}

int Trace::StartSpan(const std::string& name, int parent) {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span;
  span.name = name;
  span.parent = parent;
  span.start_ms = MillisBetween(start_, now);
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  opened_.push_back(now);
  open_.push_back(1);
  return id;
}

void Trace::EndSpan(int id) {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  spans_[static_cast<size_t>(id)].elapsed_ms =
      MillisBetween(opened_[static_cast<size_t>(id)], now);
  open_[static_cast<size_t>(id)] = 0;
}

int Trace::AddCompleted(const std::string& name, int parent,
                        double start_ms, double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span;
  span.name = name;
  span.parent = parent;
  span.start_ms = start_ms;
  span.elapsed_ms = elapsed_ms;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  opened_.push_back(start_);
  open_.push_back(0);
  return id;
}

void Trace::SetShard(int id, int shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= 0 && id < static_cast<int>(spans_.size())) {
    spans_[static_cast<size_t>(id)].shard = shard;
  }
}

void Trace::SetRows(int id, int64_t scanned, int64_t pruned,
                    int64_t returned) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= 0 && id < static_cast<int>(spans_.size())) {
    TraceSpan& span = spans_[static_cast<size_t>(id)];
    span.rows_scanned = scanned;
    span.rows_pruned = pruned;
    span.rows_returned = returned;
  }
}

void Trace::SetNote(int id, const std::string& note) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= 0 && id < static_cast<int>(spans_.size())) {
    spans_[static_cast<size_t>(id)].note = note;
  }
}

double Trace::NowMs() const {
  return MillisBetween(start_, Clock::now());
}

void Trace::SetEngineParent(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_parent_ = id;
}

int Trace::engine_parent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_parent_;
}

std::vector<TraceSpan> Trace::spans() const {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out = spans_;
  for (size_t i = 0; i < out.size(); ++i) {
    if (open_[i] != 0) {
      // Still open: report the elapsed time up to now so a snapshot
      // mid-flight is never misleadingly zero.
      out[i].elapsed_ms = MillisBetween(opened_[i], now);
    }
  }
  return out;
}

namespace {

void AppendSpanLine(const TraceSpan& span, int depth, std::string* out) {
  char buf[160];
  std::string label;
  for (int i = 0; i < depth; ++i) {
    label += "  ";
  }
  label += span.name;
  if (span.shard >= 0) {
    std::snprintf(buf, sizeof(buf), " %d", span.shard);
    label += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-34s %10.3f ms", label.c_str(),
                span.elapsed_ms);
  *out += buf;
  if (span.rows_scanned > 0) {
    std::snprintf(buf, sizeof(buf), "  scanned=%lld",
                  static_cast<long long>(span.rows_scanned));
    *out += buf;
  }
  if (span.rows_pruned > 0) {
    std::snprintf(buf, sizeof(buf), " pruned=%lld",
                  static_cast<long long>(span.rows_pruned));
    *out += buf;
  }
  if (span.rows_returned > 0) {
    std::snprintf(buf, sizeof(buf), " rows=%lld",
                  static_cast<long long>(span.rows_returned));
    *out += buf;
  }
  if (!span.note.empty()) {
    *out += "  ";
    *out += span.note;
  }
  *out += "\n";
}

void RenderSubtree(const std::vector<TraceSpan>& spans,
                   const std::vector<std::vector<int>>& children, int id,
                   int depth, std::string* out) {
  AppendSpanLine(spans[static_cast<size_t>(id)], depth, out);
  for (int child : children[static_cast<size_t>(id)]) {
    RenderSubtree(spans, children, child, depth + 1, out);
  }
}

}  // namespace

std::string RenderTraceTree(const std::vector<TraceSpan>& spans) {
  std::string out;
  if (spans.empty()) {
    return out;
  }
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int parent = spans[i].parent;
    if (parent >= 0 && parent < static_cast<int>(spans.size()) &&
        parent != static_cast<int>(i)) {
      children[static_cast<size_t>(parent)].push_back(
          static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  // Parallel workers close per-shard spans in completion order; render in
  // (shard, start time, id) order so the tree is deterministic per query
  // shape even when timings race.
  for (std::vector<int>& kids : children) {
    std::stable_sort(kids.begin(), kids.end(), [&](int a, int b) {
      const TraceSpan& sa = spans[static_cast<size_t>(a)];
      const TraceSpan& sb = spans[static_cast<size_t>(b)];
      if ((sa.shard >= 0) != (sb.shard >= 0)) {
        return sa.start_ms < sb.start_ms;
      }
      if (sa.shard >= 0 && sa.shard != sb.shard) {
        return sa.shard < sb.shard;
      }
      if (sa.start_ms != sb.start_ms) {
        return sa.start_ms < sb.start_ms;
      }
      return a < b;
    });
  }
  for (int root : roots) {
    RenderSubtree(spans, children, root, 0, &out);
  }
  return out;
}

}  // namespace obs
}  // namespace simq
