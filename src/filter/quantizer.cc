#include "filter/quantizer.h"

#include <algorithm>

#include "util/logging.h"

namespace simq {

ScalarQuantizer ScalarQuantizer::Train(const FeatureStore& store, int bits) {
  ScalarQuantizer q;
  q.bits_ = std::clamp(bits, kMinBits, kMaxBits);
  q.cells_ = 1 << q.bits_;
  const int64_t count = store.size();
  if (count == 0) {
    return q;
  }
  q.dims_ = 2 * store.spectrum_length();
  q.bounds_.resize(static_cast<size_t>(q.dims_) * (q.cells_ + 1));
  std::vector<double> column(static_cast<size_t>(count));
  for (int d = 0; d < q.dims_; ++d) {
    for (int64_t i = 0; i < count; ++i) {
      column[static_cast<size_t>(i)] = store.SpectrumRow(i)[d];
    }
    std::sort(column.begin(), column.end());
    double* edges = q.bounds_.data() + static_cast<size_t>(d) * (q.cells_ + 1);
    // Quantile edges over the sorted column: edge c sits at rank
    // c*(count-1)/cells, so edge 0 is the minimum and edge `cells` the
    // maximum. Duplicate ranks (count < cells) produce empty cells, which
    // the bound kernels handle naturally (zero-width intervals).
    for (int c = 0; c <= q.cells_; ++c) {
      const int64_t rank =
          count <= 1 ? 0 : static_cast<int64_t>(c) * (count - 1) / q.cells_;
      edges[c] = column[static_cast<size_t>(rank)];
    }
    const double widest =
        std::max(std::abs(edges[0]), std::abs(edges[q.cells_]));
    q.max_row_energy_ += widest * widest;
  }
  return q;
}

uint32_t ScalarQuantizer::Encode(int d, double value) const {
  const double* edges = bounds(d);
  // Last edge with edges[c] <= value, i.e. upper_bound minus one.
  const double* it = std::upper_bound(edges, edges + cells_ + 1, value);
  int64_t c = (it - edges) - 1;
  if (c < 0) {
    c = 0;
  } else if (c >= cells_) {
    c = cells_ - 1;
  }
  return static_cast<uint32_t>(c);
}

}  // namespace simq
