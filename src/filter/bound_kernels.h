/// Branch-light lower/upper-bound distance kernels over bit-packed
/// quantized codes, plus the per-query LUT builder that feeds them (the
/// refine half's gatekeeper; see DESIGN.md "Quantized filter").
///
/// Correctness contract. For a query q and a record x encoded as codes
/// c_d with cell edges [lo_d, hi_d] = [bounds(d)[c_d], bounds(d)[c_d+1]]
/// (which bracket x_d exactly; filter/quantizer.h):
///
///   LB(q, codes(x)) <= |x - q|^2 <= UB(q, codes(x))     (real arithmetic)
///
/// per dimension: the squared distance from q_d to the nearest (LB) or
/// farthest (UB) edge of the cell, zero for LB when q_d lies inside.
/// Spectral multiplier rules m fold in exactly: per coefficient f,
/// |x_f*m_f - q_f|^2 == |m_f|^2 * |x_f - q_f/m_f|^2, so the LUT stores
/// bounds against the transformed query q/m scaled by the weight |m|^2
/// (coefficients with m_f == 0 contribute the constant |q_f|^2, kept in
/// `base`).
///
/// Floating point. The bounds hold in real arithmetic; the kernels and
/// the exact columnar kernels round differently (different association,
/// the multiplier identity above, possible FMA contraction), so a
/// computed LB may exceed the computed exact distance by a few ulps. All
/// pruning therefore compares against SafeThreshold(thr_sq): thr_sq
/// inflated by a relative guard plus an absolute slack proportional to
/// the query/data energies (~1e-9 relative, five orders of magnitude
/// above the worst accumulated rounding error of a 2n-term double sum,
/// and equally far below any pruning power that matters). Survivors are
/// refined through the unmodified exact kernels, so answers remain
/// bit-identical to the unfiltered engines by construction: pruning can
/// only ever be too weak, never wrong.
///
/// Per-query LUTs are laid out dimension-major (dims x cells doubles):
/// the scan touches row d at dimension d, so the handful of leading rows
/// that decide most records stay cache-hot. The code word is read via
/// one unaligned 64-bit load per dimension (guard bytes guaranteed by
/// QuantizedCodes), shifted and masked with compile-time constants --
/// instantiate the kernels through WithFilterBits so `kBits` is a
/// template parameter.
///
/// Everything here is stateless or immutable after construction; safe
/// for any number of concurrent query threads.

#ifndef SIMQ_FILTER_BOUND_KERNELS_H_
#define SIMQ_FILTER_BOUND_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "filter/quantizer.h"

namespace simq {

/// Per-query, per-(dimension, cell) bound tables against one shard's
/// quantizer grid.
struct QueryLuts {
  int dims = 0;
  int cells = 0;
  /// Constant distance contribution of zero-multiplier coefficients.
  double base = 0.0;
  /// Absolute floating-point safety slack (see SafeThreshold).
  double slack = 0.0;
  std::vector<double> lb;  // dims * cells, dimension-major
  std::vector<double> ub;  // dims * cells when built with upper bounds
  /// Dimensions sorted by descending mean lower-bound contribution
  /// (quantile cells are equi-populated, so the unweighted row mean IS
  /// the expected per-record contribution). The column scan consumes
  /// dimensions in this order, so the most discriminating ones run
  /// first and the survivor list collapses after one compaction; the
  /// full-sum bound is order-independent, so correctness is untouched.
  std::vector<int32_t> order;
};

/// Builds the LUTs for `query_ri` (2n interleaved (re, im) doubles, the
/// exact query the columnar kernels consume) against `quantizer`'s grid.
/// `mult_ri` is the interleaved spectral multiplier (nullptr = identity).
/// Upper-bound tables are built only when `with_upper` (the kNN path).
QueryLuts BuildQueryLuts(const ScalarQuantizer& quantizer,
                         const double* query_ri, const double* mult_ri,
                         int n, bool with_upper);

/// Threshold against which pruning decisions compare a computed lower
/// bound: `thr_sq` inflated so rounding differences between the bound
/// kernels and the exact kernels can never cause a false dismissal.
inline double SafeThreshold(double thr_sq, double slack) {
  return thr_sq + 1e-9 * thr_sq + slack;
}

namespace internal {

constexpr double kBoundInf = std::numeric_limits<double>::infinity();

template <int kBits>
inline uint32_t PackedCodeAt(const uint8_t* row, int d) {
  const int64_t bit = static_cast<int64_t>(d) * kBits;
  uint64_t word;
  std::memcpy(&word, row + (bit >> 3), sizeof(word));
  return static_cast<uint32_t>(word >> (bit & 7)) & ((1u << kBits) - 1u);
}

}  // namespace internal

/// Lower and upper bound of |x - q|^2 in one row-major pass over the
/// packed code row (the kNN scan), abandoning once the running lower
/// bound exceeds `abandon_sq` (pass SafeThreshold(...)): returns
/// +infinity on abandon -- `*ub_sq` is then not written -- else the full
/// lower bound. Four dimensions are accumulated per abandon check to
/// keep the loop branch-light.
template <int kBits>
inline double LowerUpperBoundSq(const uint8_t* row, const QueryLuts& luts,
                                double abandon_sq, double* ub_sq) {
  const double* lb = luts.lb.data();
  const double* ub = luts.ub.data();
  const int cells = luts.cells;
  const int dims = luts.dims;
  double acc = luts.base;
  double acc_ub = luts.base;
  int d = 0;
  for (; d + 4 <= dims; d += 4) {
    for (int j = 0; j < 4; ++j) {
      const int64_t idx = static_cast<int64_t>(d + j) * cells +
                          internal::PackedCodeAt<kBits>(row, d + j);
      acc += lb[idx];
      acc_ub += ub[idx];
    }
    if (acc > abandon_sq) {
      return internal::kBoundInf;
    }
  }
  for (; d < dims; ++d) {
    const int64_t idx = static_cast<int64_t>(d) * cells +
                        internal::PackedCodeAt<kBits>(row, d);
    acc += lb[idx];
    acc_ub += ub[idx];
  }
  if (acc > abandon_sq) {
    return internal::kBoundInf;
  }
  *ub_sq = acc_ub;
  return acc;
}

class QuantizedCodes;

/// Per-outer-row screen LUT of the filtered self-join: lower bounds of
/// (row[d] - x)^2 for x in each cell of dimension d, for the `ranks`
/// dimensions listed in `dims` (the codes' static scan_order prefix).
/// `lut` must hold ranks * cells() doubles, rank-major. A partial-sum
/// bound over a dimension subset is itself a valid lower bound of the
/// full distance, so screening on these rows alone never drops a true
/// pair.
void FillPairScreenLut(const ScalarQuantizer& quantizer, const double* row,
                       const int32_t* dims, int ranks, double* lut);

/// Column-major pairwise screen over rows [lo, hi): like
/// ColumnLowerBoundScan but accumulating only the `ranks` LUT rows of
/// FillPairScreenLut. `active` holds absolute local-row offsets minus
/// `lo`; on return only offsets whose partial lower bound is <=
/// `abandon_sq` remain, ascending.
void PairScreenScan(const QuantizedCodes& codes, const double* lut,
                    const int32_t* dims, int ranks, double abandon_sq,
                    int64_t lo, int64_t hi, std::vector<int32_t>* active,
                    std::vector<double>* scratch);

/// Column-major lower-bound scan over rows [lo, hi) of `codes` (the range
/// path's phase 1). `active` holds the unit-relative offsets of the rows
/// still in play (the caller has already applied pattern predicates);
/// the scan accumulates one dimension at a time across all active rows --
/// the dimension's LUT row and code column stay cache-hot for the whole
/// pass -- and re-compacts the survivor list after every few dimensions,
/// so work collapses as the running bounds cross `abandon_sq`. On return
/// `active` holds only the offsets whose full lower bound is <=
/// `abandon_sq`, in ascending order (the order the refine phase wants).
/// `scratch` is caller-provided accumulator storage, resized as needed.
void ColumnLowerBoundScan(const QuantizedCodes& codes, const QueryLuts& luts,
                          double abandon_sq, int64_t lo, int64_t hi,
                          std::vector<int32_t>* active,
                          std::vector<double>* scratch);

/// Planner-side selectivity estimate of a range query against one
/// shard's quantizer grid: the estimated fraction of rows within
/// `epsilon` of the query, as the product over dimensions of each
/// dimension's surviving-cell fraction. Quantile cells are
/// equi-populated, so the fraction of cells whose interval intersects
/// [q_d - eps_d, q_d + eps_d] is (to one cell of resolution) the
/// fraction of rows surviving that dimension alone; the product assumes
/// dimension independence, making this an estimate, not a bound. Feeds
/// the per-shard estimated cardinalities of EXPLAIN / EXPLAIN ANALYZE
/// only -- no pruning decision ever reads it. `query_ri` / `mult_ri` are
/// the interleaved query spectrum and spectral multiplier the exact
/// kernels consume (mult_ri nullptr = identity).
double EstimateRangeSurvivorFraction(const ScalarQuantizer& quantizer,
                                     const double* query_ri,
                                     const double* mult_ri, int n,
                                     double epsilon);

/// Runs `fn` with std::integral_constant<int, bits> so kernel loops see
/// the code width as a compile-time constant: WithFilterBits(codes.bits(),
/// [&](auto b) { ... LowerUpperBoundSq<b()>(...) ... }).
template <typename Fn>
void WithFilterBits(int bits, Fn&& fn) {
  switch (bits) {
    case 4:
      std::forward<Fn>(fn)(std::integral_constant<int, 4>{});
      break;
    case 5:
      std::forward<Fn>(fn)(std::integral_constant<int, 5>{});
      break;
    case 6:
      std::forward<Fn>(fn)(std::integral_constant<int, 6>{});
      break;
    case 7:
      std::forward<Fn>(fn)(std::integral_constant<int, 7>{});
      break;
    case 8:
    default:
      std::forward<Fn>(fn)(std::integral_constant<int, 8>{});
      break;
  }
}

}  // namespace simq

#endif  // SIMQ_FILTER_BOUND_KERNELS_H_
