/// VA-file-style scalar quantization of the normal-form spectral feature
/// space (the filter half of the quantized filter-and-refine subsystem;
/// see DESIGN.md "Quantized filter").
///
/// A ScalarQuantizer partitions every dimension of a FeatureStore's
/// interleaved spectrum rows (2 * spectrum_length real dimensions, the
/// exact doubles the columnar kernels consume) into `1 << bits` cells.
/// Cell edges are per-dimension quantiles of the training column, so the
/// grid adapts to the data distribution: dense regions get narrow cells
/// (tight bounds), outliers get wide ones. The outermost edges are the
/// column's true min/max, which makes every cell a FINITE interval that
/// provably brackets the value it encodes -- the property the lower/upper
/// bound distance kernels (filter/bound_kernels.h) rely on:
///
///   bounds(d)[code] <= row[d] <= bounds(d)[code + 1]   (exactly, in
///   the stored double values -- Encode assigns codes by binary search
///   over the same doubles the exact kernels read).
///
/// Quantizers are trained per relation shard from that shard's
/// FeatureStore columns (core/sharded_relation.h owns the cache); they
/// are immutable after Train, so any number of query threads may share
/// one without locking.

#ifndef SIMQ_FILTER_QUANTIZER_H_
#define SIMQ_FILTER_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "core/feature_store.h"

namespace simq {

/// Engine-level configuration of the quantized filter subsystem.
struct FilterOptions {
  /// Bits per quantized dimension; valid layouts are 4..8 bits
  /// (16..256 cells). 8 is the default: one byte per dimension, an 8x
  /// shrink over the double column it summarizes.
  int bits_per_dim = 8;
};

class ScalarQuantizer {
 public:
  /// Narrowest / widest supported code layouts.
  static constexpr int kMinBits = 4;
  static constexpr int kMaxBits = 8;

  /// Trains per-dimension quantile boundaries over every spectrum row of
  /// `store`. `bits` is clamped to [kMinBits, kMaxBits]. An empty store
  /// yields an empty quantizer (dims() == 0).
  static ScalarQuantizer Train(const FeatureStore& store, int bits);

  ScalarQuantizer() = default;

  int dims() const { return dims_; }
  int bits() const { return bits_; }
  int cells() const { return cells_; }

  /// Cell edges of dimension `d`: cells() + 1 non-decreasing doubles;
  /// [0] is the column minimum, [cells()] the column maximum.
  const double* bounds(int d) const {
    return bounds_.data() + static_cast<size_t>(d) * (cells_ + 1);
  }

  /// Code of `value` in dimension `d`: the largest cell whose low edge is
  /// <= value, clamped to [0, cells() - 1]. For any value in
  /// [bounds(d)[0], bounds(d)[cells()]] the returned cell brackets it.
  uint32_t Encode(int d, double value) const;

  /// Sum over all dimensions of the squared magnitude of the widest cell
  /// edge: an upper bound on the energy of any encoded row, used by the
  /// bound kernels to size their absolute floating-point safety slack.
  double max_row_energy() const { return max_row_energy_; }

 private:
  int dims_ = 0;
  int bits_ = 0;
  int cells_ = 0;
  double max_row_energy_ = 0.0;
  std::vector<double> bounds_;  // dims_ * (cells_ + 1), dimension-major
};

}  // namespace simq

#endif  // SIMQ_FILTER_QUANTIZER_H_
