#include "filter/quantized_codes.h"

#include <numeric>

namespace simq {

QuantizedCodes::QuantizedCodes(const FeatureStore& store, int bits)
    : quantizer_(ScalarQuantizer::Train(store, bits)), count_(store.size()) {
  const int dims = quantizer_.dims();
  if (count_ == 0 || dims == 0) {
    return;
  }
  const int64_t payload =
      (static_cast<int64_t>(dims) * quantizer_.bits() + 7) / 8;
  // 8 guard bytes per row so CodeAt's unaligned 64-bit load never reads
  // past the allocation; round to 8 so rows start word-aligned.
  row_stride_ = (payload + 8 + 7) & ~int64_t{7};
  codes_.assign(static_cast<size_t>(count_ * row_stride_), 0);
  columns_.resize(static_cast<size_t>(dims) * count_);
  const int code_bits = quantizer_.bits();
  // Per-dimension sums for the discrimination order, accumulated inside
  // the row-major encode loop so the store is streamed exactly once.
  std::vector<double> sum(static_cast<size_t>(dims), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(dims), 0.0);
  for (int64_t i = 0; i < count_; ++i) {
    const double* row = store.SpectrumRow(i);
    uint8_t* out = codes_.data() + i * row_stride_;
    for (int d = 0; d < dims; ++d) {
      const uint64_t code = quantizer_.Encode(d, row[d]);
      const int64_t bit = static_cast<int64_t>(d) * code_bits;
      uint64_t word = 0;
      std::memcpy(&word, out + (bit >> 3), sizeof(word));
      word |= code << (bit & 7);
      std::memcpy(out + (bit >> 3), &word, sizeof(word));
      columns_[static_cast<size_t>(d) * count_ + i] =
          static_cast<uint8_t>(code);
      sum[static_cast<size_t>(d)] += row[d];
      sum_sq[static_cast<size_t>(d)] += row[d] * row[d];
    }
  }
  // Static discrimination order: descending column variance (ties to the
  // lower dimension).
  std::vector<double> variance(static_cast<size_t>(dims), 0.0);
  for (int d = 0; d < dims; ++d) {
    const double mean = sum[static_cast<size_t>(d)] /
                        static_cast<double>(count_);
    variance[static_cast<size_t>(d)] =
        sum_sq[static_cast<size_t>(d)] / static_cast<double>(count_) -
        mean * mean;
  }
  scan_order_.resize(static_cast<size_t>(dims));
  std::iota(scan_order_.begin(), scan_order_.end(), 0);
  std::sort(scan_order_.begin(), scan_order_.end(),
            [&](int32_t a, int32_t b) {
              if (variance[static_cast<size_t>(a)] !=
                  variance[static_cast<size_t>(b)]) {
                return variance[static_cast<size_t>(a)] >
                       variance[static_cast<size_t>(b)];
              }
              return a < b;
            });
}

}  // namespace simq
