#include "filter/bound_kernels.h"

#include <algorithm>
#include <cmath>

#include "filter/quantized_codes.h"
#include "util/logging.h"

namespace simq {

namespace {

// Lower bound of (q - x)^2 over the cell [lo, hi]: the distance to the
// nearest edge, zero inside. Shared by the per-query LUT fill and the
// pairwise screen LUT fill.
inline double CellGapSq(double q, double lo, double hi) {
  const double gap = q < lo ? lo - q : (q > hi ? q - hi : 0.0);
  return gap * gap;
}

// Shared column-screen core: accumulate LUT rows column-by-column over
// the `active` unit-relative offsets, compacting survivors against
// `abandon_sq` after every group of dimensions. Accumulators are indexed
// by unit-relative offset (not survivor position), so compaction never
// shuffles them; `row_of(rank)` maps a scan rank to its (column, LUT
// row) pair, which is the only difference between the range scan
// (dims in QueryLuts::order, dim-major LUT) and the pairwise screen
// (explicit dim list, rank-major LUT).
template <typename RowOf>
void ScreenColumns(const QuantizedCodes& codes, int ranks, double base,
                   double abandon_sq, int64_t lo, int64_t hi,
                   std::vector<int32_t>* active,
                   std::vector<double>* scratch, const RowOf& row_of) {
  scratch->assign(static_cast<size_t>(hi - lo), base);
  double* acc = scratch->data();
  int rank = 0;
  // The group width trades compaction overhead against wasted
  // accumulation on rows a compaction would already have dropped.
  constexpr int kGroup = 4;
  while (rank < ranks && !active->empty()) {
    const int group_end = std::min(ranks, rank + kGroup);
    for (; rank < group_end; ++rank) {
      const auto [dim, lut_row] = row_of(rank);
      const uint8_t* column = codes.Column(dim) + lo;
      for (const int32_t r : *active) {
        acc[r] += lut_row[column[r]];
      }
    }
    size_t kept = 0;
    for (const int32_t r : *active) {
      (*active)[kept] = r;
      kept += acc[r] <= abandon_sq ? 1 : 0;
    }
    active->resize(kept);
  }
}

}  // namespace

void FillPairScreenLut(const ScalarQuantizer& quantizer, const double* row,
                       const int32_t* dims, int ranks, double* lut) {
  const int cells = quantizer.cells();
  for (int r = 0; r < ranks; ++r) {
    const int d = dims[r];
    const double* edges = quantizer.bounds(d);
    const double q = row[d];
    double* out = lut + static_cast<int64_t>(r) * cells;
    for (int c = 0; c < cells; ++c) {
      out[c] = CellGapSq(q, edges[c], edges[c + 1]);
    }
  }
}

void PairScreenScan(const QuantizedCodes& codes, const double* lut,
                    const int32_t* dims, int ranks, double abandon_sq,
                    int64_t lo, int64_t hi, std::vector<int32_t>* active,
                    std::vector<double>* scratch) {
  if (active->empty() || ranks == 0) {
    return;
  }
  const int cells = codes.cells();
  ScreenColumns(codes, ranks, /*base=*/0.0, abandon_sq, lo, hi, active,
                scratch, [&](int rank) {
                  return std::pair<int, const double*>(
                      dims[rank], lut + static_cast<int64_t>(rank) * cells);
                });
}

void ColumnLowerBoundScan(const QuantizedCodes& codes, const QueryLuts& luts,
                          double abandon_sq, int64_t lo, int64_t hi,
                          std::vector<int32_t>* active,
                          std::vector<double>* scratch) {
  if (active->empty()) {
    return;
  }
  if (luts.dims == 0) {
    // Degenerate store: the bound is just `base`.
    if (luts.base > abandon_sq) {
      active->clear();
    }
    return;
  }
  // Dims are consumed in the LUT's discrimination order, so the weakly
  // discriminating tail dimensions only touch the rows still in play.
  const double* lb = luts.lb.data();
  ScreenColumns(codes, luts.dims, luts.base, abandon_sq, lo, hi, active,
                scratch, [&](int rank) {
                  const int d = luts.order[static_cast<size_t>(rank)];
                  return std::pair<int, const double*>(
                      d, lb + static_cast<int64_t>(d) * luts.cells);
                });
}

QueryLuts BuildQueryLuts(const ScalarQuantizer& quantizer,
                         const double* query_ri, const double* mult_ri,
                         int n, bool with_upper) {
  QueryLuts luts;
  luts.dims = quantizer.dims();
  luts.cells = quantizer.cells();
  if (luts.dims == 0) {
    return luts;
  }
  SIMQ_CHECK_EQ(luts.dims, 2 * n);
  luts.lb.assign(static_cast<size_t>(luts.dims) * luts.cells, 0.0);
  if (with_upper) {
    luts.ub.assign(static_cast<size_t>(luts.dims) * luts.cells, 0.0);
  }
  // Energy scales for the absolute safety slack: the transformed query's
  // energy plus an upper bound on any encoded row's energy in the
  // transformed space (per-dim widest edge, scaled by the weight).
  double query_energy = 0.0;
  double data_energy = 0.0;

  const auto fill_dim = [&](int d, double q, double w) {
    const double* edges = quantizer.bounds(d);
    double* lb_row = luts.lb.data() + static_cast<size_t>(d) * luts.cells;
    double* ub_row =
        with_upper ? luts.ub.data() + static_cast<size_t>(d) * luts.cells
                   : nullptr;
    for (int c = 0; c < luts.cells; ++c) {
      const double lo = edges[c];
      const double hi = edges[c + 1];
      lb_row[c] = w * CellGapSq(q, lo, hi);
      if (ub_row != nullptr) {
        const double far = std::max(std::abs(q - lo), std::abs(hi - q));
        ub_row[c] = w * (far * far);
      }
    }
    const double widest =
        std::max(std::abs(edges[0]), std::abs(edges[luts.cells]));
    data_energy += w * widest * widest;
    query_energy += w * q * q;
  };

  for (int f = 0; f < n; ++f) {
    const int d0 = 2 * f;
    const int d1 = 2 * f + 1;
    double qr = query_ri[d0];
    double qi = query_ri[d1];
    double w = 1.0;
    if (mult_ri != nullptr) {
      const double mr = mult_ri[d0];
      const double mi = mult_ri[d1];
      w = mr * mr + mi * mi;
      if (w == 0.0) {
        // The kernel computes (0 - q)^2 for this coefficient no matter
        // what the record holds: a constant, kept out of the tables.
        luts.base += qr * qr + qi * qi;
        query_energy += qr * qr + qi * qi;
        continue;
      }
      // q' = q / m, so |x*m - q|^2 == w * |x - q'|^2 per coefficient.
      const double inv = 1.0 / w;
      const double tr = (qr * mr + qi * mi) * inv;
      const double ti = (qi * mr - qr * mi) * inv;
      qr = tr;
      qi = ti;
    }
    fill_dim(d0, qr, w);
    fill_dim(d1, qi, w);
  }
  luts.slack = 1e-9 * (query_energy + data_energy + 1e-300);
  luts.order.resize(static_cast<size_t>(luts.dims));
  std::vector<double> mean_lb(static_cast<size_t>(luts.dims), 0.0);
  for (int d = 0; d < luts.dims; ++d) {
    luts.order[static_cast<size_t>(d)] = d;
    const double* lb_row = luts.lb.data() + static_cast<size_t>(d) * luts.cells;
    double sum = 0.0;
    for (int c = 0; c < luts.cells; ++c) {
      sum += lb_row[c];
    }
    mean_lb[static_cast<size_t>(d)] = sum;
  }
  std::sort(luts.order.begin(), luts.order.end(),
            [&](int32_t a, int32_t b) {
              if (mean_lb[static_cast<size_t>(a)] !=
                  mean_lb[static_cast<size_t>(b)]) {
                return mean_lb[static_cast<size_t>(a)] >
                       mean_lb[static_cast<size_t>(b)];
              }
              return a < b;
            });
  return luts;
}

double EstimateRangeSurvivorFraction(const ScalarQuantizer& quantizer,
                                     const double* query_ri,
                                     const double* mult_ri, int n,
                                     double epsilon) {
  const int dims = quantizer.dims();
  const int cells = quantizer.cells();
  if (dims <= 0 || cells <= 0 || n <= 0) {
    return 1.0;
  }
  double fraction = 1.0;
  for (int d = 0; d < dims; ++d) {
    // Per-dimension target and radius. With a spectral multiplier m the
    // record contributes |m|^2 * |x - q/m|^2 per coefficient, so the
    // cell test runs against q/m with the radius scaled by 1/|m|; a zero
    // multiplier leaves the dimension unconstrained. The radius is the
    // FULL epsilon per dimension -- a row inside the ball is inside
    // every per-dimension slab -- so each factor is itself conservative
    // and only the independence assumption makes the product estimative.
    const int f = d / 2;
    double target = query_ri[d];
    double radius = epsilon;
    if (mult_ri != nullptr) {
      const double mr = mult_ri[2 * (f % n)];
      const double mi = mult_ri[2 * (f % n) + 1];
      const double m_sq = mr * mr + mi * mi;
      if (m_sq == 0.0) {
        continue;
      }
      const double qr = query_ri[2 * f];
      const double qi = query_ri[2 * f + 1];
      // q / m, the component matching this real dimension.
      const double tr = (qr * mr + qi * mi) / m_sq;
      const double ti = (qi * mr - qr * mi) / m_sq;
      target = (d % 2 == 0) ? tr : ti;
      radius = epsilon / std::sqrt(m_sq);
    }
    const double* b = quantizer.bounds(d);
    const double lo = target - radius;
    const double hi = target + radius;
    // Cells whose interval [b[c], b[c+1]] intersects [lo, hi].
    const int c_lo = static_cast<int>(
        std::lower_bound(b + 1, b + 1 + cells, lo) - (b + 1));
    const int c_hi =
        static_cast<int>(std::upper_bound(b, b + cells, hi) - b) - 1;
    const int count =
        std::max(0, std::min(cells - 1, c_hi) - std::min(cells, c_lo) + 1);
    fraction *= static_cast<double>(count) / static_cast<double>(cells);
    if (fraction == 0.0) {
      break;
    }
  }
  return std::min(1.0, std::max(0.0, fraction));
}

}  // namespace simq
