/// Bit-packed scalar-quantized codes of one relation shard, plus the
/// stale-on-mutation cache that owns them (the same contract as the
/// packed R-tree snapshot; see DESIGN.md "Quantized filter").
///
/// A QuantizedCodes object is a compiled, immutable artifact: it trains a
/// ScalarQuantizer over the shard's FeatureStore and encodes every
/// spectrum row into one bit-packed code word of dims * bits bits,
/// stored row-major (structure-of-arrays across records, all codes of a
/// record contiguous). Rows are padded with 8 guard bytes so the decode
/// kernels can read an aligned 64-bit word at any code's byte offset and
/// shift/mask the code out -- no per-code branches, no byte loops.
///
///   code of (row i, dim d) = bits [d*bits, (d+1)*bits) of CodeRow(i)
///
/// With the default 8-bit layout a 128-length series shrinks from 2048
/// bytes of spectrum doubles to 256 bytes of codes; a full-relation code
/// scan therefore streams 8x less memory than the exact columnar scan,
/// and the lower-bound kernels (filter/bound_kernels.h) prune most
/// records after the first few dimensions of that.
///
/// Thread-safety: QuantizedCodes is immutable after construction -- any
/// number of query threads may scan one concurrently. QuantizedCodesCache
/// follows PackedSnapshotCache: mutators call Invalidate() under the
/// owner's exclusive lock, readers call Get() under the shared lock, and
/// the cache's internal mutex serializes only the post-mutation rebuild
/// (also triggered when a query asks for a different bit width).

#ifndef SIMQ_FILTER_QUANTIZED_CODES_H_
#define SIMQ_FILTER_QUANTIZED_CODES_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "core/feature_store.h"
#include "filter/quantizer.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace simq {

class QuantizedCodes {
 public:
  /// Trains the quantizer on `store` and encodes every row. `bits` is
  /// clamped to the supported layouts (ScalarQuantizer::kMinBits..kMaxBits).
  QuantizedCodes(const FeatureStore& store, int bits);

  QuantizedCodes(const QuantizedCodes&) = delete;
  QuantizedCodes& operator=(const QuantizedCodes&) = delete;

  int64_t size() const { return count_; }
  int dims() const { return quantizer_.dims(); }
  int bits() const { return quantizer_.bits(); }
  int cells() const { return quantizer_.cells(); }
  const ScalarQuantizer& quantizer() const { return quantizer_; }

  /// Packed code word of row `i`; row_stride() bytes apart, 8 readable
  /// guard bytes past the last code.
  const uint8_t* CodeRow(int64_t i) const {
    return codes_.data() + i * row_stride_;
  }
  int64_t row_stride() const { return row_stride_; }

  /// Dimension-major mirror of the codes, one unpacked byte per code:
  /// Column(d)[i] == code of (row i, dim d). The range scan runs
  /// dim-at-a-time over these planes with a survivor selection vector
  /// (filter/bound_kernels.h ColumnLowerBoundScan), which keeps one
  /// 2^bits-entry LUT row L1-hot per pass -- the row-major layout above
  /// stays the format of the per-record paths (kNN bounds, join pairs).
  const uint8_t* Column(int d) const {
    return columns_.data() + static_cast<int64_t>(d) * count_;
  }

  /// Dimensions sorted by descending column variance: since the expected
  /// squared difference of two random rows in dimension d is twice the
  /// column variance, this is the static (query-independent) analog of
  /// QueryLuts::order -- the pairwise join screen consumes its leading
  /// entries so the few most discriminating dimensions run first.
  const std::vector<int32_t>& scan_order() const { return scan_order_; }

  /// Decodes one dimension of a packed row. The kernels inline this with
  /// a compile-time `bits`; this runtime form is for tests and encoding.
  static uint32_t CodeAt(const uint8_t* row, int d, int bits) {
    const int64_t bit = static_cast<int64_t>(d) * bits;
    uint64_t word = 0;
    std::memcpy(&word, row + (bit >> 3), sizeof(word));
    return static_cast<uint32_t>(word >> (bit & 7)) &
           ((1u << bits) - 1u);
  }

 private:
  ScalarQuantizer quantizer_;
  int64_t count_ = 0;
  int64_t row_stride_ = 0;  // bytes per packed row, incl. guard padding
  std::vector<uint8_t> codes_;
  std::vector<uint8_t> columns_;  // dims * count, dimension-major
  std::vector<int32_t> scan_order_;  // dims, descending column variance
};

/// Lazily (re)compiled QuantizedCodes of one shard, keyed by bit width.
/// Same discipline as PackedSnapshotCache: Invalidate() under the owner's
/// exclusive lock on every mutation, Get() under the shared lock.
///
/// One entry per bit width, not one entry total: concurrent queries may
/// run at different widths (Database::set_filter_options is a plain
/// setter), and a single-slot cache would destroy the codes one reader
/// is still scanning when another asks for a new width. Per-width
/// entries are only ever destroyed by Invalidate(), which mutators call
/// under exclusive access -- when no reader can exist. The width space
/// is tiny (kMinBits..kMaxBits), so the extra memory is bounded.
class QuantizedCodesCache {
 public:
  void Invalidate() {
    std::lock_guard<std::mutex> lock(mutex_);
    stale_ = true;
  }

  /// Returns the current codes of `store` at `bits` bits per dimension,
  /// rebuilding first if a mutation invalidated them or none were built
  /// yet at this width. The reference stays valid until the next Get()
  /// after an Invalidate() -- i.e. for as long as the caller may hold it
  /// under the owner's shared lock.
  const QuantizedCodes& Get(const FeatureStore& store, int bits) const {
    const QuantizedCodes* codes = TryGet(store, bits, /*can_fail=*/false);
    SIMQ_CHECK(codes != nullptr);
    return *codes;
  }

  /// Read-only peek: the codes at `bits` only if they are already
  /// compiled and fresh; never triggers a compile. The EXPLAIN
  /// cardinality estimator uses this so estimating a plan cannot charge
  /// a query the cost (or the failpoint) of a code build it may never
  /// run.
  const QuantizedCodes* Peek(int bits) const {
    bits = std::clamp(bits, ScalarQuantizer::kMinBits,
                      ScalarQuantizer::kMaxBits);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stale_) {
      return nullptr;
    }
    return codes_[static_cast<size_t>(bits - ScalarQuantizer::kMinBits)]
        .get();
  }

  /// Degradation-aware Get: returns null when the compile fails (the
  /// "filter.compile" failpoint). The caller falls back to the exact scan
  /// path. Reusing already-compiled codes never fails -- only compiles
  /// evaluate the failpoint.
  const QuantizedCodes* TryGet(const FeatureStore& store, int bits,
                               bool can_fail = true) const {
    bits = std::clamp(bits, ScalarQuantizer::kMinBits,
                      ScalarQuantizer::kMaxBits);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stale_) {
      for (std::unique_ptr<QuantizedCodes>& slot : codes_) {
        slot.reset();
      }
      stale_ = false;
    }
    std::unique_ptr<QuantizedCodes>& slot =
        codes_[static_cast<size_t>(bits - ScalarQuantizer::kMinBits)];
    if (slot == nullptr) {
      if (can_fail && SIMQ_FAILPOINT_FIRED("filter.compile")) {
        return nullptr;
      }
      slot = std::make_unique<QuantizedCodes>(store, bits);
    }
    return slot.get();
  }

  /// Installs externally compiled codes at `bits`, dropping every other
  /// width's entry, and marks the cache fresh. Recompaction publish uses
  /// this to swap in the new generation's codes; the caller must hold the
  /// owner's exclusive lock (same requirement as Invalidate), so no
  /// reader can still be scanning the entries being dropped. Passing null
  /// leaves the cache empty-but-fresh: the next Get at any width compiles
  /// from the store as usual.
  void Install(int bits, std::unique_ptr<QuantizedCodes> codes) {
    bits = std::clamp(bits, ScalarQuantizer::kMinBits,
                      ScalarQuantizer::kMaxBits);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::unique_ptr<QuantizedCodes>& slot : codes_) {
      slot.reset();
    }
    codes_[static_cast<size_t>(bits - ScalarQuantizer::kMinBits)] =
        std::move(codes);
    stale_ = false;
  }

 private:
  static constexpr size_t kWidths =
      ScalarQuantizer::kMaxBits - ScalarQuantizer::kMinBits + 1;
  mutable std::mutex mutex_;
  mutable std::array<std::unique_ptr<QuantizedCodes>, kWidths> codes_;
  mutable bool stale_ = true;
};

}  // namespace simq

#endif  // SIMQ_FILTER_QUANTIZED_CODES_H_
