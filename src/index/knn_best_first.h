/// Shared best-first k-nearest-neighbor driver for both index engines.
///
/// The parity guarantees of the packed engine (identical results AND
/// identical node-access counts vs the pointer tree) depend on both
/// engines running exactly this control flow, so it exists once and the
/// engines supply only node expansion:
///
///  * Pops from the MINDIST priority queue arrive in nondecreasing
///    priority (children bound no tighter than their parent, exact
///    distances no tighter than their lower bound), so resolved entries
///    stream out sorted by distance and results[k-1] is the running k-th
///    distance.
///  * The loop keeps draining while the queue top is <= that distance, so
///    every boundary tie is collected; the final (distance, id) sort and
///    cut to k make tie-breaking deterministic (smaller ids win).
///  * A node is therefore popped iff its MINDIST is <= the final k-th
///    distance -- a set independent of heap tie order and of the engine,
///    which is what keeps the node-access counters equal.
///
/// `expand(node, push_node, push_entry)` must count the node access and
/// push every child subtree (lower bound, child handle) or leaf entry
/// (lower bound, data id); `exact_distance(id)` upgrades an entry's bound
/// when it first surfaces.
///
/// `initial_bound` supports cross-shard pruning (core/database.cc's
/// scatter-gather kNN): the driver behaves as if k results at that
/// distance already exist, so subtrees with MINDIST strictly above it are
/// never expanded. Candidates exactly AT the bound are still drained --
/// ties at the global k-th distance may be resolved toward a smaller id
/// in a later shard, so discarding them would break the deterministic
/// tie contract. +infinity (the default) disables the cap. Thread-safe:
/// the driver touches no shared state beyond what `expand` does.

#ifndef SIMQ_INDEX_KNN_BEST_FIRST_H_
#define SIMQ_INDEX_KNN_BEST_FIRST_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace simq {
namespace internal {

template <typename NodeHandle, typename ExpandFn, typename ExactFn>
std::vector<std::pair<int64_t, double>> BestFirstNearestNeighbors(
    NodeHandle root, int k, size_t queue_reserve, ExpandFn&& expand,
    ExactFn&& exact_distance,
    double initial_bound = std::numeric_limits<double>::infinity()) {
  SIMQ_CHECK_GT(k, 0);
  struct Item {
    double priority;
    bool is_node;
    NodeHandle node;  // valid for node items
    int64_t id;       // valid for entry items
    bool resolved;    // entry with exact distance computed
  };
  const auto cmp = [](const Item& a, const Item& b) {
    return a.priority > b.priority;
  };
  std::vector<Item> storage;
  storage.reserve(queue_reserve);
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> queue(
      cmp, std::move(storage));
  queue.push(Item{0.0, true, root, -1, false});

  std::vector<std::pair<int64_t, double>> results;
  results.reserve(static_cast<size_t>(k) + 8);
  const auto push_node = [&](double priority, NodeHandle child) {
    queue.push(Item{priority, true, child, -1, false});
  };
  const auto push_entry = [&](double priority, int64_t id) {
    queue.push(Item{priority, false, NodeHandle{}, id, false});
  };
  while (!queue.empty()) {
    const Item item = queue.top();
    if (static_cast<int>(results.size()) >= k) {
      const double kth = results[static_cast<size_t>(k - 1)].second;
      // Stop past the k-th distance. Ties exactly at it are drained so
      // the cut is id-deterministic -- except at +infinity (callers use
      // it as an "excluded" sentinel and discard such results; draining
      // would pull every excluded entry through the queue).
      if (item.priority > kth ||
          (item.priority == kth &&
           kth == std::numeric_limits<double>::infinity())) {
        break;
      }
    } else if (item.priority > initial_bound) {
      // Fewer than k local results, but the caller already holds k
      // results at `initial_bound` or better (cross-shard pruning):
      // nothing past the bound can enter the merged top k. Ties AT the
      // bound are still drained -- see the file comment. Note the
      // invariant this break maintains: every resolved result was popped
      // while its priority passed the active cut, so results[k-1].second
      // can never exceed initial_bound -- once k results exist, the
      // branch above is automatically at least as tight as the bound.
      break;
    }
    queue.pop();
    if (item.is_node) {
      expand(item.node, push_node, push_entry);
    } else if (!item.resolved) {
      // First pop of an entry: upgrade the feature-space bound to the
      // exact distance and re-queue; when it surfaces again it is final.
      queue.push(
          Item{exact_distance(item.id), false, NodeHandle{}, item.id, true});
    } else {
      results.emplace_back(item.id, item.priority);
    }
  }
  std::sort(results.begin(), results.end(),
            [](const std::pair<int64_t, double>& a,
               const std::pair<int64_t, double>& b) {
              if (a.second != b.second) {
                return a.second < b.second;
              }
              return a.first < b.first;
            });
  if (static_cast<int>(results.size()) > k) {
    results.resize(static_cast<size_t>(k));
  }
  return results;
}

}  // namespace internal
}  // namespace simq

#endif  // SIMQ_INDEX_KNN_BEST_FIRST_H_
