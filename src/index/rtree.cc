#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace simq {
namespace {

// Exact bound equality; valid because MBRs are min/max combinations of the
// original coordinates, which are reproducible exactly in IEEE arithmetic.
bool RectEquals(const Rect& a, const Rect& b) {
  if (a.dims() != b.dims()) {
    return false;
  }
  for (int d = 0; d < a.dims(); ++d) {
    if (a.lo(d) != b.lo(d) || a.hi(d) != b.hi(d)) {
      return false;
    }
  }
  return true;
}

}  // namespace

RTree::RTree(int dims) : RTree(dims, Options()) {}

RTree::RTree(int dims, Options options) : dims_(dims), options_(options) {
  SIMQ_CHECK_GT(dims_, 0);
  SIMQ_CHECK_GE(options_.min_entries, 2);
  SIMQ_CHECK_LE(options_.min_entries, options_.max_entries / 2);
  SIMQ_CHECK(options_.reinsert_fraction > 0.0 &&
             options_.reinsert_fraction < 1.0);
  root_ = std::make_unique<Node>();
}

Rect RTree::NodeMbr(const Node* node) const {
  Rect mbr = Rect::Empty(dims_);
  for (const Rect& rect : node->rects) {
    mbr.ExpandToInclude(rect);
  }
  return mbr;
}

Rect RTree::bounding_box() const { return NodeMbr(root_.get()); }

void RTree::InsertPoint(const Point& point, int64_t id) {
  Insert(Rect::FromPoint(point), id);
}

void RTree::Insert(const Rect& box, int64_t id) {
  SIMQ_CHECK_EQ(box.dims(), dims_);
  std::vector<bool> reinsert_used(static_cast<size_t>(height()) + 1, false);
  PendingEntry entry;
  entry.rect = box;
  entry.id = id;
  InsertAtLevel(std::move(entry), /*level=*/0, &reinsert_used);
  ++size_;
}

RTree::Node* RTree::ChooseSubtree(Node* node, const Rect& rect) const {
  SIMQ_DCHECK(!node->is_leaf);
  const int n = node->num_entries();
  SIMQ_DCHECK(n > 0);
  int best = 0;

  if (node->level == 1) {
    // Children are leaves: minimize overlap enlargement ([BKSS90] CS2),
    // ties broken by area enlargement, then by area.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      const Rect& candidate = node->rects[static_cast<size_t>(i)];
      const Rect enlarged = Rect::Union(candidate, rect);
      double overlap_delta = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) {
          continue;
        }
        const Rect& other = node->rects[static_cast<size_t>(j)];
        overlap_delta +=
            enlarged.OverlapArea(other) - candidate.OverlapArea(other);
      }
      const double enlarge = candidate.Enlargement(rect);
      const double area = candidate.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best = i;
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
  } else {
    // Minimize area enlargement, ties broken by area.
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      const Rect& candidate = node->rects[static_cast<size_t>(i)];
      const double enlarge = candidate.Enlargement(rect);
      const double area = candidate.Area();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = i;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
  }
  return node->children[static_cast<size_t>(best)].get();
}

void RTree::AddEntryToNode(Node* node, PendingEntry entry) {
  node->rects.push_back(entry.rect);
  if (entry.child != nullptr) {
    SIMQ_DCHECK(!node->is_leaf);
    entry.child->parent = node;
    node->children.push_back(std::move(entry.child));
  } else {
    SIMQ_DCHECK(node->is_leaf);
    node->ids.push_back(entry.id);
  }
}

void RTree::UpdateMbrsUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    size_t index = 0;
    while (index < parent->children.size() &&
           parent->children[index].get() != node) {
      ++index;
    }
    SIMQ_CHECK_LT(index, parent->children.size());
    parent->rects[index] = NodeMbr(node);
    node = parent;
  }
}

void RTree::InsertAtLevel(PendingEntry entry, int level,
                          std::vector<bool>* reinsert_used) {
  SIMQ_CHECK_LE(level, root_->level);
  Node* node = root_.get();
  while (node->level > level) {
    node = ChooseSubtree(node, entry.rect);
  }
  AddEntryToNode(node, std::move(entry));
  UpdateMbrsUpward(node);
  if (node->num_entries() > options_.max_entries) {
    HandleOverflow(node, reinsert_used);
  }
}

void RTree::HandleOverflow(Node* node, std::vector<bool>* reinsert_used) {
  const size_t level = static_cast<size_t>(node->level);
  if (reinsert_used->size() <= level) {
    reinsert_used->resize(level + 1, false);
  }
  if (node != root_.get() && options_.forced_reinsert &&
      !(*reinsert_used)[level]) {
    (*reinsert_used)[level] = true;
    ReinsertEntries(node, reinsert_used);
  } else {
    SplitNode(node, reinsert_used);
  }
}

void RTree::ReinsertEntries(Node* node, std::vector<bool>* reinsert_used) {
  const int n = node->num_entries();
  const int p = std::max(
      1, static_cast<int>(std::lround(options_.reinsert_fraction * n)));

  const Point center = NodeMbr(node).Center();
  std::vector<std::pair<double, int>> by_distance(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Point entry_center = node->rects[static_cast<size_t>(i)].Center();
    double dist_sq = 0.0;
    for (size_t d = 0; d < center.size(); ++d) {
      const double diff = entry_center[d] - center[d];
      dist_sq += diff * diff;
    }
    by_distance[static_cast<size_t>(i)] = {dist_sq, i};
  }
  // Furthest entries are removed; reinsertion starts with the closest of
  // the removed set ("close reinsert", the [BKSS90] recommendation).
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<bool> remove(static_cast<size_t>(n), false);
  std::vector<int> removal_order;
  for (int i = 0; i < p; ++i) {
    remove[static_cast<size_t>(by_distance[static_cast<size_t>(i)].second)] =
        true;
    removal_order.push_back(by_distance[static_cast<size_t>(i)].second);
  }
  std::reverse(removal_order.begin(), removal_order.end());

  std::vector<PendingEntry> pulled(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pulled[static_cast<size_t>(i)].rect = node->rects[static_cast<size_t>(i)];
    if (node->is_leaf) {
      pulled[static_cast<size_t>(i)].id = node->ids[static_cast<size_t>(i)];
    } else {
      pulled[static_cast<size_t>(i)].child =
          std::move(node->children[static_cast<size_t>(i)]);
    }
  }
  node->rects.clear();
  node->ids.clear();
  node->children.clear();
  std::vector<PendingEntry> to_reinsert;
  for (int i = 0; i < n; ++i) {
    if (!remove[static_cast<size_t>(i)]) {
      AddEntryToNode(node, std::move(pulled[static_cast<size_t>(i)]));
    }
  }
  UpdateMbrsUpward(node);

  const int level = node->level;
  for (int index : removal_order) {
    InsertAtLevel(std::move(pulled[static_cast<size_t>(index)]), level,
                  reinsert_used);
  }
}

void RTree::SplitNode(Node* node, std::vector<bool>* reinsert_used) {
  const int n = node->num_entries();
  const int min_fill = options_.min_entries;
  SIMQ_CHECK_GE(n, 2 * min_fill);

  std::vector<PendingEntry> entries(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries[static_cast<size_t>(i)].rect = node->rects[static_cast<size_t>(i)];
    if (node->is_leaf) {
      entries[static_cast<size_t>(i)].id = node->ids[static_cast<size_t>(i)];
    } else {
      entries[static_cast<size_t>(i)].child =
          std::move(node->children[static_cast<size_t>(i)]);
    }
  }
  node->rects.clear();
  node->ids.clear();
  node->children.clear();

  // ChooseSplitAxis: minimize the summed margins over all candidate
  // distributions; two sort orders (by lower then by upper value) per axis.
  std::vector<int> order(static_cast<size_t>(n));
  auto evaluate_axis = [&](int axis, bool by_upper,
                           std::vector<int>* out_order) -> double {
    for (int i = 0; i < n; ++i) {
      (*out_order)[static_cast<size_t>(i)] = i;
    }
    std::sort(out_order->begin(), out_order->end(), [&](int a, int b) {
      const Rect& ra = entries[static_cast<size_t>(a)].rect;
      const Rect& rb = entries[static_cast<size_t>(b)].rect;
      if (by_upper) {
        if (ra.hi(axis) != rb.hi(axis)) {
          return ra.hi(axis) < rb.hi(axis);
        }
        return ra.lo(axis) < rb.lo(axis);
      }
      if (ra.lo(axis) != rb.lo(axis)) {
        return ra.lo(axis) < rb.lo(axis);
      }
      return ra.hi(axis) < rb.hi(axis);
    });
    // Prefix/suffix bounding boxes for O(n) margin sums.
    std::vector<Rect> prefix(static_cast<size_t>(n), Rect::Empty(dims_));
    std::vector<Rect> suffix(static_cast<size_t>(n), Rect::Empty(dims_));
    Rect acc = Rect::Empty(dims_);
    for (int i = 0; i < n; ++i) {
      acc.ExpandToInclude(
          entries[static_cast<size_t>((*out_order)[static_cast<size_t>(i)])]
              .rect);
      prefix[static_cast<size_t>(i)] = acc;
    }
    acc = Rect::Empty(dims_);
    for (int i = n - 1; i >= 0; --i) {
      acc.ExpandToInclude(
          entries[static_cast<size_t>((*out_order)[static_cast<size_t>(i)])]
              .rect);
      suffix[static_cast<size_t>(i)] = acc;
    }
    double margin_sum = 0.0;
    for (int k = min_fill; k <= n - min_fill; ++k) {
      margin_sum += prefix[static_cast<size_t>(k - 1)].Margin() +
                    suffix[static_cast<size_t>(k)].Margin();
    }
    return margin_sum;
  };

  int best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < dims_; ++axis) {
    std::vector<int> scratch(static_cast<size_t>(n));
    const double margin = evaluate_axis(axis, /*by_upper=*/false, &scratch) +
                          evaluate_axis(axis, /*by_upper=*/true, &scratch);
    if (margin < best_margin) {
      best_margin = margin;
      best_axis = axis;
    }
  }

  // ChooseSplitIndex: on the chosen axis, pick the distribution with the
  // least overlap between the two groups; ties broken by total area.
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  std::vector<int> best_order;
  int best_split = min_fill;
  for (const bool by_upper : {false, true}) {
    evaluate_axis(best_axis, by_upper, &order);
    std::vector<Rect> prefix(static_cast<size_t>(n), Rect::Empty(dims_));
    std::vector<Rect> suffix(static_cast<size_t>(n), Rect::Empty(dims_));
    Rect acc = Rect::Empty(dims_);
    for (int i = 0; i < n; ++i) {
      acc.ExpandToInclude(
          entries[static_cast<size_t>(order[static_cast<size_t>(i)])].rect);
      prefix[static_cast<size_t>(i)] = acc;
    }
    acc = Rect::Empty(dims_);
    for (int i = n - 1; i >= 0; --i) {
      acc.ExpandToInclude(
          entries[static_cast<size_t>(order[static_cast<size_t>(i)])].rect);
      suffix[static_cast<size_t>(i)] = acc;
    }
    for (int k = min_fill; k <= n - min_fill; ++k) {
      const Rect& bb1 = prefix[static_cast<size_t>(k - 1)];
      const Rect& bb2 = suffix[static_cast<size_t>(k)];
      const double overlap = bb1.OverlapArea(bb2);
      const double area = bb1.Area() + bb2.Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = order;
        best_split = k;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  sibling->level = node->level;
  ++node_count_;
  for (int i = 0; i < n; ++i) {
    PendingEntry& entry =
        entries[static_cast<size_t>(best_order[static_cast<size_t>(i)])];
    AddEntryToNode(i < best_split ? node : sibling.get(), std::move(entry));
  }

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->level = node->level + 1;
    ++node_count_;
    PendingEntry left;
    left.rect = NodeMbr(root_.get());
    left.child = std::move(root_);
    PendingEntry right;
    right.rect = NodeMbr(sibling.get());
    right.child = std::move(sibling);
    AddEntryToNode(new_root.get(), std::move(left));
    AddEntryToNode(new_root.get(), std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  PendingEntry sibling_entry;
  sibling_entry.rect = NodeMbr(sibling.get());
  sibling_entry.child = std::move(sibling);
  AddEntryToNode(parent, std::move(sibling_entry));
  UpdateMbrsUpward(node);
  if (parent->num_entries() > options_.max_entries) {
    HandleOverflow(parent, reinsert_used);
  }
}

bool RTree::Delete(const Rect& box, int64_t id) {
  SIMQ_CHECK_EQ(box.dims(), dims_);

  // FindLeaf: depth-first search through subtrees whose MBR contains box.
  Node* found_leaf = nullptr;
  int found_index = -1;
  std::function<bool(Node*)> find = [&](Node* node) {
    if (node->is_leaf) {
      for (int i = 0; i < node->num_entries(); ++i) {
        if (node->ids[static_cast<size_t>(i)] == id &&
            RectEquals(node->rects[static_cast<size_t>(i)], box)) {
          found_leaf = node;
          found_index = i;
          return true;
        }
      }
      return false;
    }
    for (int i = 0; i < node->num_entries(); ++i) {
      if (node->rects[static_cast<size_t>(i)].Contains(box) &&
          find(node->children[static_cast<size_t>(i)].get())) {
        return true;
      }
    }
    return false;
  };
  if (!find(root_.get())) {
    return false;
  }

  found_leaf->rects.erase(found_leaf->rects.begin() + found_index);
  found_leaf->ids.erase(found_leaf->ids.begin() + found_index);
  --size_;

  // CondenseTree: drop underfull nodes, stash their entries, fix MBRs.
  std::vector<std::pair<PendingEntry, int>> orphans;  // entry, target level
  Node* node = found_leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->num_entries() < options_.min_entries) {
      const int level = node->level;
      for (int i = 0; i < node->num_entries(); ++i) {
        PendingEntry entry;
        entry.rect = node->rects[static_cast<size_t>(i)];
        if (node->is_leaf) {
          entry.id = node->ids[static_cast<size_t>(i)];
        } else {
          entry.child = std::move(node->children[static_cast<size_t>(i)]);
        }
        orphans.emplace_back(std::move(entry), level);
      }
      size_t index = 0;
      while (index < parent->children.size() &&
             parent->children[index].get() != node) {
        ++index;
      }
      SIMQ_CHECK_LT(index, parent->children.size());
      parent->rects.erase(parent->rects.begin() +
                          static_cast<int64_t>(index));
      parent->children.erase(parent->children.begin() +
                             static_cast<int64_t>(index));
      --node_count_;
    } else {
      UpdateMbrsUpward(node);
    }
    node = parent;
  }

  std::vector<bool> reinsert_used(static_cast<size_t>(height()) + 1, false);
  for (auto& [entry, level] : orphans) {
    InsertAtLevel(std::move(entry), level, &reinsert_used);
  }

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf && root_->num_entries() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children[0]);
    child->parent = nullptr;
    root_ = std::move(child);
    --node_count_;
  }
  if (!root_->is_leaf && root_->num_entries() == 0) {
    root_ = std::make_unique<Node>();
    node_count_ = 1;
  }
  return true;
}

void RTree::BulkLoad(std::vector<std::pair<Rect, int64_t>> input) {
  SIMQ_CHECK_EQ(size_, 0) << "BulkLoad requires an empty tree";
  if (input.empty()) {
    return;
  }
  for (const auto& [rect, id] : input) {
    SIMQ_CHECK_EQ(rect.dims(), dims_);
  }

  std::vector<PendingEntry> entries(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    entries[i].rect = input[i].first;
    entries[i].id = input[i].second;
  }
  size_ = static_cast<int64_t>(input.size());

  // Sort-Tile-Recursive partitioning of entries into groups of at most
  // `capacity`, slicing one dimension at a time by MBR center. Partitions
  // are always near-even, which keeps every group at or above ceil(cap/2)
  // >= min_entries, so bulk-loaded trees satisfy the fill invariants.
  const int capacity = options_.max_entries;
  std::vector<std::vector<PendingEntry>> groups;
  std::function<void(std::vector<PendingEntry>, int)> tile =
      [&](std::vector<PendingEntry> items, int dim) {
        const int count = static_cast<int>(items.size());
        if (count <= capacity) {
          groups.push_back(std::move(items));
          return;
        }
        std::sort(items.begin(), items.end(),
                  [dim](const PendingEntry& a, const PendingEntry& b) {
                    return a.rect.lo(dim) + a.rect.hi(dim) <
                           b.rect.lo(dim) + b.rect.hi(dim);
                  });
        const int num_groups = (count + capacity - 1) / capacity;
        auto partition_evenly = [&](int parts, auto&& consume) {
          for (int p = 0; p < parts; ++p) {
            const int begin = static_cast<int>(
                static_cast<int64_t>(count) * p / parts);
            const int end = static_cast<int>(
                static_cast<int64_t>(count) * (p + 1) / parts);
            if (end > begin) {
              consume(std::vector<PendingEntry>(
                  std::make_move_iterator(items.begin() + begin),
                  std::make_move_iterator(items.begin() + end)));
            }
          }
        };
        if (dim >= dims_ - 1) {
          partition_evenly(num_groups, [&](std::vector<PendingEntry> group) {
            groups.push_back(std::move(group));
          });
          return;
        }
        const int slabs = std::max(
            1, static_cast<int>(std::ceil(std::pow(
                   static_cast<double>(num_groups),
                   1.0 / static_cast<double>(dims_ - dim)))));
        partition_evenly(slabs, [&](std::vector<PendingEntry> slab) {
          tile(std::move(slab), dim + 1);
        });
      };

  int level = 0;
  node_count_ = 0;
  while (true) {
    groups.clear();
    tile(std::move(entries), 0);
    std::vector<std::unique_ptr<Node>> nodes;
    nodes.reserve(groups.size());
    for (auto& group : groups) {
      auto node = std::make_unique<Node>();
      node->is_leaf = (level == 0);
      node->level = level;
      ++node_count_;
      for (PendingEntry& entry : group) {
        AddEntryToNode(node.get(), std::move(entry));
      }
      nodes.push_back(std::move(node));
    }
    if (nodes.size() == 1) {
      root_ = std::move(nodes[0]);
      return;
    }
    entries.clear();
    entries.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      entries[i].rect = NodeMbr(nodes[i].get());
      entries[i].child = std::move(nodes[i]);
    }
    ++level;
  }
}

void RTree::Search(const SearchRegion& region,
                   const std::vector<DimAffine>* affines,
                   std::vector<int64_t>* results) const {
  SIMQ_CHECK_EQ(region.dims(), dims_);
  if (results->capacity() == results->size()) {
    results->reserve(results->size() +
                     static_cast<size_t>(std::min<int64_t>(size_, 64)) + 1);
  }
  SearchNode(root_.get(), region, affines, results);
}

void RTree::SearchNode(const Node* node, const SearchRegion& region,
                       const std::vector<DimAffine>* affines,
                       std::vector<int64_t>* results) const {
  CountNodeAccess();
  if (node->is_leaf) {
    // Leaf entries are points (degenerate rects): test exact membership of
    // the transformed point. One scratch buffer serves the whole node.
    Point point(static_cast<size_t>(dims_));
    for (int i = 0; i < node->num_entries(); ++i) {
      const Rect& rect = node->rects[static_cast<size_t>(i)];
      for (int d = 0; d < dims_; ++d) {
        point[static_cast<size_t>(d)] = rect.lo(d);
      }
      const bool hit = affines == nullptr
                           ? region.ContainsPoint(point)
                           : region.ContainsTransformedPoint(point, *affines);
      if (hit) {
        results->push_back(node->ids[static_cast<size_t>(i)]);
      }
    }
    return;
  }
  for (int i = 0; i < node->num_entries(); ++i) {
    const Rect& rect = node->rects[static_cast<size_t>(i)];
    const bool overlap = affines == nullptr
                             ? region.IntersectsRect(rect)
                             : region.IntersectsTransformedRect(rect, *affines);
    if (overlap) {
      SearchNode(node->children[static_cast<size_t>(i)].get(), region, affines,
                 results);
    }
  }
}

bool RTree::CheckNode(const Node* node, bool is_root,
                      int64_t* leaf_entries) const {
  const int n = node->num_entries();
  if (node->is_leaf) {
    if (node->level != 0 || !node->children.empty() ||
        static_cast<int>(node->ids.size()) != n) {
      std::cerr << "rtree invariant: malformed leaf node\n";
      return false;
    }
    *leaf_entries += n;
  } else {
    if (static_cast<int>(node->children.size()) != n || !node->ids.empty()) {
      std::cerr << "rtree invariant: malformed internal node\n";
      return false;
    }
  }
  if (!is_root && (n < options_.min_entries || n > options_.max_entries)) {
    std::cerr << "rtree invariant: fill factor violated (" << n << ")\n";
    return false;
  }
  if (is_root && n > options_.max_entries) {
    std::cerr << "rtree invariant: root overflow\n";
    return false;
  }
  if (node->is_leaf) {
    return true;
  }
  for (int i = 0; i < n; ++i) {
    const Node* child = node->children[static_cast<size_t>(i)].get();
    if (child->parent != node) {
      std::cerr << "rtree invariant: bad parent link\n";
      return false;
    }
    if (child->level != node->level - 1) {
      std::cerr << "rtree invariant: bad level\n";
      return false;
    }
    const Rect mbr = NodeMbr(child);
    if (!node->rects[static_cast<size_t>(i)].Contains(mbr) ||
        !mbr.Contains(node->rects[static_cast<size_t>(i)])) {
      std::cerr << "rtree invariant: stale MBR at level " << node->level
                << "\n";
      return false;
    }
    if (!CheckNode(child, /*is_root=*/false, leaf_entries)) {
      return false;
    }
  }
  return true;
}

bool RTree::CheckInvariants() const {
  int64_t leaf_entries = 0;
  if (!CheckNode(root_.get(), /*is_root=*/true, &leaf_entries)) {
    return false;
  }
  if (leaf_entries != size_) {
    std::cerr << "rtree invariant: size mismatch (" << leaf_entries << " vs "
              << size_ << ")\n";
    return false;
  }
  return true;
}

}  // namespace simq
