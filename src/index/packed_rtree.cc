#include "index/packed_rtree.h"

#include <cmath>
#include <unordered_map>

#include "geom/circular_interval.h"
#include "index/rtree.h"

namespace simq {
namespace {

// Per-query compiled form of one SearchRegion dimension, mirroring the
// branch structure of SearchRegion::Intersects*/Contains* exactly so the
// packed engine accepts and rejects the same entries bit-for-bit.
//
// The plan drops dimensions that always pass (unconstrained linear bounds,
// full-circle arcs) and orders linear dimensions before circular ones:
// per-dimension accept/reject decisions are independent, so the final
// entry mask -- and with it results and node accesses -- is unchanged,
// but the fmod-heavy arc tests only run for entries that survived every
// (vectorized) linear plane.
struct DimPlan {
  int dim = 0;
  bool circular = false;
  bool identity = false;    // scale == 1, offset == 0: skip the transform
  bool rotate = false;      // rotate node arcs by `offset` (angle action)
  bool add_offset = false;  // leaf angles tested as Normalize(p + offset)
  double qlo = 0.0;
  double qhi = 0.0;
  double scale = 1.0;
  double offset = 0.0;
  const CircularInterval* arc = nullptr;
  // Hoisted arc fields for the fast path: the raw arc start (what
  // CircularInterval::Contains subtracts), its extent, and the start as
  // data.Contains(q.lo) would normalize it.
  double arc_lo = 0.0;
  double arc_extent = 0.0;
  double arc_lo_norm = 0.0;
};

// Exact fallbacks replicating the pointer engine's arc chain verbatim.
inline bool ExactNodeArcPass(const DimPlan& plan, double lo, double hi) {
  CircularInterval data_arc = CircularInterval::FromBounds(lo, hi);
  if (plan.rotate) {
    data_arc = data_arc.Rotated(plan.offset);
  }
  return plan.arc->Overlaps(data_arc);
}

inline bool ExactLeafArcPass(const DimPlan& plan, double p) {
  const double angle =
      plan.add_offset ? NormalizeAngle(p + plan.offset) : p;
  return plan.arc->Contains(angle);
}

constexpr double kPlanInf = std::numeric_limits<double>::infinity();
constexpr double kTwoPi = 2.0 * M_PI;

// Fast-tier NormalizeAngle that tracks exactness: returns the same value
// as NormalizeAngle(x) for x in [-3*pi, 3*pi) (the tiers use the same
// formulas), and clears *ok when either x falls outside those tiers or
// the result is not strictly inside [-pi, pi) (a rounding edge where a
// subsequent NormalizeAngle pass-through would not be the identity). With
// *ok still set, downstream arc arithmetic is bit-identical to the
// CircularInterval implementation; otherwise the caller must take the
// exact scalar path.
inline double FastNormalize(double x, bool* ok) {
  if (x >= -M_PI && x < M_PI) {
    return x;
  }
  if (x >= M_PI && x < 3.0 * M_PI) {
    const double r = x - kTwoPi;
    *ok = *ok && r >= -M_PI && r < M_PI;
    return r;
  }
  if (x < -M_PI && x >= -3.0 * M_PI) {
    const double r = x + kTwoPi;
    *ok = *ok && r >= -M_PI && r < M_PI;
    return r;
  }
  *ok = false;
  return x;
}

// Per-thread traversal scratch: packed searches run concurrently from the
// join's probe threads, so reusable buffers must be thread-local.
struct SearchScratch {
  std::vector<DimPlan> plans;
  std::vector<int32_t> stack;
};

SearchScratch& LocalScratch() {
  static thread_local SearchScratch scratch;
  return scratch;
}

}  // namespace

PackedRTree::PackedRTree(const RTree& tree) {
  dims_ = tree.dims();
  size_ = tree.size();
  height_ = tree.height();

  // Breadth-first node order: the tree is height-balanced, so BFS groups
  // nodes by level (root first, all leaves contiguous at the end).
  std::vector<const RTree::Node*> nodes;
  nodes.push_back(tree.root());
  for (size_t head = 0; head < nodes.size(); ++head) {
    for (const auto& child : nodes[head]->children) {
      nodes.push_back(child.get());
    }
  }
  const int32_t node_count = static_cast<int32_t>(nodes.size());
  std::unordered_map<const RTree::Node*, int32_t> index_of;
  index_of.reserve(nodes.size());
  for (int32_t i = 0; i < node_count; ++i) {
    index_of[nodes[static_cast<size_t>(i)]] = i;
  }

  int32_t cap = 1;
  first_leaf_ = node_count;
  for (int32_t i = 0; i < node_count; ++i) {
    const RTree::Node* node = nodes[static_cast<size_t>(i)];
    cap = std::max(cap, node->num_entries());
    if (node->is_leaf && i < first_leaf_) {
      first_leaf_ = i;
    }
  }
  SIMQ_CHECK_LE(cap, kMaxFanout);
  cap_ = cap;
  coord_stride_ = 2 * static_cast<int64_t>(dims_) * cap_;

  coords_.assign(static_cast<size_t>(node_count * coord_stride_), 0.0);
  kids_.assign(static_cast<size_t>(node_count) * static_cast<size_t>(cap_),
               0);
  counts_.resize(static_cast<size_t>(node_count));
  levels_.resize(static_cast<size_t>(node_count));
  mbrs_.resize(static_cast<size_t>(node_count) * 2 *
               static_cast<size_t>(dims_));
  sweep_order_.assign(static_cast<size_t>(node_count) *
                          static_cast<size_t>(dims_) *
                          static_cast<size_t>(cap_),
                      0);

  std::vector<int> order(static_cast<size_t>(cap_));
  for (int32_t i = 0; i < node_count; ++i) {
    const RTree::Node* node = nodes[static_cast<size_t>(i)];
    const int count = node->num_entries();
    counts_[static_cast<size_t>(i)] = count;
    levels_[static_cast<size_t>(i)] = node->level;

    double* lo_base = coords_.data() + i * coord_stride_;
    double* hi_base = lo_base + static_cast<int64_t>(dims_) * cap_;
    for (int e = 0; e < count; ++e) {
      const Rect& rect = node->rects[static_cast<size_t>(e)];
      for (int d = 0; d < dims_; ++d) {
        lo_base[d * cap_ + e] = rect.lo(d);
        hi_base[d * cap_ + e] = rect.hi(d);
      }
    }

    int32_t* ids = kids_.data() + static_cast<int64_t>(i) * cap_;
    if (node->is_leaf) {
      for (int e = 0; e < count; ++e) {
        const int64_t id = node->ids[static_cast<size_t>(e)];
        SIMQ_CHECK(id >= std::numeric_limits<int32_t>::min() &&
                   id <= std::numeric_limits<int32_t>::max())
            << "data id does not fit the packed int32 layout";
        ids[e] = static_cast<int32_t>(id);
      }
    } else {
      for (int e = 0; e < count; ++e) {
        ids[e] = index_of.at(node->children[static_cast<size_t>(e)].get());
      }
    }

    // Exact MBR, same accumulation as RTree::NodeMbr (an empty node keeps
    // the +inf/-inf identity bounds).
    Rect mbr = Rect::Empty(dims_);
    for (const Rect& rect : node->rects) {
      mbr.ExpandToInclude(rect);
    }
    double* mbr_row = mbrs_.data() + static_cast<int64_t>(i) * 2 * dims_;
    for (int d = 0; d < dims_; ++d) {
      mbr_row[d] = mbr.lo(d);
      mbr_row[dims_ + d] = mbr.hi(d);
    }

    // Sweep orders: entries ascending by lo per dimension, ties broken by
    // entry index so snapshots of equal trees are identical.
    uint8_t* sweep =
        sweep_order_.data() +
        (static_cast<int64_t>(i) * dims_) * static_cast<int64_t>(cap_);
    for (int d = 0; d < dims_; ++d) {
      for (int e = 0; e < count; ++e) {
        order[static_cast<size_t>(e)] = e;
      }
      const double* lo_plane = lo_base + static_cast<int64_t>(d) * cap_;
      std::sort(order.begin(), order.begin() + count, [&](int a, int b) {
        if (lo_plane[a] != lo_plane[b]) {
          return lo_plane[a] < lo_plane[b];
        }
        return a < b;
      });
      for (int e = 0; e < count; ++e) {
        sweep[static_cast<int64_t>(d) * cap_ + e] =
            static_cast<uint8_t>(order[static_cast<size_t>(e)]);
      }
    }
  }
}

int64_t PackedRTree::arena_bytes() const {
  return static_cast<int64_t>(coords_.size() * sizeof(double) +
                              kids_.size() * sizeof(int32_t) +
                              counts_.size() * sizeof(int32_t) +
                              levels_.size() * sizeof(int32_t) +
                              mbrs_.size() * sizeof(double) +
                              sweep_order_.size());
}

int PackedRTree::BestSweepDim(const PackedRTree& other, int32_t a,
                              int32_t b) const {
  const double* a_lo = mbrs_.data() + static_cast<int64_t>(a) * 2 * dims_;
  const double* a_hi = a_lo + dims_;
  const double* b_lo =
      other.mbrs_.data() + static_cast<int64_t>(b) * 2 * other.dims_;
  const double* b_hi = b_lo + other.dims_;
  int best = 0;
  double best_extent = -std::numeric_limits<double>::infinity();
  for (int d = 0; d < dims_; ++d) {
    const double extent =
        std::max(a_hi[d], b_hi[d]) - std::min(a_lo[d], b_lo[d]);
    if (extent > best_extent) {
      best_extent = extent;
      best = d;
    }
  }
  return best;
}

void PackedRTree::Search(const SearchRegion& region,
                         const std::vector<DimAffine>* affines,
                         std::vector<int64_t>* results) const {
  SIMQ_CHECK_EQ(region.dims(), dims_);
  if (affines != nullptr) {
    SIMQ_CHECK_EQ(static_cast<int>(affines->size()), dims_);
  }
  if (results->capacity() == results->size()) {
    results->reserve(results->size() +
                     static_cast<size_t>(std::min<int64_t>(size_, 64)) + 1);
  }

  // Compile the per-dimension plan once per query: constrained linear
  // dimensions first, circular (arc) dimensions after, always-pass
  // dimensions dropped entirely.
  SearchScratch& scratch = LocalScratch();
  std::vector<DimPlan>& plans = scratch.plans;
  plans.clear();
  int num_linear = 0;
  for (int d = 0; d < dims_; ++d) {
    if (region.DimIsCircular(d)) {
      continue;
    }
    DimPlan plan;
    plan.dim = d;
    plan.qlo = region.DimLo(d);
    plan.qhi = region.DimHi(d);
    if (plan.qlo == -kPlanInf && plan.qhi == kPlanInf) {
      continue;  // unconstrained: every finite interval passes
    }
    if (affines != nullptr) {
      const DimAffine& affine = (*affines)[static_cast<size_t>(d)];
      plan.scale = affine.scale;
      plan.offset = affine.offset;
    }
    // scale * x + 0.0 with scale == 1 reproduces x exactly in IEEE
    // arithmetic, so the identity fast path cannot change a decision.
    plan.identity = plan.scale == 1.0 && plan.offset == 0.0;
    plans.push_back(plan);
    ++num_linear;
  }
  for (int d = 0; d < dims_; ++d) {
    if (!region.DimIsCircular(d)) {
      continue;
    }
    DimPlan plan;
    plan.dim = d;
    plan.circular = true;
    plan.arc = &region.DimArc(d);
    if (plan.arc->is_full()) {
      continue;  // full circle: every arc and angle passes
    }
    if (affines != nullptr) {
      const DimAffine& affine = (*affines)[static_cast<size_t>(d)];
      plan.offset = affine.offset;
      plan.rotate = affine.is_angle;
      plan.add_offset = true;
    }
    plan.arc_lo = plan.arc->lo();
    plan.arc_extent = plan.arc->extent();
    plan.arc_lo_norm = NormalizeAngle(plan.arc_lo);
    plans.push_back(plan);
  }
  const int num_plans = static_cast<int>(plans.size());

  uint8_t alive[kMaxFanout];
  std::vector<int32_t>& stack = scratch.stack;
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    const int32_t node = stack.back();
    stack.pop_back();
    CountNodeAccess();
    const int32_t count = counts_[static_cast<size_t>(node)];
    const bool leaf = node >= first_leaf_;
    for (int32_t e = 0; e < count; ++e) {
      alive[e] = 1;
    }
    int32_t remaining = count;
    // Linear planes: branchless unit-stride passes over the coordinate
    // planes (no survivor counting inside the loop, so they vectorize).
    for (int p = 0; p < num_linear; ++p) {
      const DimPlan& plan = plans[static_cast<size_t>(p)];
      const double* lo_p = LoPlane(node, plan.dim);
      const double qlo = plan.qlo;
      const double qhi = plan.qhi;
      if (!leaf) {
        const double* hi_p = HiPlane(node, plan.dim);
        if (plan.identity) {
          // lo <= hi per rect invariant, so the transformed interval is
          // [lo, hi] itself.
          for (int32_t e = 0; e < count; ++e) {
            alive[e] = static_cast<uint8_t>(
                alive[e] & (lo_p[e] <= qhi) & (hi_p[e] >= qlo));
          }
        } else {
          const double scale = plan.scale;
          const double offset = plan.offset;
          for (int32_t e = 0; e < count; ++e) {
            const double a = scale * lo_p[e] + offset;
            const double b = scale * hi_p[e] + offset;
            const double tlo = std::min(a, b);
            const double thi = std::max(a, b);
            alive[e] =
                static_cast<uint8_t>(alive[e] & (tlo <= qhi) & (thi >= qlo));
          }
        }
      } else {
        // Leaf entries are points: the lo plane is the coordinate.
        if (plan.identity) {
          for (int32_t e = 0; e < count; ++e) {
            alive[e] = static_cast<uint8_t>(
                alive[e] & (lo_p[e] >= qlo) & (lo_p[e] <= qhi));
          }
        } else {
          const double scale = plan.scale;
          const double offset = plan.offset;
          for (int32_t e = 0; e < count; ++e) {
            const double value = scale * lo_p[e] + offset;
            alive[e] = static_cast<uint8_t>(
                alive[e] & (value >= qlo) & (value <= qhi));
          }
        }
      }
    }
    if (num_linear > 0) {
      remaining = 0;
      for (int32_t e = 0; e < count; ++e) {
        remaining += alive[e];
      }
    }
    // Circular planes: evaluated only for entries that survived every
    // linear plane. The fast path runs the arc chain on pre-normalized
    // operands (exactness tracked by FastNormalize; the rare inexact lane
    // falls back to the verbatim CircularInterval chain), so the common
    // case is a handful of adds and compares per surviving entry.
    for (int p = num_linear; p < num_plans && remaining > 0; ++p) {
      const DimPlan& plan = plans[static_cast<size_t>(p)];
      const double* lo_p = LoPlane(node, plan.dim);
      const double arc_lo = plan.arc_lo;
      const double arc_extent = plan.arc_extent;
      const double arc_lo_norm = plan.arc_lo_norm;
      remaining = 0;
      if (!leaf) {
        const double* hi_p = HiPlane(node, plan.dim);
        for (int32_t e = 0; e < count; ++e) {
          if (alive[e]) {
            const double lo = lo_p[e];
            const double hi = hi_p[e];
            const double extent = hi - lo;
            if (extent < kTwoPi) {
              bool ok = true;
              double data_lo = FastNormalize(lo, &ok);  // FromBounds
              if (plan.rotate) {
                data_lo = FastNormalize(data_lo + plan.offset, &ok);
              }
              // qarc.Contains(data_lo): with ok, the Contains-side
              // normalize of data_lo is the identity.
              double off = data_lo - arc_lo;
              if (off < 0.0) {
                off += kTwoPi;
              }
              bool pass = off <= arc_extent;
              if (!pass) {
                // data.Contains(qarc.lo): the normalize of the arc start
                // is hoisted into arc_lo_norm.
                double off2 = arc_lo_norm - data_lo;
                if (off2 < 0.0) {
                  off2 += kTwoPi;
                }
                pass = off2 <= extent;
              }
              if (!ok) {
                pass = ExactNodeArcPass(plan, lo, hi);
              }
              if (!pass) {
                alive[e] = 0;
              }
            }
          }
          remaining += alive[e];
        }
      } else {
        for (int32_t e = 0; e < count; ++e) {
          if (alive[e]) {
            bool ok = true;
            double angle = lo_p[e];
            if (plan.add_offset) {
              angle = FastNormalize(angle + plan.offset, &ok);
            }
            // qarc.Contains(angle) with the normalize inlined.
            const double normalized = FastNormalize(angle, &ok);
            double off = normalized - arc_lo;
            if (off < 0.0) {
              off += kTwoPi;
            }
            bool pass = off <= arc_extent;
            if (!ok) {
              pass = ExactLeafArcPass(plan, lo_p[e]);
            }
            if (!pass) {
              alive[e] = 0;
            }
          }
          remaining += alive[e];
        }
      }
    }
    const int32_t* ids = kids_.data() + static_cast<int64_t>(node) * cap_;
    if (leaf) {
      for (int32_t e = 0; e < count; ++e) {
        if (alive[e]) {
          results->push_back(ids[e]);
        }
      }
    } else {
      // Reverse push: the DFS pops entry 0 first, matching the recursive
      // pointer-tree visit order (and therefore its result order).
      for (int32_t e = count - 1; e >= 0; --e) {
        if (alive[e]) {
          stack.push_back(ids[e]);
        }
      }
    }
  }
}

}  // namespace simq
