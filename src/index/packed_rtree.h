/// Immutable, cache-friendly snapshot of an R*-tree: the packed traversal
/// engine of the query hot paths.
///
/// The dynamic RTree (index/rtree.h) stays the mutable build/ground-truth
/// structure, but its heap-scattered nodes (unique_ptr children, per-node
/// std::vector<Rect> with two heap arrays per rectangle) make every
/// traversal a pointer chase. PackedRTree compiles that tree into one
/// contiguous arena of fixed-stride structure-of-arrays nodes:
///
///   * Nodes are numbered in breadth-first, level-grouped order (root = 0,
///     leaves last), so a level-ordered traversal streams the arena and
///     `node >= first_leaf_` replaces the is_leaf flag.
///   * Per node, entry coordinates are stored as dimension-major planes:
///     lo[d][entry] then hi[d][entry], each plane `cap` doubles wide. A
///     rect-overlap or MINDIST test over one dimension of a whole node is a
///     unit-stride loop the compiler vectorizes.
///   * Child node ids (internal) and data ids (leaves) are dense int32 in
///     one array; data ids are checked to fit at compile time.
///   * Per node: the exact MBR (union of entry rects, same arithmetic as
///     RTree::NodeMbr) and, for the plane-sweep join, the entry order
///     sorted by lo along every dimension (precomputed once per snapshot).
///
/// Traversals are iterative (explicit stack / priority queue, no recursion):
///   * Search / SearchGeneric: DFS with an explicit stack, visiting entries
///     in the same order as the recursive pointer-tree traversal.
///   * JoinWith: synchronized descent structured exactly like
///     RTree::JoinWith, but leaf/leaf node pairs are resolved with a plane
///     sweep along the best (widest) dimension instead of all-pairs entry
///     tests. See the `slack` contract on JoinWith.
///   * NearestNeighbors: best-first search over a MINDIST priority queue of
///     packed nodes, with deterministic (distance, then id) tie-breaking.
///
/// Node-access accounting matches the pointer tree one-for-one: one
/// increment per packed node visited, with the same visit rules (see
/// DESIGN.md "Node-access accounting" and "Packed traversal engine"). For
/// Search/SearchGeneric/JoinWith the counters are equal to the pointer
/// tree's by construction; for NearestNeighbors both engines visit exactly
/// the nodes whose MINDIST is <= the k-th result distance, so they agree as
/// well.
///
/// Thread-safety contract: a snapshot is immutable, so every const
/// method -- Search, SearchGeneric, JoinWith, NearestNeighbors, and all
/// accessors -- is snapshot-safe: any number of threads may traverse one
/// snapshot concurrently with no external lock (the node-access counter
/// is a relaxed atomic, nothing else mutates). ResetNodeAccesses is also
/// safe at any time, but a reset concurrent with in-flight traversals
/// makes the counter deltas meaningless; benches reset only between
/// phases. Mutating the source RTree does NOT update the snapshot;
/// owners rebuild it through a PackedSnapshotCache (bottom of this file):
/// mutators call Invalidate() while holding the owner's exclusive lock,
/// queries call Get() under the owner's shared lock, and Get's internal
/// mutex serializes only the first post-mutation recompiles.

#ifndef SIMQ_INDEX_PACKED_RTREE_H_
#define SIMQ_INDEX_PACKED_RTREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "geom/linear_transform.h"
#include "geom/rect.h"
#include "geom/search_region.h"
#include "index/knn_best_first.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace simq {

class RTree;

/// Non-owning rectangle view over packed coordinate storage: dimension d
/// lives at lo[d * stride] / hi[d * stride]. This is what packed traversal
/// predicates receive instead of a Rect; write predicates as generic
/// lambdas ([](const auto& rect) { ... rect.lo(d) ... }) to share them
/// between the pointer and packed engines.
class PackedRect {
 public:
  PackedRect(const double* lo, const double* hi, int32_t stride)
      : lo_(lo), hi_(hi), stride_(stride) {}

  double lo(int d) const { return lo_[d * stride_]; }
  double hi(int d) const { return hi_[d * stride_]; }

  const double* lo_data() const { return lo_; }
  const double* hi_data() const { return hi_; }
  int32_t stride() const { return stride_; }

 private:
  const double* lo_;
  const double* hi_;
  int32_t stride_;
};

/// The canonical epsilon spatial-join predicate: rectangles whose
/// per-dimension gap is at most eps (exact for point entries under the
/// Chebyshev metric, conservative on MBRs). Generic over the rect type so
/// it runs against both Rect and PackedRect, and bounded by eps along
/// every dimension -- i.e. it satisfies PackedRTree::JoinWith's slack
/// contract with slack = eps. Tests and benches use this one definition so
/// the contract cannot drift between engines.
struct EpsilonPairPredicate {
  int dims;
  double eps;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    for (int d = 0; d < dims; ++d) {
      if (a.lo(d) > b.hi(d) + eps || b.lo(d) > a.hi(d) + eps) {
        return false;
      }
    }
    return true;
  }
};

class PackedRTree {
 public:
  /// Largest node fanout the packed layout supports (sweep orders are uint8
  /// and traversal scratch is stack-allocated at this size). Compiling a
  /// tree with a larger fanout is a checked precondition violation; owners
  /// that accept arbitrary RTree::Options (Database, SubsequenceIndex)
  /// gate on SupportsFanout and stay on the pointer engine instead.
  static constexpr int kMaxFanout = 256;
  static bool SupportsFanout(int max_entries) {
    return max_entries <= kMaxFanout;
  }

  /// Compiles a snapshot of `tree`. O(nodes * dims * fanout); the source
  /// tree is not retained. Precondition: every node fanout is at most
  /// kMaxFanout (guaranteed when SupportsFanout(options.max_entries)).
  explicit PackedRTree(const RTree& tree);

  PackedRTree(const PackedRTree&) = delete;
  PackedRTree& operator=(const PackedRTree&) = delete;

  int dims() const { return dims_; }
  int64_t size() const { return size_; }
  int32_t node_count() const { return static_cast<int32_t>(counts_.size()); }
  int height() const { return height_; }
  /// Bytes of arena storage (coordinates + ids + MBRs + sweep orders).
  int64_t arena_bytes() const;

  /// Range search per Algorithm 2, identical in results and node accesses
  /// to RTree::Search on the source tree. Leaf entries are treated as
  /// points (their lo corner), as in the pointer engine.
  void Search(const SearchRegion& region, const std::vector<DimAffine>* affines,
              std::vector<int64_t>* results) const;

  /// Generic DFS: visits subtrees whose MBR satisfies node_predicate and
  /// emits leaf entries satisfying leaf_predicate, in the same order as
  /// RTree::SearchGeneric. Predicates receive PackedRect views.
  template <typename NodePred, typename LeafPred, typename Emit>
  void SearchGeneric(NodePred&& node_predicate, LeafPred&& leaf_predicate,
                     Emit&& emit) const;

  /// Synchronized spatial join with `other` (which may be this snapshot: a
  /// self-join). The descent mirrors RTree::JoinWith (same node pairs, same
  /// node-access counts, both orientations and (id, id) pairs on
  /// self-joins); leaf/leaf pairs are resolved by a plane sweep along the
  /// dimension where the two nodes' combined MBR is widest.
  ///
  /// Contract: `pair_predicate` must be conservative on MBRs (as in
  /// RTree::JoinWith) and bounded by `slack` along every dimension --
  /// pair_predicate(a, b) must imply
  ///     a.lo(d) <= b.hi(d) + slack  &&  b.lo(d) <= a.hi(d) + slack
  /// for every d. Plain rect overlap satisfies this with slack = 0; an
  /// epsilon-distance join with slack = epsilon. Pass slack = +infinity to
  /// disable the sweep (all-pairs within each leaf pair, still iterative).
  template <typename PairPred, typename Emit>
  void JoinWith(const PackedRTree& other, PairPred&& pair_predicate,
                Emit&& emit, double slack) const;

  /// Best-first k-nearest neighbors over a MINDIST priority queue. Results
  /// are (id, exact_distance) ordered by (distance, id); ties at the k-th
  /// distance are resolved toward smaller ids. Same algorithm and
  /// accounting as RTree::NearestNeighbors. `initial_bound` caps the
  /// search as if k results at that distance already exist (cross-shard
  /// pruning; see index/knn_best_first.h); +infinity disables the cap.
  template <typename ExactFn>
  std::vector<std::pair<int64_t, double>> NearestNeighbors(
      const NnLowerBound& bound, const std::vector<DimAffine>* affines, int k,
      ExactFn&& exact_distance,
      double initial_bound = std::numeric_limits<double>::infinity()) const;

  void ResetNodeAccesses() const {
    node_accesses_.store(0, std::memory_order_relaxed);
  }
  int64_t node_accesses() const {
    return node_accesses_.load(std::memory_order_relaxed);
  }

  /// Entry i of node n as a strided view (stride = capacity). Arena
  /// offsets are computed in 64-bit arithmetic: node * cap_ exceeds int32
  /// well before the int32 data-id limit does.
  PackedRect EntryRect(int32_t node, int entry) const {
    const double* base =
        coords_.data() + static_cast<int64_t>(node) * coord_stride_ + entry;
    return PackedRect(base, base + static_cast<int64_t>(dims_) * cap_, cap_);
  }
  /// Exact MBR of node n (union of its entry rects), stride 1.
  PackedRect NodeMbr(int32_t node) const {
    const double* base =
        mbrs_.data() + static_cast<int64_t>(node) * 2 * dims_;
    return PackedRect(base, base + dims_, 1);
  }
  bool IsLeaf(int32_t node) const { return node >= first_leaf_; }
  int32_t EntryCount(int32_t node) const {
    return counts_[static_cast<size_t>(node)];
  }
  int32_t Level(int32_t node) const {
    return levels_[static_cast<size_t>(node)];
  }
  /// Child node id (internal) or data id (leaf) of entry i.
  int32_t EntryId(int32_t node, int entry) const {
    return kids_[static_cast<size_t>(static_cast<int64_t>(node) * cap_ +
                                     entry)];
  }

 private:
  void CountNodeAccess() const {
    node_accesses_.fetch_add(1, std::memory_order_relaxed);
  }

  /// lo plane of dimension d in node `node` (cap_ doubles; hi plane is
  /// dims_ * cap_ further).
  const double* LoPlane(int32_t node, int d) const {
    return coords_.data() + node * coord_stride_ + d * cap_;
  }
  const double* HiPlane(int32_t node, int d) const {
    return coords_.data() + node * coord_stride_ + (dims_ + d) * cap_;
  }
  const uint8_t* SweepOrder(int32_t node, int d) const {
    return sweep_order_.data() + (static_cast<int64_t>(node) * dims_ + d) *
                                     cap_;
  }
  /// Dimension along which the union of the two node MBRs is widest -- the
  /// sweep axis for a leaf/leaf pair.
  int BestSweepDim(const PackedRTree& other, int32_t a, int32_t b) const;

  int dims_ = 0;
  int32_t cap_ = 0;          // entry capacity per node (max fanout seen)
  int64_t coord_stride_ = 0;  // doubles per node: 2 * dims_ * cap_
  int height_ = 0;
  int64_t size_ = 0;
  int32_t first_leaf_ = 0;

  std::vector<double> coords_;      // per node: lo planes, then hi planes
  std::vector<int32_t> kids_;       // per node: cap_ child/data ids
  std::vector<int32_t> counts_;     // entries per node
  std::vector<int32_t> levels_;     // level per node (0 = leaf)
  std::vector<double> mbrs_;        // per node: dims_ los, then dims_ his
  std::vector<uint8_t> sweep_order_;  // per node x dim: entries by lo asc

  mutable std::atomic<int64_t> node_accesses_{0};
};

template <typename NodePred, typename LeafPred, typename Emit>
void PackedRTree::SearchGeneric(NodePred&& node_predicate,
                                LeafPred&& leaf_predicate, Emit&& emit) const {
  std::vector<int32_t> stack;
  stack.reserve(static_cast<size_t>(height_) * static_cast<size_t>(cap_) + 1);
  stack.push_back(0);
  while (!stack.empty()) {
    const int32_t node = stack.back();
    stack.pop_back();
    CountNodeAccess();
    const int32_t count = EntryCount(node);
    if (IsLeaf(node)) {
      for (int32_t i = 0; i < count; ++i) {
        const int64_t id = EntryId(node, i);
        if (leaf_predicate(EntryRect(node, i), id)) {
          emit(id);
        }
      }
      continue;
    }
    // Push survivors in reverse so the DFS pops entry 0 first -- the same
    // visit (and emit) order as the recursive pointer-tree traversal.
    for (int32_t i = count - 1; i >= 0; --i) {
      if (node_predicate(EntryRect(node, i))) {
        stack.push_back(EntryId(node, i));
      }
    }
  }
}

template <typename PairPred, typename Emit>
void PackedRTree::JoinWith(const PackedRTree& other, PairPred&& pair_predicate,
                           Emit&& emit, double slack) const {
  SIMQ_CHECK_EQ(dims_, other.dims_);
  struct Pair {
    int32_t a;
    int32_t b;
  };
  std::vector<Pair> stack;
  stack.reserve(64);
  stack.push_back(Pair{0, 0});
  while (!stack.empty()) {
    const Pair top = stack.back();
    stack.pop_back();
    const int32_t a = top.a;
    const int32_t b = top.b;
    CountNodeAccess();
    if (&other != this || a != b) {
      other.CountNodeAccess();
    }
    const int32_t na = EntryCount(a);
    const int32_t nb = other.EntryCount(b);
    if (IsLeaf(a) && other.IsLeaf(b)) {
      if (na == 0 || nb == 0) {
        continue;
      }
      // Plane sweep along the widest dimension of the combined MBR: only
      // entry pairs overlapping along it (inflated by `slack`) reach the
      // full predicate. By the slack contract no qualifying pair is
      // skipped; with slack = +inf this degenerates to all pairs.
      const int sweep = BestSweepDim(other, a, b);
      const uint8_t* order_a = SweepOrder(a, sweep);
      const uint8_t* order_b = other.SweepOrder(b, sweep);
      const double* a_lo = LoPlane(a, sweep);
      const double* a_hi = HiPlane(a, sweep);
      const double* b_lo = other.LoPlane(b, sweep);
      const double* b_hi = other.HiPlane(b, sweep);
      int32_t i = 0;
      int32_t j = 0;
      while (i < na && j < nb) {
        const int32_t ea = order_a[i];
        const int32_t eb = order_b[j];
        if (a_lo[ea] <= b_lo[eb]) {
          const double limit = a_hi[ea] + slack;
          const PackedRect rect_a = EntryRect(a, ea);
          const int64_t id_a = EntryId(a, ea);
          for (int32_t s = j; s < nb; ++s) {
            const int32_t es = order_b[s];
            if (b_lo[es] > limit) {
              break;
            }
            if (pair_predicate(rect_a, other.EntryRect(b, es))) {
              emit(id_a, static_cast<int64_t>(other.EntryId(b, es)));
            }
          }
          ++i;
        } else {
          const double limit = b_hi[eb] + slack;
          const PackedRect rect_b = other.EntryRect(b, eb);
          const int64_t id_b = other.EntryId(b, eb);
          for (int32_t s = i; s < na; ++s) {
            const int32_t es = order_a[s];
            if (a_lo[es] > limit) {
              break;
            }
            if (pair_predicate(EntryRect(a, es), rect_b)) {
              emit(static_cast<int64_t>(EntryId(a, es)), id_b);
            }
          }
          ++j;
        }
      }
      continue;
    }
    // Descend the deeper (or only internal) side, exactly as the pointer
    // engine does; reverse push order preserves its DFS pair order.
    if (!IsLeaf(a) && (other.IsLeaf(b) || Level(a) >= other.Level(b))) {
      const PackedRect b_mbr = other.NodeMbr(b);
      for (int32_t i = na - 1; i >= 0; --i) {
        if (pair_predicate(EntryRect(a, i), b_mbr)) {
          stack.push_back(Pair{EntryId(a, i), b});
        }
      }
      continue;
    }
    const PackedRect a_mbr = NodeMbr(a);
    for (int32_t j = nb - 1; j >= 0; --j) {
      if (pair_predicate(a_mbr, other.EntryRect(b, j))) {
        stack.push_back(Pair{a, other.EntryId(b, j)});
      }
    }
  }
}

template <typename ExactFn>
std::vector<std::pair<int64_t, double>> PackedRTree::NearestNeighbors(
    const NnLowerBound& bound, const std::vector<DimAffine>* affines, int k,
    ExactFn&& exact_distance, double initial_bound) const {
  const std::vector<DimAffine> identity(static_cast<size_t>(dims_),
                                        DimAffine{});
  const std::vector<DimAffine>& actions =
      affines != nullptr ? *affines : identity;
  const size_t queue_reserve =
      static_cast<size_t>(k) +
      static_cast<size_t>(height_ + 1) * static_cast<size_t>(cap_) + 64;
  // The engine-shared driver (index/knn_best_first.h) owns the queue, tie
  // draining, and deterministic (distance, id) ordering; this engine only
  // expands nodes over the packed planes.
  return internal::BestFirstNearestNeighbors<int32_t>(
      0, k, queue_reserve,
      [&](int32_t node, auto&& push_node, auto&& push_entry) {
        CountNodeAccess();
        const int32_t count = EntryCount(node);
        if (IsLeaf(node)) {
          for (int32_t i = 0; i < count; ++i) {
            push_entry(
                bound.ToTransformedPoint(LoPlane(node, 0) + i, cap_, actions),
                static_cast<int64_t>(EntryId(node, i)));
          }
        } else {
          for (int32_t i = 0; i < count; ++i) {
            push_node(bound.ToTransformedBounds(LoPlane(node, 0) + i,
                                                HiPlane(node, 0) + i, cap_,
                                                actions),
                      EntryId(node, i));
          }
        }
      },
      exact_distance, initial_bound);
}

/// Lazily-compiled snapshot cache, the one rebuild-on-mutation protocol
/// shared by snapshot owners (Relation shards, SubsequenceIndex):
/// mutators call Invalidate(), queries call Get(tree). Thread-safety:
/// Get is snapshot-safe against concurrent Get calls (internal mutex);
/// Invalidate and the mutation it reflects must hold exclusive access
/// to the owning structure (the same requirement the pointer tree
/// imposes), so a rebuild can never race a mutation.
class PackedSnapshotCache {
 public:
  void Invalidate() {
    std::lock_guard<std::mutex> lock(mutex_);
    stale_ = true;
  }

  /// Returns the current snapshot of `tree`, recompiling it first if a
  /// mutation invalidated it (or none was built yet). The reference stays
  /// valid until the next Get() after an Invalidate(). `rows` is the
  /// owner's row count the compile covers (see covered()); owners that
  /// never consult covered() (the subsequence index) may omit it.
  const PackedRTree& Get(const RTree& tree, int64_t rows = -1) const {
    const PackedRTree* snapshot = TryGet(tree, /*can_fail=*/false, rows);
    SIMQ_CHECK(snapshot != nullptr);
    return *snapshot;
  }

  /// Degradation-aware Get: returns null when the compile fails (today
  /// that means the "packed.compile" failpoint fired; a real allocation
  /// failure would land here too if compiles ever became fallible). The
  /// caller falls back to the pointer tree. A cached snapshot that is
  /// still fresh is returned without re-evaluating the failpoint -- only
  /// compiles can fail, not reuse.
  const PackedRTree* TryGet(const RTree& tree, bool can_fail = true,
                            int64_t rows = -1) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stale_ || snapshot_ == nullptr) {
      if (can_fail && SIMQ_FAILPOINT_FIRED("packed.compile")) {
        return nullptr;
      }
      snapshot_ = std::make_unique<PackedRTree>(tree);
      covered_ = rows;
      stale_ = false;
    }
    return snapshot_.get();
  }

  /// Installs an externally compiled snapshot covering the owner's first
  /// `rows` rows, marking the cache fresh. Recompaction publish uses this
  /// to swap in the new generation's snapshot; the caller must hold the
  /// owner's exclusive lock (same requirement as Invalidate), so no
  /// reader can still be traversing the snapshot being replaced.
  void Install(std::unique_ptr<PackedRTree> snapshot, int64_t rows) {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(snapshot);
    covered_ = rows;
    stale_ = snapshot_ == nullptr;
  }

  /// Number of owner rows the cached snapshot covers: rows at or past this
  /// offset are the owner's delta and must be scanned exactly alongside
  /// the snapshot. 0 when no fresh snapshot exists, or when the last
  /// compile did not state its row count (then every row is delta --
  /// callers that compile through TryGet first never observe this for a
  /// non-empty owner).
  int64_t covered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return (stale_ || snapshot_ == nullptr || covered_ < 0) ? 0 : covered_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::unique_ptr<PackedRTree> snapshot_;
  mutable int64_t covered_ = 0;
  mutable bool stale_ = true;
};

}  // namespace simq

#endif  // SIMQ_INDEX_PACKED_RTREE_H_
