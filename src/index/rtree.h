// In-memory R*-tree over runtime-dimensional rectangles/points.
//
// Implements the R-tree of Guttman [Gut84] with the R* improvements of
// Beckmann et al. [BKSS90]: least-overlap ChooseSubtree at the leaf level,
// forced reinsertion on first overflow per level, and the margin-driven
// topological split. This is the index substrate of [RM97] §4-5 (the paper
// builds on Beckmann's R*-tree V2); disk pages are replaced by heap nodes
// and a node-access counter stands in for disk accesses (see DESIGN.md).
//
// Similarity search plugs in through two generic entry points:
//  * Search(region, affines): Algorithm 2 of [RM97] -- every node MBR and
//    leaf point is passed through the safe transformation's per-dimension
//    actions before being tested against the query's search region, which
//    is exactly "constructing the index I' for T(D) on the fly"
//    (Algorithm 1) without materializing it.
//  * NearestNeighbors(bound, affines, k, exact): branch-and-bound k-NN in
//    the style of [RKV95], generalized to transformed entries; candidates
//    are re-ranked by a caller-supplied exact distance so the index only
//    needs lower bounds.
//
// Not thread-safe: the node-access counters are plain mutable fields.

#ifndef SIMQ_INDEX_RTREE_H_
#define SIMQ_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "geom/linear_transform.h"
#include "geom/rect.h"
#include "geom/search_region.h"

namespace simq {

class RTree {
 public:
  struct Options {
    int max_entries = 32;
    int min_entries = 12;  // must satisfy 2 <= min_entries <= max_entries/2
    bool forced_reinsert = true;
    double reinsert_fraction = 0.3;  // p = 30% of M, the [BKSS90] default
  };

  // Tree node, exposed read-only for join algorithms and invariant checks.
  // Entries of a level-L node are child nodes of level L-1 (internal) or
  // data ids (leaves, level 0); rects[i] is the MBR of entry i.
  struct Node {
    bool is_leaf = true;
    int level = 0;  // 0 = leaf
    Node* parent = nullptr;
    std::vector<Rect> rects;
    std::vector<std::unique_ptr<Node>> children;  // internal nodes only
    std::vector<int64_t> ids;                     // leaves only

    int num_entries() const { return static_cast<int>(rects.size()); }
  };

  explicit RTree(int dims);
  RTree(int dims, Options options);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts a rectangle (degenerate rectangles represent points).
  void Insert(const Rect& box, int64_t id);
  void InsertPoint(const Point& point, int64_t id);

  // Removes the entry with exactly this bounding box and id; returns false
  // if no such entry exists. Underfull nodes are condensed and their
  // entries reinserted (Guttman's CondenseTree).
  bool Delete(const Rect& box, int64_t id);

  // Sort-Tile-Recursive bulk load. Requires an empty tree.
  void BulkLoad(std::vector<std::pair<Rect, int64_t>> entries);

  // Range search per Algorithm 2. `affines` (from LowerToFeatureSpace) is
  // the safe transformation applied to the data side; pass nullptr for the
  // identity. Appends matching ids to `results`.
  void Search(const SearchRegion& region, const std::vector<DimAffine>* affines,
              std::vector<int64_t>* results) const;

  // Generic traversal: visits subtrees whose MBR satisfies node_predicate
  // and emits leaf entries satisfying leaf_predicate.
  void SearchGeneric(
      const std::function<bool(const Rect&)>& node_predicate,
      const std::function<bool(const Rect&, int64_t)>& leaf_predicate,
      const std::function<void(int64_t)>& emit) const;

  // Synchronized-traversal spatial join with `other` (which may be this
  // tree: a self-join). Descends both trees in lockstep, pruning subtree
  // pairs whose MBRs fail `pair_predicate`, and emits (id, other_id) for
  // every leaf-entry pair whose rectangles satisfy it. The predicate must
  // be conservative on MBRs: if any contained pair qualifies, the MBR pair
  // must qualify. Self-joins emit both orientations and (id, id) pairs;
  // callers filter as needed.
  void JoinWith(
      const RTree& other,
      const std::function<bool(const Rect&, const Rect&)>& pair_predicate,
      const std::function<void(int64_t, int64_t)>& emit) const;

  // Branch-and-bound k-nearest neighbors under a transformation. Results
  // are (id, exact_distance) pairs ordered by increasing exact distance,
  // where exact_distance comes from the caller's callback (which must be
  // >= the feature-space lower bound, e.g. a full-spectrum distance).
  std::vector<std::pair<int64_t, double>> NearestNeighbors(
      const NnLowerBound& bound, const std::vector<DimAffine>* affines, int k,
      const std::function<double(int64_t)>& exact_distance) const;

  int dims() const { return dims_; }
  int64_t size() const { return size_; }
  int height() const { return root_->level + 1; }
  int64_t node_count() const { return node_count_; }
  const Node* root() const { return root_.get(); }
  Rect bounding_box() const;

  // Node-access accounting: number of nodes touched by searches since the
  // last reset. The in-memory proxy for the paper's disk accesses.
  void ResetNodeAccesses() const { node_accesses_ = 0; }
  int64_t node_accesses() const { return node_accesses_; }

  // Structural validation for tests: MBR containment, fill factors, level
  // consistency, parent links, and entry count. Returns false and logs the
  // first violation (via stderr) on failure.
  bool CheckInvariants() const;

 private:
  struct PendingEntry {
    Rect rect;
    int64_t id = -1;                  // valid when child == nullptr
    std::unique_ptr<Node> child;      // valid for internal entries
  };

  Node* ChooseSubtree(Node* node, const Rect& rect) const;
  void InsertAtLevel(PendingEntry entry, int level,
                     std::vector<bool>* reinsert_used);
  void AddEntryToNode(Node* node, PendingEntry entry);
  void HandleOverflow(Node* node, std::vector<bool>* reinsert_used);
  void ReinsertEntries(Node* node, std::vector<bool>* reinsert_used);
  void SplitNode(Node* node, std::vector<bool>* reinsert_used);
  void UpdateMbrsUpward(Node* node);
  Rect NodeMbr(const Node* node) const;
  void SearchNode(const Node* node, const SearchRegion& region,
                  const std::vector<DimAffine>* affines,
                  std::vector<int64_t>* results) const;
  bool CheckNode(const Node* node, bool is_root, int64_t* leaf_entries) const;

  int dims_;
  Options options_;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
  int64_t node_count_ = 1;
  mutable int64_t node_accesses_ = 0;
};

}  // namespace simq

#endif  // SIMQ_INDEX_RTREE_H_
