/// In-memory R*-tree over runtime-dimensional rectangles/points.
///
/// Implements the R-tree of Guttman [Gut84] with the R* improvements of
/// Beckmann et al. [BKSS90]: least-overlap ChooseSubtree at the leaf level,
/// forced reinsertion on first overflow per level, and the margin-driven
/// topological split. This is the index substrate of [RM97] §4-5 (the paper
/// builds on Beckmann's R*-tree V2); disk pages are replaced by heap nodes
/// and a node-access counter stands in for disk accesses (see DESIGN.md).
///
/// Similarity search plugs in through generic entry points:
///  * Search(region, affines): Algorithm 2 of [RM97] -- every node MBR and
///    leaf point is passed through the safe transformation's per-dimension
///    actions before being tested against the query's search region, which
///    is exactly "constructing the index I' for T(D) on the fly"
///    (Algorithm 1) without materializing it.
///  * SearchGeneric / JoinWith / NearestNeighbors: templated visitor
///    traversals. Pass any callable (lambda, function object) and the
///    predicate calls inline into the traversal loop. Callers that store
///    type-erased predicates can still pass a std::function -- it binds
///    to the template like any other callable -- but the traversal hot
///    paths carry no type-erasure of their own.
///  * NearestNeighbors(bound, affines, k, exact): branch-and-bound k-NN in
///    the style of [RKV95], generalized to transformed entries; candidates
///    are re-ranked by a caller-supplied exact distance so the index only
///    needs lower bounds.
///
/// Concurrent read traversals (Search/SearchGeneric/JoinWith/
/// NearestNeighbors) from multiple threads are safe: the node-access
/// counters are relaxed atomics and nothing else mutates. Mutations
/// (Insert/Delete/BulkLoad) still require exclusive access.

#ifndef SIMQ_INDEX_RTREE_H_
#define SIMQ_INDEX_RTREE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "geom/linear_transform.h"
#include "geom/rect.h"
#include "geom/search_region.h"
#include "index/knn_best_first.h"
#include "util/logging.h"

namespace simq {

class RTree {
 public:
  struct Options {
    int max_entries = 32;
    int min_entries = 12;  // must satisfy 2 <= min_entries <= max_entries/2
    bool forced_reinsert = true;
    double reinsert_fraction = 0.3;  // p = 30% of M, the [BKSS90] default
  };

  // Tree node, exposed read-only for join algorithms and invariant checks.
  // Entries of a level-L node are child nodes of level L-1 (internal) or
  // data ids (leaves, level 0); rects[i] is the MBR of entry i.
  struct Node {
    bool is_leaf = true;
    int level = 0;  // 0 = leaf
    Node* parent = nullptr;
    std::vector<Rect> rects;
    std::vector<std::unique_ptr<Node>> children;  // internal nodes only
    std::vector<int64_t> ids;                     // leaves only

    int num_entries() const { return static_cast<int>(rects.size()); }
  };

  explicit RTree(int dims);
  RTree(int dims, Options options);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts a rectangle (degenerate rectangles represent points).
  void Insert(const Rect& box, int64_t id);
  void InsertPoint(const Point& point, int64_t id);

  // Removes the entry with exactly this bounding box and id; returns false
  // if no such entry exists. Underfull nodes are condensed and their
  // entries reinserted (Guttman's CondenseTree).
  bool Delete(const Rect& box, int64_t id);

  // Sort-Tile-Recursive bulk load. Requires an empty tree.
  void BulkLoad(std::vector<std::pair<Rect, int64_t>> entries);

  // Range search per Algorithm 2. `affines` (from LowerToFeatureSpace) is
  // the safe transformation applied to the data side; pass nullptr for the
  // identity. Appends matching ids to `results`.
  void Search(const SearchRegion& region, const std::vector<DimAffine>* affines,
              std::vector<int64_t>* results) const;

  // Generic traversal: visits subtrees whose MBR satisfies node_predicate
  // and emits leaf entries satisfying leaf_predicate. The templated form
  // inlines the callables into the traversal.
  template <typename NodePred, typename LeafPred, typename Emit>
  void SearchGeneric(NodePred&& node_predicate, LeafPred&& leaf_predicate,
                     Emit&& emit) const {
    SearchGenericImpl(root_.get(), node_predicate, leaf_predicate, emit);
  }

  // Synchronized-traversal spatial join with `other` (which may be this
  // tree: a self-join). Descends both trees in lockstep, pruning subtree
  // pairs whose MBRs fail `pair_predicate`, and emits (id, other_id) for
  // every leaf-entry pair whose rectangles satisfy it. The predicate must
  // be conservative on MBRs: if any contained pair qualifies, the MBR pair
  // must qualify. Self-joins emit both orientations and (id, id) pairs;
  // callers filter as needed.
  template <typename PairPred, typename Emit>
  void JoinWith(const RTree& other, PairPred&& pair_predicate,
                Emit&& emit) const {
    SIMQ_CHECK_EQ(dims_, other.dims_);
    JoinWithImpl(root_.get(), other.root_.get(), other, pair_predicate, emit);
  }

  // Branch-and-bound k-nearest neighbors under a transformation. Results
  // are (id, exact_distance) pairs ordered by increasing exact distance,
  // where exact_distance comes from the caller's callback (which must be
  // >= the feature-space lower bound, e.g. a full-spectrum distance).
  // `initial_bound` caps the search as if k results at that distance
  // already exist (cross-shard pruning; see index/knn_best_first.h);
  // +infinity disables the cap.
  template <typename ExactFn>
  std::vector<std::pair<int64_t, double>> NearestNeighbors(
      const NnLowerBound& bound, const std::vector<DimAffine>* affines, int k,
      ExactFn&& exact_distance,
      double initial_bound = std::numeric_limits<double>::infinity()) const {
    return NearestNeighborsImpl(bound, affines, k, exact_distance,
                                initial_bound);
  }

  int dims() const { return dims_; }
  int64_t size() const { return size_; }
  int height() const { return root_->level + 1; }
  int64_t node_count() const { return node_count_; }
  const Node* root() const { return root_.get(); }
  Rect bounding_box() const;

  // Node-access accounting: number of nodes touched by searches since the
  // last reset. The in-memory proxy for the paper's disk accesses.
  // Maintained with relaxed atomics so concurrent read traversals can
  // share a tree; see DESIGN.md "Node-access accounting".
  void ResetNodeAccesses() const {
    node_accesses_.store(0, std::memory_order_relaxed);
  }
  int64_t node_accesses() const {
    return node_accesses_.load(std::memory_order_relaxed);
  }

  // Structural validation for tests: MBR containment, fill factors, level
  // consistency, parent links, and entry count. Returns false and logs the
  // first violation (via stderr) on failure.
  bool CheckInvariants() const;

 private:
  struct PendingEntry {
    Rect rect;
    int64_t id = -1;                  // valid when child == nullptr
    std::unique_ptr<Node> child;      // valid for internal entries
  };

  Node* ChooseSubtree(Node* node, const Rect& rect) const;
  void InsertAtLevel(PendingEntry entry, int level,
                     std::vector<bool>* reinsert_used);
  void AddEntryToNode(Node* node, PendingEntry entry);
  void HandleOverflow(Node* node, std::vector<bool>* reinsert_used);
  void ReinsertEntries(Node* node, std::vector<bool>* reinsert_used);
  void SplitNode(Node* node, std::vector<bool>* reinsert_used);
  void UpdateMbrsUpward(Node* node);
  Rect NodeMbr(const Node* node) const;
  void SearchNode(const Node* node, const SearchRegion& region,
                  const std::vector<DimAffine>* affines,
                  std::vector<int64_t>* results) const;
  bool CheckNode(const Node* node, bool is_root, int64_t* leaf_entries) const;

  void CountNodeAccess() const {
    node_accesses_.fetch_add(1, std::memory_order_relaxed);
  }

  template <typename NodePred, typename LeafPred, typename Emit>
  void SearchGenericImpl(const Node* node, NodePred& node_predicate,
                         LeafPred& leaf_predicate, Emit& emit) const {
    CountNodeAccess();
    if (node->is_leaf) {
      for (int i = 0; i < node->num_entries(); ++i) {
        if (leaf_predicate(node->rects[static_cast<size_t>(i)],
                           node->ids[static_cast<size_t>(i)])) {
          emit(node->ids[static_cast<size_t>(i)]);
        }
      }
      return;
    }
    for (int i = 0; i < node->num_entries(); ++i) {
      if (node_predicate(node->rects[static_cast<size_t>(i)])) {
        SearchGenericImpl(node->children[static_cast<size_t>(i)].get(),
                          node_predicate, leaf_predicate, emit);
      }
    }
  }

  template <typename PairPred, typename Emit>
  void JoinWithImpl(const Node* a, const Node* b, const RTree& other,
                    PairPred& pair_predicate, Emit& emit) const {
    CountNodeAccess();
    if (&other != this || a != b) {
      other.CountNodeAccess();
    }
    if (a->is_leaf && b->is_leaf) {
      for (int i = 0; i < a->num_entries(); ++i) {
        for (int j = 0; j < b->num_entries(); ++j) {
          if (pair_predicate(a->rects[static_cast<size_t>(i)],
                             b->rects[static_cast<size_t>(j)])) {
            emit(a->ids[static_cast<size_t>(i)],
                 b->ids[static_cast<size_t>(j)]);
          }
        }
      }
      return;
    }
    // Descend the deeper (or only internal) side so both reach the leaf
    // level together.
    if (!a->is_leaf && (b->is_leaf || a->level >= b->level)) {
      const Rect b_mbr = other.NodeMbr(b);
      for (int i = 0; i < a->num_entries(); ++i) {
        if (pair_predicate(a->rects[static_cast<size_t>(i)], b_mbr)) {
          JoinWithImpl(a->children[static_cast<size_t>(i)].get(), b, other,
                       pair_predicate, emit);
        }
      }
      return;
    }
    const Rect a_mbr = NodeMbr(a);
    for (int j = 0; j < b->num_entries(); ++j) {
      if (pair_predicate(a_mbr, b->rects[static_cast<size_t>(j)])) {
        JoinWithImpl(a, b->children[static_cast<size_t>(j)].get(), other,
                     pair_predicate, emit);
      }
    }
  }

  // Best-first k-NN: the engine-shared driver (index/knn_best_first.h)
  // owns the queue, tie draining, and deterministic (distance, id)
  // ordering; this engine only expands nodes.
  template <typename ExactFn>
  std::vector<std::pair<int64_t, double>> NearestNeighborsImpl(
      const NnLowerBound& bound, const std::vector<DimAffine>* affines, int k,
      ExactFn& exact_distance, double initial_bound) const {
    const std::vector<DimAffine> identity(static_cast<size_t>(dims_),
                                          DimAffine{});
    const std::vector<DimAffine>& actions =
        affines != nullptr ? *affines : identity;
    const size_t queue_reserve =
        static_cast<size_t>(k) +
        static_cast<size_t>(height() + 1) *
            static_cast<size_t>(options_.max_entries) +
        64;
    Point point(static_cast<size_t>(dims_));
    return internal::BestFirstNearestNeighbors<const Node*>(
        root_.get(), k, queue_reserve,
        [&](const Node* node, auto&& push_node, auto&& push_entry) {
          CountNodeAccess();
          if (node->is_leaf) {
            for (int i = 0; i < node->num_entries(); ++i) {
              const Rect& rect = node->rects[static_cast<size_t>(i)];
              for (int d = 0; d < dims_; ++d) {
                point[static_cast<size_t>(d)] = rect.lo(d);
              }
              push_entry(bound.ToTransformedPoint(point, actions),
                         node->ids[static_cast<size_t>(i)]);
            }
          } else {
            for (int i = 0; i < node->num_entries(); ++i) {
              push_node(bound.ToTransformedRect(
                            node->rects[static_cast<size_t>(i)], actions),
                        node->children[static_cast<size_t>(i)].get());
            }
          }
        },
        exact_distance, initial_bound);
  }

  int dims_;
  Options options_;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
  int64_t node_count_ = 1;
  mutable std::atomic<int64_t> node_accesses_{0};
};

}  // namespace simq

#endif  // SIMQ_INDEX_RTREE_H_
