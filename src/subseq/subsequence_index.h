/// Subsequence matching: the ST-index of Faloutsos, Ranganathan &
/// Manolopoulos [FRM94], the second indexing substrate [RM97] builds on
/// ("We show how to use the indexing method in [AFS93] ..."; [FRM94] extends
/// [AFS93] from whole-sequence to subsequence matching).
///
/// Problem: given a collection of long sequences, find every (sequence,
/// offset) whose length-w window is within epsilon of a length-w query.
///
/// Method: slide a window of length w over each stored sequence; each
/// position maps to the first k DFT coefficients of the window -- a point in
/// a low-dimensional feature space. Consecutive positions form a *trail*;
/// trails are cut into sub-trails, each covered by an MBR stored in an
/// R*-tree. A range query inflates the query's feature point by epsilon and
/// retrieves intersecting MBRs; every window offset inside a retrieved
/// sub-trail is then verified against the raw data (early-abandoning
/// Euclidean distance). Feature distances lower-bound window distances
/// (Parseval prefix), so there are no false dismissals.
///
/// Window features are computed incrementally: the unitary DFT of the next
/// window follows from the previous one in O(k) (the sliding-window update),
/// so indexing a sequence of length m costs O(m * k), not O(m * w).
///
/// Trail packing follows [FRM94]'s I-adaptive idea: greedily extend the
/// current MBR while the marginal cost estimate of covering one more point
/// stays below the cost of opening a fresh MBR (kAdaptive), or simply cut
/// every `max_trail_length` points (kFixed).
///
/// Thread-safety: RangeSearch/ScanSearch and all const accessors are
/// snapshot-safe (concurrent callers share the immutable packed snapshot;
/// node-access counters are relaxed atomics). AddSeries mutates the trail
/// table and the R*-tree and requires exclusive access, exactly like
/// relation mutations (see index/packed_rtree.h, PackedSnapshotCache).

#ifndef SIMQ_SUBSEQ_SUBSEQUENCE_INDEX_H_
#define SIMQ_SUBSEQ_SUBSEQUENCE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/dft.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace simq {

enum class TrailPacking { kFixed, kAdaptive };

class SubsequenceIndex {
 public:
  struct Options {
    int window = 64;            // w: subsequence length being matched
    int num_coefficients = 3;   // k: DFT coefficients kept (incl. f = 0)
    TrailPacking packing = TrailPacking::kAdaptive;
    int max_trail_length = 64;  // hard cap on points per sub-trail MBR
    RTree::Options rtree;
  };

  struct SubsequenceMatch {
    int64_t series_id = 0;
    int offset = 0;  // start of the matching window
    double distance = 0.0;
  };

  struct SearchStats {
    int64_t node_accesses = 0;
    int64_t trails_retrieved = 0;
    int64_t windows_checked = 0;
  };

  explicit SubsequenceIndex(Options options);

  // Registers a sequence (id = number of previously added sequences).
  // Requires series.length() >= window.
  Result<int64_t> AddSeries(const TimeSeries& series);

  // All windows within `epsilon` of `query` (query.size() == window),
  // via the ST-index. Results sorted by distance.
  std::vector<SubsequenceMatch> RangeSearch(const std::vector<double>& query,
                                            double epsilon,
                                            SearchStats* stats = nullptr) const;

  // Baseline: scan every window of every sequence with early abandoning.
  std::vector<SubsequenceMatch> ScanSearch(const std::vector<double>& query,
                                           double epsilon,
                                           SearchStats* stats = nullptr) const;

  int64_t num_series() const { return static_cast<int64_t>(series_.size()); }
  int64_t num_windows() const { return num_windows_; }
  int64_t num_trails() const { return static_cast<int64_t>(trails_.size()); }
  const RTree& rtree() const { return *tree_; }
  // Packed snapshot of rtree(); RangeSearch traverses this. AddSeries
  // marks it stale, the next query recompiles it (thread-safe against
  // concurrent queries).
  const PackedRTree& packed_rtree() const;
  const Options& options() const { return options_; }

  // Feature layout: Re(X0), then (Re, Im) of X1..X{k-1}. X0 of a real
  // window is real, so its imaginary part is not stored.
  int feature_dims() const { return 2 * options_.num_coefficients - 1; }

  // First k unitary DFT coefficients of one window, laid out as above.
  // Exposed for tests and for building query points.
  std::vector<double> WindowFeatures(const double* window_data) const;

 private:
  struct Trail {
    int64_t series_id = 0;
    int start = 0;  // first window offset covered
    int count = 0;  // number of consecutive windows covered
  };

  double MbrCost(const Rect& rect) const;

  Options options_;
  std::vector<std::vector<double>> series_;
  std::vector<Trail> trails_;
  std::unique_ptr<RTree> tree_;
  PackedSnapshotCache packed_;
  int64_t num_windows_ = 0;
};

}  // namespace simq

#endif  // SIMQ_SUBSEQ_SUBSEQUENCE_INDEX_H_
