#include "subseq/subsequence_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/stats.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Early-abandoning Euclidean distance between a query and a raw window.
double WindowDistance(const std::vector<double>& query, const double* window,
                      double threshold) {
  const double limit = threshold * threshold;
  double sum = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    const double diff = query[i] - window[i];
    sum += diff * diff;
    if (sum > limit) {
      return kInf;
    }
  }
  return std::sqrt(sum);
}

void SortMatches(std::vector<SubsequenceIndex::SubsequenceMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const SubsequenceIndex::SubsequenceMatch& a,
               const SubsequenceIndex::SubsequenceMatch& b) {
              if (a.distance != b.distance) {
                return a.distance < b.distance;
              }
              if (a.series_id != b.series_id) {
                return a.series_id < b.series_id;
              }
              return a.offset < b.offset;
            });
}

}  // namespace

SubsequenceIndex::SubsequenceIndex(Options options)
    : options_(options),
      tree_(std::make_unique<RTree>(2 * options.num_coefficients - 1,
                                    options.rtree)) {
  SIMQ_CHECK_GT(options_.window, 1);
  SIMQ_CHECK_GT(options_.num_coefficients, 0);
  SIMQ_CHECK_LE(options_.num_coefficients, options_.window / 2 + 1);
  SIMQ_CHECK_GT(options_.max_trail_length, 0);
}

std::vector<double> SubsequenceIndex::WindowFeatures(
    const double* window_data) const {
  const int w = options_.window;
  const int k = options_.num_coefficients;
  const double scale = 1.0 / std::sqrt(static_cast<double>(w));
  std::vector<double> features(static_cast<size_t>(feature_dims()));
  for (int f = 0; f < k; ++f) {
    Complex sum(0.0, 0.0);
    for (int t = 0; t < w; ++t) {
      const double phase = -2.0 * M_PI * static_cast<double>(t) *
                           static_cast<double>(f) / static_cast<double>(w);
      sum += window_data[t] * Complex(std::cos(phase), std::sin(phase));
    }
    sum *= scale;
    if (f == 0) {
      features[0] = sum.real();  // X0 of a real window is real
    } else {
      features[static_cast<size_t>(2 * f - 1)] = sum.real();
      features[static_cast<size_t>(2 * f)] = sum.imag();
    }
  }
  return features;
}

double SubsequenceIndex::MbrCost(const Rect& rect) const {
  // [FRM94]'s cost surrogate: expected page accesses of a point query are
  // proportional to the volume of the MBR inflated by the query radius;
  // with a nominal radius of 0.5 per side this is prod(L_i + 0.5).
  double cost = 1.0;
  for (int d = 0; d < rect.dims(); ++d) {
    cost *= (rect.hi(d) - rect.lo(d)) + 0.5;
  }
  return cost;
}

Result<int64_t> SubsequenceIndex::AddSeries(const TimeSeries& series) {
  const int w = options_.window;
  const int k = options_.num_coefficients;
  if (series.length() < w) {
    return Status::InvalidArgument(
        "series shorter than the subsequence window");
  }
  const int64_t series_id = num_series();
  series_.push_back(series.values);
  const std::vector<double>& values = series_.back();
  const int num_offsets = series.length() - w + 1;

  // Sliding-window DFT: coefficients of window s+1 follow from window s as
  //   X_f <- e^{+j 2 pi f / w} * (X_f + (x_{s+w} - x_s) / sqrt(w)).
  const double scale = 1.0 / std::sqrt(static_cast<double>(w));
  std::vector<Complex> rotators(static_cast<size_t>(k));
  for (int f = 0; f < k; ++f) {
    const double phase =
        2.0 * M_PI * static_cast<double>(f) / static_cast<double>(w);
    rotators[static_cast<size_t>(f)] =
        Complex(std::cos(phase), std::sin(phase));
  }
  std::vector<Complex> coeffs(static_cast<size_t>(k));
  auto recompute = [&](int start) {
    for (int f = 0; f < k; ++f) {
      Complex sum(0.0, 0.0);
      for (int t = 0; t < w; ++t) {
        const double phase = -2.0 * M_PI * static_cast<double>(t) *
                             static_cast<double>(f) / static_cast<double>(w);
        sum += values[static_cast<size_t>(start + t)] *
               Complex(std::cos(phase), std::sin(phase));
      }
      coeffs[static_cast<size_t>(f)] = sum * scale;
    }
  };

  // Pass 1: feature points of every window position.
  const int dims = feature_dims();
  std::vector<Point> points(static_cast<size_t>(num_offsets),
                            Point(static_cast<size_t>(dims)));
  for (int start = 0; start < num_offsets; ++start) {
    if (start % 1024 == 0) {
      // Periodic direct recomputation bounds floating-point drift of the
      // incremental update on very long sequences.
      recompute(start);
    } else {
      const double delta =
          (values[static_cast<size_t>(start - 1 + w)] -
           values[static_cast<size_t>(start - 1)]) *
          scale;
      for (int f = 0; f < k; ++f) {
        coeffs[static_cast<size_t>(f)] =
            (coeffs[static_cast<size_t>(f)] + delta) *
            rotators[static_cast<size_t>(f)];
      }
    }
    Point& features = points[static_cast<size_t>(start)];
    features[0] = coeffs[0].real();
    for (int f = 1; f < k; ++f) {
      features[static_cast<size_t>(2 * f - 1)] =
          coeffs[static_cast<size_t>(f)].real();
      features[static_cast<size_t>(2 * f)] =
          coeffs[static_cast<size_t>(f)].imag();
    }
  }

  // Per-dimension extents: the [FRM94] cost model works in a normalized
  // space where 0.5 is half the data extent, so MBR sides are measured
  // relative to the trail's overall spread.
  std::vector<double> extent(static_cast<size_t>(dims), 1.0);
  for (int d = 0; d < dims; ++d) {
    double lo = points[0][static_cast<size_t>(d)];
    double hi = lo;
    for (const Point& p : points) {
      lo = std::min(lo, p[static_cast<size_t>(d)]);
      hi = std::max(hi, p[static_cast<size_t>(d)]);
    }
    extent[static_cast<size_t>(d)] = std::max(hi - lo, 1e-9);
  }
  auto normalized_cost = [&](const Rect& rect) {
    double cost = 1.0;
    for (int d = 0; d < dims; ++d) {
      cost *= (rect.hi(d) - rect.lo(d)) / extent[static_cast<size_t>(d)] +
              0.5;
    }
    return cost;
  };

  // Pass 2: trail packing.
  Rect mbr = Rect::Empty(dims);
  int trail_start = 0;
  int trail_count = 0;
  auto flush_trail = [&] {
    if (trail_count == 0) {
      return;
    }
    const int64_t trail_id = static_cast<int64_t>(trails_.size());
    trails_.push_back(Trail{series_id, trail_start, trail_count});
    tree_->Insert(mbr, trail_id);
    mbr = Rect::Empty(dims);
    trail_count = 0;
  };
  for (int start = 0; start < num_offsets; ++start) {
    const Rect point_rect = Rect::FromPoint(points[static_cast<size_t>(start)]);
    bool close_current = trail_count >= options_.max_trail_length;
    if (!close_current && trail_count > 0 &&
        options_.packing == TrailPacking::kAdaptive) {
      // [FRM94] marginal-cost criterion: the index's total expected access
      // cost is the sum of Π(L_i + 0.5) over sub-trail MBRs. Appending the
      // point grows the current MBR's cost; splitting adds a fresh
      // point-MBR costing 0.5^d. Append while growing is the cheaper of
      // the two.
      const Rect grown = Rect::Union(mbr, point_rect);
      const double growth =
          normalized_cost(grown) - normalized_cost(mbr);
      const double fresh = normalized_cost(point_rect);
      close_current = growth > fresh;
    }
    if (close_current) {
      flush_trail();
    }
    if (trail_count == 0) {
      trail_start = start;
    }
    mbr.ExpandToInclude(point_rect);
    ++trail_count;
  }
  flush_trail();
  num_windows_ += num_offsets;
  packed_.Invalidate();
  return series_id;
}

const PackedRTree& SubsequenceIndex::packed_rtree() const {
  return packed_.Get(*tree_);
}

std::vector<SubsequenceIndex::SubsequenceMatch> SubsequenceIndex::RangeSearch(
    const std::vector<double>& query, double epsilon,
    SearchStats* stats) const {
  SIMQ_CHECK_EQ(static_cast<int>(query.size()), options_.window);
  SIMQ_CHECK_GE(epsilon, 0.0);
  const std::vector<double> query_features = WindowFeatures(query.data());

  // Bounding box of the epsilon-ball around the query's feature point.
  // Feature distance lower-bounds window distance (Parseval prefix), so
  // every true match's feature point -- hence its covering trail MBR --
  // intersects this box.
  Point lo = query_features;
  Point hi = query_features;
  for (size_t d = 0; d < lo.size(); ++d) {
    lo[d] -= epsilon;
    hi[d] += epsilon;
  }
  const Rect box = Rect::FromBounds(lo, hi);

  // Packed traversal with inlined visitor lambdas (the generic overlap
  // predicate works for both entry MBR views and pointer-tree Rects).
  // Oversized-fanout configurations stay on the pointer tree: the packed
  // layout caps node fanout at PackedRTree::kMaxFanout.
  const auto overlaps_box = [&](const auto& rect) {
    for (int d = 0; d < box.dims(); ++d) {
      if (rect.lo(d) > box.hi(d) || rect.hi(d) < box.lo(d)) {
        return false;
      }
    }
    return true;
  };
  const bool use_packed =
      PackedRTree::SupportsFanout(options_.rtree.max_entries);
  const PackedRTree* packed = use_packed ? &packed_rtree() : nullptr;
  const int64_t accesses_before =
      use_packed ? packed->node_accesses() : tree_->node_accesses();
  std::vector<int64_t> trail_ids;
  trail_ids.reserve(64);
  const auto leaf_predicate = [&](const auto& rect, int64_t) {
    return overlaps_box(rect);
  };
  const auto emit = [&](int64_t id) { trail_ids.push_back(id); };
  if (use_packed) {
    packed->SearchGeneric(overlaps_box, leaf_predicate, emit);
  } else {
    tree_->SearchGeneric(overlaps_box, leaf_predicate, emit);
  }

  std::vector<SubsequenceMatch> matches;
  int64_t windows_checked = 0;
  for (const int64_t trail_id : trail_ids) {
    const Trail& trail = trails_[static_cast<size_t>(trail_id)];
    const std::vector<double>& values =
        series_[static_cast<size_t>(trail.series_id)];
    for (int offset = trail.start; offset < trail.start + trail.count;
         ++offset) {
      ++windows_checked;
      const double distance = WindowDistance(
          query, values.data() + offset, epsilon);
      if (distance <= epsilon) {
        matches.push_back(SubsequenceMatch{trail.series_id, offset, distance});
      }
    }
  }
  if (stats != nullptr) {
    stats->node_accesses =
        (use_packed ? packed->node_accesses() : tree_->node_accesses()) -
        accesses_before;
    stats->trails_retrieved = static_cast<int64_t>(trail_ids.size());
    stats->windows_checked = windows_checked;
  }
  SortMatches(&matches);
  return matches;
}

std::vector<SubsequenceIndex::SubsequenceMatch> SubsequenceIndex::ScanSearch(
    const std::vector<double>& query, double epsilon,
    SearchStats* stats) const {
  SIMQ_CHECK_EQ(static_cast<int>(query.size()), options_.window);
  SIMQ_CHECK_GE(epsilon, 0.0);
  std::vector<SubsequenceMatch> matches;
  int64_t windows_checked = 0;
  for (size_t series_id = 0; series_id < series_.size(); ++series_id) {
    const std::vector<double>& values = series_[series_id];
    const int num_offsets =
        static_cast<int>(values.size()) - options_.window + 1;
    for (int offset = 0; offset < num_offsets; ++offset) {
      ++windows_checked;
      const double distance =
          WindowDistance(query, values.data() + offset, epsilon);
      if (distance <= epsilon) {
        matches.push_back(SubsequenceMatch{static_cast<int64_t>(series_id),
                                           offset, distance});
      }
    }
  }
  if (stats != nullptr) {
    stats->node_accesses = 0;
    stats->trails_retrieved = 0;
    stats->windows_checked = windows_checked;
  }
  SortMatches(&matches);
  return matches;
}

}  // namespace simq
