// The transformation language of the framework: a pair of vectors (a, b)
// where a is a per-dimension stretch and b a per-dimension translation
// ([JMM95] as specialized by [RM97] §3). Over k complex feature coefficients
// the transformation maps x to a * x + b (element-wise).
//
// Safety (Definition 1 of [RM97]): a transformation is safe in a feature
// space if it maps rectangles to rectangles, preserving interiority.
//   Theorem 1: real a, real b       -> safe anywhere.
//   Theorem 2: real a, complex b    -> safe in S_rect.
//   Theorem 3: complex a, b = 0     -> safe in S_pol.
// LowerToFeatureSpace() turns a safe transformation into the per-real-
// dimension affine actions used by the index search (Algorithm 1: the
// transformed index I' is constructed on the fly by transforming MBRs).

#ifndef SIMQ_GEOM_LINEAR_TRANSFORM_H_
#define SIMQ_GEOM_LINEAR_TRANSFORM_H_

#include <vector>

#include "ts/dft.h"
#include "ts/feature.h"

namespace simq {

class LinearTransform {
 public:
  // Identity over k coefficients: a = 1, b = 0.
  static LinearTransform Identity(int num_coefficients);

  // Index-level transform from a full-length spectral multiplier: uses
  // multiplier entries for frequencies 1..k (frequency 0 is the dropped
  // normal-form mean coefficient).
  static LinearTransform FromSpectrum(const Spectrum& multiplier,
                                      int num_coefficients);

  LinearTransform(std::vector<Complex> stretch, std::vector<Complex> shift);

  int num_coefficients() const { return static_cast<int>(stretch_.size()); }
  const std::vector<Complex>& stretch() const { return stretch_; }
  const std::vector<Complex>& shift() const { return shift_; }

  bool IsIdentity() const;
  // Theorem 2 precondition: every stretch component is real.
  bool IsSafeRectangular() const;
  // Theorem 3 precondition: every shift component is zero.
  bool IsSafePolar() const;
  bool IsSafeIn(FeatureSpace space) const;

  // a * x + b, element-wise. x must have num_coefficients entries.
  std::vector<Complex> Apply(const std::vector<Complex>& x) const;

  // The transformation "first, then this": x -> a2*(a1*x + b1) + b2.
  LinearTransform ComposeAfter(const LinearTransform& first) const;

 private:
  std::vector<Complex> stretch_;
  std::vector<Complex> shift_;
};

// Per-real-dimension action of a safe transformation on index coordinates.
// Linear dimensions map x -> scale * x + offset; angle dimensions rotate by
// `offset` (scale is fixed at 1 by Theorem 3).
struct DimAffine {
  double scale = 1.0;
  double offset = 0.0;
  bool is_angle = false;
};

// Lowers `transform` onto the real index layout described by `config`.
// SIMQ_CHECKs that the transformation is safe in config.space.
// Mean/std dimensions (if present) receive the identity action.
std::vector<DimAffine> LowerToFeatureSpace(const LinearTransform& transform,
                                           const FeatureConfig& config);

// Applies per-dimension actions to an index point (angle dimensions are
// renormalized into [-pi, pi)). Used at R-tree leaves and in tests.
std::vector<double> ApplyDimAffines(const std::vector<DimAffine>& affines,
                                    const std::vector<double>& point);

}  // namespace simq

#endif  // SIMQ_GEOM_LINEAR_TRANSFORM_H_
