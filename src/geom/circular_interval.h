// Intervals on the unit circle for phase-angle dimensions of the polar
// feature space S_pol.
//
// Transformed MBRs and polar search rectangles rotate angle intervals
// (Theorem 3: a polar-safe transformation shifts the angle dimension), so
// they can cross the +-pi boundary. [RM97] elides this; we handle it
// explicitly. Angles are normalized to [-pi, pi).

#ifndef SIMQ_GEOM_CIRCULAR_INTERVAL_H_
#define SIMQ_GEOM_CIRCULAR_INTERVAL_H_

#include <cmath>

namespace simq {

// Maps any angle to the equivalent value in [-pi, pi). Defined inline
// (with branch-only fast tiers for the near-range inputs the index hot
// paths produce: stored angles are already normalized, rotations add at
// most 2*pi) so the arc tests in both traversal engines avoid the fmod.
inline double NormalizeAngle(double angle) {
  if (angle < M_PI) {
    if (angle >= -M_PI) {
      return angle;
    }
    if (angle >= -3.0 * M_PI) {
      return angle + 2.0 * M_PI;
    }
  } else if (angle < 3.0 * M_PI) {
    return angle - 2.0 * M_PI;
  }
  double result = std::fmod(angle + M_PI, 2.0 * M_PI);
  if (result < 0.0) {
    result += 2.0 * M_PI;
  }
  return result - M_PI;
}

// A closed arc travelled counterclockwise from `lo` to `hi`. If the
// underlying extent reaches 2*pi the interval is the full circle.
class CircularInterval {
 public:
  // Arc [center - half_width, center + half_width]; half_width >= 0.
  // half_width >= pi yields the full circle.
  static CircularInterval FromCenter(double center, double half_width);

  // Arc from lo to hi counterclockwise (lo, hi in any representation;
  // extent is hi - lo which must be in [0, 2*pi] after clamping).
  static CircularInterval FromBounds(double lo, double hi);

  static CircularInterval FullCircle();

  bool is_full() const { return full_; }
  // Start of the arc in [-pi, pi); meaningless when full.
  double lo() const { return lo_; }
  // Counterclockwise extent in [0, 2*pi].
  double extent() const { return extent_; }

  // Rotates the arc by `delta` radians.
  CircularInterval Rotated(double delta) const {
    if (full_) {
      return *this;
    }
    return CircularInterval(NormalizeAngle(lo_ + delta), extent_, false);
  }

  bool Contains(double angle) const {
    if (full_) {
      return true;
    }
    // Offset of `angle` counterclockwise from lo_, in [0, 2*pi).
    double offset = NormalizeAngle(angle) - lo_;
    if (offset < 0.0) {
      offset += 2.0 * M_PI;
    }
    return offset <= extent_;
  }

  bool Overlaps(const CircularInterval& other) const {
    if (full_ || other.full_) {
      return true;
    }
    // Arcs overlap iff either start point lies within the other arc.
    return Contains(other.lo_) || other.Contains(lo_);
  }

  // Smallest absolute angular separation between `angle` and the arc
  // (0 if contained). Result in [0, pi].
  double AngularDistance(double angle) const;

 private:
  CircularInterval(double lo, double extent, bool full)
      : lo_(lo), extent_(extent), full_(full) {}

  double lo_ = 0.0;
  double extent_ = 0.0;
  bool full_ = false;
};

}  // namespace simq

#endif  // SIMQ_GEOM_CIRCULAR_INTERVAL_H_
