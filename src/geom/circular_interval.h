// Intervals on the unit circle for phase-angle dimensions of the polar
// feature space S_pol.
//
// Transformed MBRs and polar search rectangles rotate angle intervals
// (Theorem 3: a polar-safe transformation shifts the angle dimension), so
// they can cross the +-pi boundary. [RM97] elides this; we handle it
// explicitly. Angles are normalized to [-pi, pi).

#ifndef SIMQ_GEOM_CIRCULAR_INTERVAL_H_
#define SIMQ_GEOM_CIRCULAR_INTERVAL_H_

namespace simq {

// Maps any angle to the equivalent value in [-pi, pi).
double NormalizeAngle(double angle);

// A closed arc travelled counterclockwise from `lo` to `hi`. If the
// underlying extent reaches 2*pi the interval is the full circle.
class CircularInterval {
 public:
  // Arc [center - half_width, center + half_width]; half_width >= 0.
  // half_width >= pi yields the full circle.
  static CircularInterval FromCenter(double center, double half_width);

  // Arc from lo to hi counterclockwise (lo, hi in any representation;
  // extent is hi - lo which must be in [0, 2*pi] after clamping).
  static CircularInterval FromBounds(double lo, double hi);

  static CircularInterval FullCircle();

  bool is_full() const { return full_; }
  // Start of the arc in [-pi, pi); meaningless when full.
  double lo() const { return lo_; }
  // Counterclockwise extent in [0, 2*pi].
  double extent() const { return extent_; }

  // Rotates the arc by `delta` radians.
  CircularInterval Rotated(double delta) const;

  bool Contains(double angle) const;
  bool Overlaps(const CircularInterval& other) const;

  // Smallest absolute angular separation between `angle` and the arc
  // (0 if contained). Result in [0, pi].
  double AngularDistance(double angle) const;

 private:
  CircularInterval(double lo, double extent, bool full)
      : lo_(lo), extent_(extent), full_(full) {}

  double lo_ = 0.0;
  double extent_ = 0.0;
  bool full_ = false;
};

}  // namespace simq

#endif  // SIMQ_GEOM_CIRCULAR_INTERVAL_H_
