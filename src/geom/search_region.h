// Query-side geometry for similarity search over the feature index.
//
// SearchRegion is the "search rectangle" of [RM97] §3.1 (Figure 7): the
// minimum bounding region, in index coordinates, of all feature points
// within Euclidean distance epsilon of the query -- per-dimension
// [q - eps, q + eps] boxes in S_rect; magnitude bands [m - eps, m + eps]
// combined with angle arcs of half-width asin(eps/m) in S_pol. The region
// answers overlap/containment tests against *transformed* index entries,
// implementing the search step of Algorithm 2 (apply T to every MBR/point of
// the index, test against the search rectangle).
//
// NnLowerBound provides the MINDIST-style lower bounds ([RKV95]) used by the
// branch-and-bound nearest-neighbor search, generalized to transformed
// rectangles and to the polar space (distance from a complex point to an
// annular sector).

#ifndef SIMQ_GEOM_SEARCH_REGION_H_
#define SIMQ_GEOM_SEARCH_REGION_H_

#include <vector>

#include "geom/circular_interval.h"
#include "geom/linear_transform.h"
#include "geom/rect.h"
#include "ts/dft.h"
#include "ts/feature.h"

namespace simq {

class SearchRegion {
 public:
  // Builds the search region for "feature distance <= epsilon from the
  // point whose first k coefficients are query_coeffs", laid out per
  // `config`. Mean/std dimensions (if configured) start unconstrained.
  static SearchRegion MakeRange(const std::vector<Complex>& query_coeffs,
                                double epsilon, const FeatureConfig& config);

  // Optional [GK95]-style predicates on the statistics dimensions.
  // Requires config.include_mean_std.
  void ConstrainMean(double lo, double hi);
  void ConstrainStd(double lo, double hi);

  // Tests against untransformed entries (identity transformation).
  bool IntersectsRect(const Rect& rect) const;
  bool ContainsPoint(const std::vector<double>& point) const;

  // Tests against entries transformed by the per-dimension actions obtained
  // from LowerToFeatureSpace. This is how one R-tree serves many
  // transformations without rebuilding (Algorithm 1).
  bool IntersectsTransformedRect(const Rect& rect,
                                 const std::vector<DimAffine>& affines) const;
  bool ContainsTransformedPoint(const std::vector<double>& point,
                                const std::vector<DimAffine>& affines) const;

  int dims() const { return static_cast<int>(dims_.size()); }

  // Plane-at-a-time access for engines that evaluate one dimension across
  // many entries (index/packed_rtree.cc compiles these into a per-query
  // dimension plan). Linear dimensions expose [DimLo, DimHi]; circular
  // dimensions expose the arc.
  bool DimIsCircular(int d) const {
    return dims_[static_cast<size_t>(d)].circular;
  }
  double DimLo(int d) const { return dims_[static_cast<size_t>(d)].lo; }
  double DimHi(int d) const { return dims_[static_cast<size_t>(d)].hi; }
  const CircularInterval& DimArc(int d) const {
    return dims_[static_cast<size_t>(d)].arc;
  }

 private:
  struct Dim {
    bool circular = false;
    // Linear bounds; +-infinity when unconstrained. Unused if circular.
    double lo = 0.0;
    double hi = 0.0;
    CircularInterval arc = CircularInterval::FullCircle();
  };

  SearchRegion() = default;

  std::vector<Dim> dims_;
  bool include_mean_std_ = false;
};

// Smallest Euclidean distance in the complex plane from point `p` to the
// annular sector {r e^{i theta} : r in [mag_lo, mag_hi], theta in arc}.
// Requires 0 <= mag_lo <= mag_hi.
double MinDistToAnnularSector(const Complex& p, double mag_lo, double mag_hi,
                              const CircularInterval& arc);

// Lower bounds on the (full, frequency-domain) Euclidean distance between
// the transformed data series and the query, computed from the k indexed
// coefficients only. Valid for nearest-neighbor pruning by the Lemma 1
// argument: dropped coefficients only add nonnegative terms.
class NnLowerBound {
 public:
  NnLowerBound(std::vector<Complex> query_coeffs, const FeatureConfig& config);

  // Lower bound against a node MBR transformed by `affines`.
  double ToTransformedRect(const Rect& rect,
                           const std::vector<DimAffine>& affines) const;

  // Exact feature-subspace distance to a transformed leaf point (still a
  // lower bound on the full distance).
  double ToTransformedPoint(const std::vector<double>& point,
                            const std::vector<DimAffine>& affines) const;

  // Strided cores of the two bounds above: dimension d lives at
  // lo[d * stride] / hi[d * stride] (point[d * stride]). The Rect/vector
  // overloads forward here with stride 1, so both index engines run
  // bit-identical arithmetic (node-access parity depends on it).
  double ToTransformedBounds(const double* lo, const double* hi,
                             int64_t stride,
                             const std::vector<DimAffine>& affines) const;
  double ToTransformedPoint(const double* point, int64_t stride,
                            const std::vector<DimAffine>& affines) const;

 private:
  std::vector<Complex> query_coeffs_;
  FeatureConfig config_;
};

}  // namespace simq

#endif  // SIMQ_GEOM_SEARCH_REGION_H_
