#include "geom/search_region.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Transformed interval of [lo, hi] under a linear (non-angle) action;
// a negative scale swaps the endpoints.
void TransformLinearInterval(const DimAffine& affine, double lo, double hi,
                             double* out_lo, double* out_hi) {
  const double a = affine.scale * lo + affine.offset;
  const double b = affine.scale * hi + affine.offset;
  *out_lo = std::min(a, b);
  *out_hi = std::max(a, b);
}

double PointToSegmentDistance(const Complex& p, const Complex& a,
                              const Complex& b) {
  const Complex ab = b - a;
  const double len_sq = std::norm(ab);
  if (len_sq == 0.0) {
    return std::abs(p - a);
  }
  double t = ((p.real() - a.real()) * ab.real() +
              (p.imag() - a.imag()) * ab.imag()) /
             len_sq;
  t = std::clamp(t, 0.0, 1.0);
  const Complex closest = a + t * ab;
  return std::abs(p - closest);
}

}  // namespace

SearchRegion SearchRegion::MakeRange(const std::vector<Complex>& query_coeffs,
                                     double epsilon,
                                     const FeatureConfig& config) {
  SIMQ_CHECK_EQ(static_cast<int>(query_coeffs.size()),
                config.num_coefficients);
  SIMQ_CHECK_GE(epsilon, 0.0);

  SearchRegion region;
  region.include_mean_std_ = config.include_mean_std;
  if (config.include_mean_std) {
    region.dims_.push_back(Dim{false, -kInf, kInf, CircularInterval::FullCircle()});
    region.dims_.push_back(Dim{false, -kInf, kInf, CircularInterval::FullCircle()});
  }
  for (const Complex& q : query_coeffs) {
    if (config.space == FeatureSpace::kRectangular) {
      region.dims_.push_back(Dim{false, q.real() - epsilon, q.real() + epsilon,
                                 CircularInterval::FullCircle()});
      region.dims_.push_back(Dim{false, q.imag() - epsilon, q.imag() + epsilon,
                                 CircularInterval::FullCircle()});
    } else {
      const double mag = std::abs(q);
      const double angle = std::arg(q);
      Dim mag_dim;
      mag_dim.circular = false;
      mag_dim.lo = std::max(0.0, mag - epsilon);
      mag_dim.hi = mag + epsilon;
      region.dims_.push_back(mag_dim);

      Dim angle_dim;
      angle_dim.circular = true;
      if (epsilon >= mag) {
        // The epsilon-ball contains the origin: every phase is possible.
        angle_dim.arc = CircularInterval::FullCircle();
      } else {
        angle_dim.arc =
            CircularInterval::FromCenter(angle, std::asin(epsilon / mag));
      }
      region.dims_.push_back(angle_dim);
    }
  }
  return region;
}

void SearchRegion::ConstrainMean(double lo, double hi) {
  SIMQ_CHECK(include_mean_std_);
  SIMQ_CHECK_LE(lo, hi);
  dims_[0].lo = lo;
  dims_[0].hi = hi;
}

void SearchRegion::ConstrainStd(double lo, double hi) {
  SIMQ_CHECK(include_mean_std_);
  SIMQ_CHECK_LE(lo, hi);
  dims_[1].lo = lo;
  dims_[1].hi = hi;
}

bool SearchRegion::IntersectsRect(const Rect& rect) const {
  SIMQ_DCHECK(rect.dims() == dims());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    const double lo = rect.lo(static_cast<int>(d));
    const double hi = rect.hi(static_cast<int>(d));
    if (dim.circular) {
      if (hi - lo >= 2.0 * M_PI) {
        continue;
      }
      if (!dim.arc.Overlaps(CircularInterval::FromBounds(lo, hi))) {
        return false;
      }
    } else {
      if (lo > dim.hi || hi < dim.lo) {
        return false;
      }
    }
  }
  return true;
}

bool SearchRegion::ContainsPoint(const std::vector<double>& point) const {
  SIMQ_DCHECK(static_cast<int>(point.size()) == dims());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    if (dim.circular) {
      if (!dim.arc.Contains(point[d])) {
        return false;
      }
    } else {
      if (point[d] < dim.lo || point[d] > dim.hi) {
        return false;
      }
    }
  }
  return true;
}

bool SearchRegion::IntersectsTransformedRect(
    const Rect& rect, const std::vector<DimAffine>& affines) const {
  SIMQ_DCHECK(rect.dims() == dims());
  SIMQ_DCHECK(affines.size() == dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    const DimAffine& affine = affines[d];
    const double lo = rect.lo(static_cast<int>(d));
    const double hi = rect.hi(static_cast<int>(d));
    if (affine.is_angle) {
      SIMQ_DCHECK(dim.circular);
      if (hi - lo >= 2.0 * M_PI) {
        continue;
      }
      const CircularInterval data_arc =
          CircularInterval::FromBounds(lo, hi).Rotated(affine.offset);
      if (!dim.arc.Overlaps(data_arc)) {
        return false;
      }
    } else if (dim.circular) {
      // Identity action on an angle dimension (e.g. no-transform query).
      if (hi - lo >= 2.0 * M_PI) {
        continue;
      }
      if (!dim.arc.Overlaps(CircularInterval::FromBounds(lo, hi))) {
        return false;
      }
    } else {
      double tlo;
      double thi;
      TransformLinearInterval(affine, lo, hi, &tlo, &thi);
      if (tlo > dim.hi || thi < dim.lo) {
        return false;
      }
    }
  }
  return true;
}

bool SearchRegion::ContainsTransformedPoint(
    const std::vector<double>& point,
    const std::vector<DimAffine>& affines) const {
  SIMQ_DCHECK(point.size() == dims_.size());
  SIMQ_DCHECK(affines.size() == dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    const DimAffine& affine = affines[d];
    if (affine.is_angle || dim.circular) {
      const double angle = NormalizeAngle(point[d] + affine.offset);
      if (!dim.arc.Contains(angle)) {
        return false;
      }
    } else {
      const double value = affine.scale * point[d] + affine.offset;
      if (value < dim.lo || value > dim.hi) {
        return false;
      }
    }
  }
  return true;
}

double MinDistToAnnularSector(const Complex& p, double mag_lo, double mag_hi,
                              const CircularInterval& arc) {
  SIMQ_CHECK_GE(mag_lo, 0.0);
  SIMQ_CHECK_LE(mag_lo, mag_hi);
  const double mag = std::abs(p);
  const double angle = std::arg(p);

  if (arc.is_full() || arc.Contains(angle)) {
    // Purely radial gap.
    if (mag < mag_lo) {
      return mag_lo - mag;
    }
    if (mag > mag_hi) {
      return mag - mag_hi;
    }
    return 0.0;
  }

  // The nearest boundary point lies on one of the two radial edge segments
  // (arc endpoints are segment endpoints, so corners are covered).
  const double a0 = arc.lo();
  const double a1 = arc.lo() + arc.extent();
  auto edge_distance = [&](double theta) {
    const Complex lo_pt(mag_lo * std::cos(theta), mag_lo * std::sin(theta));
    const Complex hi_pt(mag_hi * std::cos(theta), mag_hi * std::sin(theta));
    return PointToSegmentDistance(p, lo_pt, hi_pt);
  };
  return std::min(edge_distance(a0), edge_distance(a1));
}

NnLowerBound::NnLowerBound(std::vector<Complex> query_coeffs,
                           const FeatureConfig& config)
    : query_coeffs_(std::move(query_coeffs)), config_(config) {
  SIMQ_CHECK_EQ(static_cast<int>(query_coeffs_.size()),
                config_.num_coefficients);
}

double NnLowerBound::ToTransformedRect(
    const Rect& rect, const std::vector<DimAffine>& affines) const {
  SIMQ_DCHECK(rect.dims() == FeatureDimension(config_));
  return ToTransformedBounds(rect.lo_data(), rect.hi_data(), 1, affines);
}

double NnLowerBound::ToTransformedBounds(
    const double* lo, const double* hi, int64_t stride,
    const std::vector<DimAffine>& affines) const {
  const int base = config_.include_mean_std ? 2 : 0;
  double sum_sq = 0.0;
  for (int c = 0; c < config_.num_coefficients; ++c) {
    const int d0 = base + 2 * c;
    const int d1 = d0 + 1;
    const double lo0 = lo[d0 * stride];
    const double hi0 = hi[d0 * stride];
    const double lo1 = lo[d1 * stride];
    const double hi1 = hi[d1 * stride];
    const Complex& q = query_coeffs_[static_cast<size_t>(c)];
    if (config_.space == FeatureSpace::kRectangular) {
      double re_lo;
      double re_hi;
      double im_lo;
      double im_hi;
      TransformLinearInterval(affines[static_cast<size_t>(d0)], lo0, hi0,
                              &re_lo, &re_hi);
      TransformLinearInterval(affines[static_cast<size_t>(d1)], lo1, hi1,
                              &im_lo, &im_hi);
      double gap_re = 0.0;
      if (q.real() < re_lo) {
        gap_re = re_lo - q.real();
      } else if (q.real() > re_hi) {
        gap_re = q.real() - re_hi;
      }
      double gap_im = 0.0;
      if (q.imag() < im_lo) {
        gap_im = im_lo - q.imag();
      } else if (q.imag() > im_hi) {
        gap_im = q.imag() - im_hi;
      }
      sum_sq += gap_re * gap_re + gap_im * gap_im;
    } else {
      double mag_lo;
      double mag_hi;
      TransformLinearInterval(affines[static_cast<size_t>(d0)], lo0, hi0,
                              &mag_lo, &mag_hi);
      mag_lo = std::max(0.0, mag_lo);
      mag_hi = std::max(0.0, mag_hi);
      CircularInterval arc = CircularInterval::FullCircle();
      if (hi1 - lo1 < 2.0 * M_PI) {
        arc = CircularInterval::FromBounds(lo1, hi1)
                  .Rotated(affines[static_cast<size_t>(d1)].offset);
      }
      const double dist = MinDistToAnnularSector(q, mag_lo, mag_hi, arc);
      sum_sq += dist * dist;
    }
  }
  return std::sqrt(sum_sq);
}

double NnLowerBound::ToTransformedPoint(
    const std::vector<double>& point,
    const std::vector<DimAffine>& affines) const {
  SIMQ_DCHECK(static_cast<int>(point.size()) == FeatureDimension(config_));
  return ToTransformedPoint(point.data(), 1, affines);
}

double NnLowerBound::ToTransformedPoint(
    const double* point, int64_t stride,
    const std::vector<DimAffine>& affines) const {
  const int base = config_.include_mean_std ? 2 : 0;
  double sum_sq = 0.0;
  for (int c = 0; c < config_.num_coefficients; ++c) {
    const size_t d0 = static_cast<size_t>(base + 2 * c);
    const size_t d1 = d0 + 1;
    const double p0 = point[static_cast<int64_t>(d0) * stride];
    const double p1 = point[static_cast<int64_t>(d1) * stride];
    const Complex& q = query_coeffs_[static_cast<size_t>(c)];
    if (config_.space == FeatureSpace::kRectangular) {
      const double re = affines[d0].scale * p0 + affines[d0].offset;
      const double im = affines[d1].scale * p1 + affines[d1].offset;
      sum_sq += std::norm(Complex(re, im) - q);
    } else {
      // The degenerate case of the annular-sector bound above, run
      // through the SAME primitives. Reconstructing the complex value
      // with std::polar and subtracting would add ~1 ulp of rounding to
      // an exact-zero distance, so the "lower bound" of a record whose
      // coordinates equal the query's could exceed its exact distance --
      // and a kNN tie at the k-th distance would then be broken by tree
      // shape instead of by id (the sharded scatter-gather kNN depends
      // on bounds never overshooting exact distances; see DESIGN.md).
      // Here, equal coordinates take the radial-gap branch and produce
      // exactly 0.
      double mag_lo;
      double mag_hi;
      TransformLinearInterval(affines[d0], p0, p0, &mag_lo, &mag_hi);
      mag_lo = std::max(0.0, mag_lo);
      mag_hi = std::max(0.0, mag_hi);
      const CircularInterval arc =
          CircularInterval::FromBounds(p1, p1).Rotated(affines[d1].offset);
      const double dist = MinDistToAnnularSector(q, mag_lo, mag_hi, arc);
      sum_sq += dist * dist;
    }
  }
  return std::sqrt(sum_sq);
}

}  // namespace simq
