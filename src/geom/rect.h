// Axis-aligned hyper-rectangles (minimum bounding rectangles) with the
// metrics needed by the R*-tree insertion and split heuristics: area,
// margin, overlap, enlargement, and center distance.

#ifndef SIMQ_GEOM_RECT_H_
#define SIMQ_GEOM_RECT_H_

#include <string>
#include <vector>

namespace simq {

using Point = std::vector<double>;

class Rect {
 public:
  Rect() = default;

  // An "empty" rectangle: lo = +inf, hi = -inf in every dimension; the
  // identity element of ExpandToInclude.
  static Rect Empty(int dims);

  // Degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point& point);

  // Requires lo[d] <= hi[d] for all d.
  static Rect FromBounds(Point lo, Point hi);

  int dims() const { return static_cast<int>(lo_.size()); }
  double lo(int d) const { return lo_[static_cast<size_t>(d)]; }
  double hi(int d) const { return hi_[static_cast<size_t>(d)]; }
  // Contiguous per-dimension bounds (stride 1), for the strided geometry
  // cores shared with the packed index arena.
  const double* lo_data() const { return lo_.data(); }
  const double* hi_data() const { return hi_.data(); }
  bool IsEmpty() const;

  bool Overlaps(const Rect& other) const;
  bool Contains(const Rect& other) const;
  bool ContainsPoint(const Point& point) const;

  void ExpandToInclude(const Rect& other);
  static Rect Union(const Rect& a, const Rect& b);

  // Product of side lengths.
  double Area() const;
  // Sum of side lengths (the R* "margin").
  double Margin() const;
  // Area of the intersection with `other` (0 if disjoint).
  double OverlapArea(const Rect& other) const;
  // Area(Union(this, added)) - Area(this).
  double Enlargement(const Rect& added) const;

  Point Center() const;
  double CenterDistanceSquared(const Rect& other) const;

  // Squared MINDIST from a point to this rectangle (0 if inside).
  double MinDistSquaredToPoint(const Point& point) const;

  std::string DebugString() const;

 private:
  Rect(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {}

  Point lo_;
  Point hi_;
};

}  // namespace simq

#endif  // SIMQ_GEOM_RECT_H_
