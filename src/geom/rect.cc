#include "geom/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace simq {

Rect Rect::Empty(int dims) {
  SIMQ_CHECK_GT(dims, 0);
  Point lo(static_cast<size_t>(dims), std::numeric_limits<double>::infinity());
  Point hi(static_cast<size_t>(dims),
           -std::numeric_limits<double>::infinity());
  return Rect(std::move(lo), std::move(hi));
}

Rect Rect::FromPoint(const Point& point) {
  SIMQ_CHECK(!point.empty());
  return Rect(point, point);
}

Rect Rect::FromBounds(Point lo, Point hi) {
  SIMQ_CHECK_EQ(lo.size(), hi.size());
  SIMQ_CHECK(!lo.empty());
  for (size_t d = 0; d < lo.size(); ++d) {
    SIMQ_CHECK_LE(lo[d], hi[d]);
  }
  return Rect(std::move(lo), std::move(hi));
}

bool Rect::IsEmpty() const {
  if (lo_.empty()) {
    return true;
  }
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (lo_[d] > hi_[d]) {
      return true;
    }
  }
  return false;
}

bool Rect::Overlaps(const Rect& other) const {
  SIMQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (lo_[d] > other.hi_[d] || hi_[d] < other.lo_[d]) {
      return false;
    }
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  SIMQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) {
      return false;
    }
  }
  return true;
}

bool Rect::ContainsPoint(const Point& point) const {
  SIMQ_DCHECK(point.size() == lo_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (point[d] < lo_[d] || point[d] > hi_[d]) {
      return false;
    }
  }
  return true;
}

void Rect::ExpandToInclude(const Rect& other) {
  if (lo_.empty()) {
    *this = other;
    return;
  }
  SIMQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect result = a;
  result.ExpandToInclude(b);
  return result;
}

double Rect::Area() const {
  double area = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double side = hi_[d] - lo_[d];
    if (side < 0.0) {
      return 0.0;
    }
    area *= side;
  }
  return area;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    margin += std::max(0.0, hi_[d] - lo_[d]);
  }
  return margin;
}

double Rect::OverlapArea(const Rect& other) const {
  SIMQ_DCHECK(dims() == other.dims());
  double area = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double lo = std::max(lo_[d], other.lo_[d]);
    const double hi = std::min(hi_[d], other.hi_[d]);
    if (hi <= lo) {
      return 0.0;
    }
    area *= hi - lo;
  }
  return area;
}

double Rect::Enlargement(const Rect& added) const {
  return Union(*this, added).Area() - Area();
}

Point Rect::Center() const {
  Point center(lo_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    center[d] = 0.5 * (lo_[d] + hi_[d]);
  }
  return center;
}

double Rect::CenterDistanceSquared(const Rect& other) const {
  SIMQ_DCHECK(dims() == other.dims());
  double sum = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double diff =
        0.5 * ((lo_[d] + hi_[d]) - (other.lo_[d] + other.hi_[d]));
    sum += diff * diff;
  }
  return sum;
}

double Rect::MinDistSquaredToPoint(const Point& point) const {
  SIMQ_DCHECK(point.size() == lo_.size());
  double sum = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    double gap = 0.0;
    if (point[d] < lo_[d]) {
      gap = lo_[d] - point[d];
    } else if (point[d] > hi_[d]) {
      gap = point[d] - hi_[d];
    }
    sum += gap * gap;
  }
  return sum;
}

std::string Rect::DebugString() const {
  std::ostringstream out;
  out << "[";
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (d > 0) {
      out << ", ";
    }
    out << "(" << lo_[d] << "," << hi_[d] << ")";
  }
  out << "]";
  return out.str();
}

}  // namespace simq
