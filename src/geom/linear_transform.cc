#include "geom/linear_transform.h"

#include <cmath>

#include "geom/circular_interval.h"
#include "util/logging.h"

namespace simq {

LinearTransform LinearTransform::Identity(int num_coefficients) {
  SIMQ_CHECK_GT(num_coefficients, 0);
  return LinearTransform(
      std::vector<Complex>(static_cast<size_t>(num_coefficients),
                           Complex(1.0, 0.0)),
      std::vector<Complex>(static_cast<size_t>(num_coefficients),
                           Complex(0.0, 0.0)));
}

LinearTransform LinearTransform::FromSpectrum(const Spectrum& multiplier,
                                              int num_coefficients) {
  SIMQ_CHECK_GT(num_coefficients, 0);
  SIMQ_CHECK_GT(multiplier.size(), static_cast<size_t>(num_coefficients))
      << "multiplier must cover frequencies 1..k";
  std::vector<Complex> stretch(static_cast<size_t>(num_coefficients));
  for (int c = 0; c < num_coefficients; ++c) {
    stretch[static_cast<size_t>(c)] = multiplier[static_cast<size_t>(c) + 1];
  }
  return LinearTransform(
      std::move(stretch),
      std::vector<Complex>(static_cast<size_t>(num_coefficients),
                           Complex(0.0, 0.0)));
}

LinearTransform::LinearTransform(std::vector<Complex> stretch,
                                 std::vector<Complex> shift)
    : stretch_(std::move(stretch)), shift_(std::move(shift)) {
  SIMQ_CHECK(!stretch_.empty());
  SIMQ_CHECK_EQ(stretch_.size(), shift_.size());
}

bool LinearTransform::IsIdentity() const {
  for (size_t i = 0; i < stretch_.size(); ++i) {
    if (stretch_[i] != Complex(1.0, 0.0) || shift_[i] != Complex(0.0, 0.0)) {
      return false;
    }
  }
  return true;
}

bool LinearTransform::IsSafeRectangular() const {
  for (const Complex& a : stretch_) {
    if (a.imag() != 0.0) {
      return false;
    }
  }
  return true;
}

bool LinearTransform::IsSafePolar() const {
  for (const Complex& b : shift_) {
    if (b != Complex(0.0, 0.0)) {
      return false;
    }
  }
  return true;
}

bool LinearTransform::IsSafeIn(FeatureSpace space) const {
  return space == FeatureSpace::kRectangular ? IsSafeRectangular()
                                             : IsSafePolar();
}

std::vector<Complex> LinearTransform::Apply(
    const std::vector<Complex>& x) const {
  SIMQ_CHECK_EQ(x.size(), stretch_.size());
  std::vector<Complex> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = stretch_[i] * x[i] + shift_[i];
  }
  return out;
}

LinearTransform LinearTransform::ComposeAfter(
    const LinearTransform& first) const {
  SIMQ_CHECK_EQ(stretch_.size(), first.stretch_.size());
  std::vector<Complex> stretch(stretch_.size());
  std::vector<Complex> shift(stretch_.size());
  for (size_t i = 0; i < stretch_.size(); ++i) {
    stretch[i] = stretch_[i] * first.stretch_[i];
    shift[i] = stretch_[i] * first.shift_[i] + shift_[i];
  }
  return LinearTransform(std::move(stretch), std::move(shift));
}

std::vector<DimAffine> LowerToFeatureSpace(const LinearTransform& transform,
                                           const FeatureConfig& config) {
  SIMQ_CHECK_EQ(transform.num_coefficients(), config.num_coefficients);
  SIMQ_CHECK(transform.IsSafeIn(config.space))
      << "transformation is not safe in the configured feature space";

  std::vector<DimAffine> affines;
  affines.reserve(static_cast<size_t>(FeatureDimension(config)));
  if (config.include_mean_std) {
    affines.push_back(DimAffine{});  // mean: identity
    affines.push_back(DimAffine{});  // std: identity
  }
  for (int c = 0; c < config.num_coefficients; ++c) {
    const Complex a = transform.stretch()[static_cast<size_t>(c)];
    const Complex b = transform.shift()[static_cast<size_t>(c)];
    if (config.space == FeatureSpace::kRectangular) {
      // (Re, Im) both stretch by the real a; shift splits into components
      // (proof of Theorem 2).
      affines.push_back(DimAffine{a.real(), b.real(), /*is_angle=*/false});
      affines.push_back(DimAffine{a.real(), b.imag(), /*is_angle=*/false});
    } else {
      // Magnitude scales by |a|, angle rotates by arg(a) (proof of
      // Theorem 3).
      affines.push_back(DimAffine{std::abs(a), 0.0, /*is_angle=*/false});
      affines.push_back(DimAffine{1.0, std::arg(a), /*is_angle=*/true});
    }
  }
  return affines;
}

std::vector<double> ApplyDimAffines(const std::vector<DimAffine>& affines,
                                    const std::vector<double>& point) {
  SIMQ_CHECK_EQ(affines.size(), point.size());
  std::vector<double> out(point.size());
  for (size_t d = 0; d < point.size(); ++d) {
    if (affines[d].is_angle) {
      SIMQ_DCHECK(affines[d].scale == 1.0);
      out[d] = NormalizeAngle(point[d] + affines[d].offset);
    } else {
      out[d] = affines[d].scale * point[d] + affines[d].offset;
    }
  }
  return out;
}

}  // namespace simq
