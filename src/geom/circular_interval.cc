#include "geom/circular_interval.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simq {

double NormalizeAngle(double angle) {
  double result = std::fmod(angle + M_PI, 2.0 * M_PI);
  if (result < 0.0) {
    result += 2.0 * M_PI;
  }
  return result - M_PI;
}

CircularInterval CircularInterval::FromCenter(double center,
                                              double half_width) {
  SIMQ_CHECK_GE(half_width, 0.0);
  if (half_width >= M_PI) {
    return FullCircle();
  }
  return CircularInterval(NormalizeAngle(center - half_width),
                          2.0 * half_width, /*full=*/false);
}

CircularInterval CircularInterval::FromBounds(double lo, double hi) {
  const double extent = hi - lo;
  SIMQ_CHECK_GE(extent, 0.0);
  if (extent >= 2.0 * M_PI) {
    return FullCircle();
  }
  return CircularInterval(NormalizeAngle(lo), extent, /*full=*/false);
}

CircularInterval CircularInterval::FullCircle() {
  return CircularInterval(-M_PI, 2.0 * M_PI, /*full=*/true);
}

CircularInterval CircularInterval::Rotated(double delta) const {
  if (full_) {
    return *this;
  }
  return CircularInterval(NormalizeAngle(lo_ + delta), extent_, false);
}

bool CircularInterval::Contains(double angle) const {
  if (full_) {
    return true;
  }
  // Offset of `angle` counterclockwise from lo_, in [0, 2*pi).
  double offset = NormalizeAngle(angle) - lo_;
  if (offset < 0.0) {
    offset += 2.0 * M_PI;
  }
  return offset <= extent_;
}

bool CircularInterval::Overlaps(const CircularInterval& other) const {
  if (full_ || other.full_) {
    return true;
  }
  // Arcs overlap iff either start point lies within the other arc.
  return Contains(other.lo_) || other.Contains(lo_);
}

double CircularInterval::AngularDistance(double angle) const {
  if (Contains(angle)) {
    return 0.0;
  }
  const double hi = lo_ + extent_;  // may exceed pi; endpoints compared below
  const double a = NormalizeAngle(angle);
  auto separation = [](double x, double y) {
    double diff = std::fabs(NormalizeAngle(x - y));
    return diff;  // NormalizeAngle output is in [-pi, pi): fabs is in [0, pi]
  };
  return std::min(separation(a, lo_), separation(a, hi));
}

}  // namespace simq
