#include "geom/circular_interval.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simq {

CircularInterval CircularInterval::FromCenter(double center,
                                              double half_width) {
  SIMQ_CHECK_GE(half_width, 0.0);
  if (half_width >= M_PI) {
    return FullCircle();
  }
  return CircularInterval(NormalizeAngle(center - half_width),
                          2.0 * half_width, /*full=*/false);
}

CircularInterval CircularInterval::FromBounds(double lo, double hi) {
  const double extent = hi - lo;
  SIMQ_CHECK_GE(extent, 0.0);
  if (extent >= 2.0 * M_PI) {
    return FullCircle();
  }
  return CircularInterval(NormalizeAngle(lo), extent, /*full=*/false);
}

CircularInterval CircularInterval::FullCircle() {
  return CircularInterval(-M_PI, 2.0 * M_PI, /*full=*/true);
}

double CircularInterval::AngularDistance(double angle) const {
  if (Contains(angle)) {
    return 0.0;
  }
  const double hi = lo_ + extent_;  // may exceed pi; endpoints compared below
  const double a = NormalizeAngle(angle);
  auto separation = [](double x, double y) {
    double diff = std::fabs(NormalizeAngle(x - y));
    return diff;  // NormalizeAngle output is in [-pi, pi): fabs is in [0, pi]
  };
  return std::min(separation(a, lo_), separation(a, hi));
}

}  // namespace simq
