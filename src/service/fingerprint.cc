#include "service/fingerprint.h"

#include <cstring>
#include <sstream>

namespace simq {
namespace {

// Exact bit-pattern rendering: equal doubles (including signed zeros and
// NaN payloads) produce equal text, distinct doubles distinct text.
void AppendBits(std::ostringstream* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  *out << std::hex << bits << std::dec;
}

void AppendSeries(std::ostringstream* out, const SeriesRef& series) {
  if (series.id.has_value()) {
    *out << "i" << *series.id;
  } else if (series.name.has_value()) {
    *out << "n" << series.name->size() << ":" << *series.name;
  } else {
    *out << "l";
    for (const double value : series.literal) {
      *out << ",";
      AppendBits(out, value);
    }
  }
}

void AppendRange(std::ostringstream* out, const char* tag,
                 const std::optional<std::pair<double, double>>& range) {
  if (!range.has_value()) {
    return;
  }
  *out << "|" << tag << "=";
  AppendBits(out, range->first);
  *out << ":";
  AppendBits(out, range->second);
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  std::ostringstream out;
  switch (query.kind) {
    case QueryKind::kRange:
      out << "R";
      break;
    case QueryKind::kAllPairs:
      out << "P";
      break;
    case QueryKind::kNearest:
      out << "N";
      break;
  }
  // Length-prefix the relation name so it can never run into the clauses.
  out << "|" << query.relation.size() << ":" << query.relation;

  if (query.kind == QueryKind::kNearest) {
    out << "|k=" << query.k;
  } else {
    out << "|e=";
    AppendBits(&out, query.epsilon);
  }
  if (query.kind != QueryKind::kAllPairs) {
    out << "|q=";
    AppendSeries(&out, query.query_series);
  }
  if (query.transform != nullptr) {
    out << "|t=" << query.transform->name();
  }
  if (query.transform_right != nullptr) {
    out << "|tr=" << query.transform_right->name();
  }
  out << "|m=" << (query.mode == DistanceMode::kNormalForm ? "N" : "R");
  out << "|s=" << static_cast<int>(query.strategy);
  // Filter mode is answer-preserving, but cached entries replay their
  // execution stats (candidate counts, pruning ratio), so plans stay
  // truthful only if modes cache separately. Default mode keeps the
  // pre-filter key rendering.
  if (query.filter != FilterMode::kDefault) {
    out << "|f=" << static_cast<int>(query.filter);
  }
  if (query.query_prenormalized) {
    out << "|pn";
  }
  if (query.pattern.kind == Pattern::Kind::kConstant) {
    out << "|pc=" << query.pattern.constant_id.value_or(-1);
  }
  AppendRange(&out, "mean", query.pattern.mean_range);
  AppendRange(&out, "std", query.pattern.std_range);
  return out.str();
}

uint64_t QueryFingerprint(const Query& query) {
  const std::string key = CanonicalQueryKey(query);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

}  // namespace simq
