#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "core/parser.h"
#include "core/persistence.h"
#include "service/fingerprint.h"
#include "ts/transforms.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace simq {

namespace {

std::chrono::steady_clock::duration MillisToDuration(double millis) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(millis));
}

int64_t WallClockUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Flight-recorder event label for an execution outcome.
const char* StatusLabel(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
    default:
      return "error";
  }
}

// Relation names flow into flight-recorder lines verbatim; cap the length
// and strip anything that could break the one-JSON-object-per-line
// guarantee (quotes, backslashes, control bytes).
std::string FlightSafe(const std::string& name) {
  std::string out = name.substr(0, 64);
  for (char& c : out) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u >= 0x7f || c == '"' || c == '\\') {
      c = '_';
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::~Session() { service_->OnSessionClosed(); }

Result<int64_t> Session::Prepare(const std::string& text) {
  Result<Query> parsed = service_->ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  PreparedStatement statement;
  statement.text = text;
  statement.query = std::move(parsed).value();
  // Normalize a literal query series once: every execution that keeps the
  // template's series skips ToNormalForm + re-validation. Substituting the
  // normal form with query_prenormalized set is answer-preserving by
  // definition of the PRENORMALIZED clause (the engine would compute the
  // same doubles itself).
  if (statement.query.kind != QueryKind::kAllPairs &&
      statement.query.mode == DistanceMode::kNormalForm &&
      !statement.query.query_prenormalized &&
      statement.query.query_series.is_literal() &&
      !statement.query.query_series.literal.empty()) {
    statement.normalized_literal =
        ToNormalForm(statement.query.query_series.literal).values;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t id = next_statement_id_++;
  statements_[id] = std::move(statement);
  return id;
}

std::shared_ptr<ExecutionContext> Session::BeginExecution(
    const ExecOptions& options) {
  auto ctx = std::make_shared<ExecutionContext>();
  const double deadline_ms = service_->ResolveDeadlineMs(options);
  if (deadline_ms > 0) {
    ctx->set_deadline_after(MillisToDuration(deadline_ms));
  }
  if (options.force_trace) {
    ctx->set_trace(std::make_shared<obs::Trace>());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancel_requested_) {
    ctx->Cancel();
  }
  inflight_.push_back(ctx);
  return ctx;
}

void Session::EndExecution(const ExecutionContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < inflight_.size(); ++i) {
    if (inflight_[i].get() == ctx) {
      inflight_[i] = std::move(inflight_.back());
      inflight_.pop_back();
      return;
    }
  }
}

void Session::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_requested_ = true;
    for (const std::shared_ptr<ExecutionContext>& ctx : inflight_) {
      ctx->Cancel();
    }
  }
  // Wake queued executions so a cancelled query never waits out the
  // admission timeout holding a client thread.
  service_->admission_cv_.notify_all();
}

void Session::ResetCancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  cancel_requested_ = false;
}

// Pairs every BeginExecution with EndExecution, on every return path --
// including an exception escaping the engine.
class Session::ScopedExecution {
 public:
  ScopedExecution(Session* session, const ExecOptions& options)
      : session_(session), ctx_(session->BeginExecution(options)) {}
  ~ScopedExecution() { session_->EndExecution(ctx_.get()); }
  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

  const std::shared_ptr<ExecutionContext>& ctx() const { return ctx_; }

 private:
  Session* session_;
  std::shared_ptr<ExecutionContext> ctx_;
};

Result<ServiceResult> Session::ExecutePrepared(int64_t statement_id,
                                               const BindParams& params,
                                               const ExecOptions& options) {
  Query query;
  std::vector<double> normalized_literal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = statements_.find(statement_id);
    if (it == statements_.end()) {
      return Status::NotFound("no prepared statement with id " +
                              std::to_string(statement_id));
    }
    query = it->second.query;  // cheap: shares the compiled rule chain
    normalized_literal = it->second.normalized_literal;
  }
  if (params.epsilon.has_value()) {
    if (query.kind == QueryKind::kNearest) {
      return Status::InvalidArgument(
          "epsilon parameter is not bindable on a NEAREST statement");
    }
    query.epsilon = *params.epsilon;
  }
  if (params.k.has_value()) {
    if (query.kind != QueryKind::kNearest) {
      return Status::InvalidArgument(
          "k parameter is only bindable on NEAREST statements");
    }
    query.k = *params.k;
  }
  if (params.series.has_value()) {
    if (query.kind == QueryKind::kAllPairs) {
      return Status::InvalidArgument(
          "series parameter is not bindable on a PAIRS statement");
    }
    query.query_series = *params.series;
  } else if (!normalized_literal.empty()) {
    query.query_series.literal = std::move(normalized_literal);
    query.query_prenormalized = true;
  }
  ScopedExecution execution(this, options);
  query.exec = execution.ctx();
  Result<ServiceResult> result =
      service_->ExecuteInternal(query, /*prepared=*/true);
  NoteUsage(result);
  return result;
}

Result<ServiceResult> Session::Execute(const std::string& text,
                                       const ExecOptions& options) {
  double parse_ms = 0.0;
  Result<Query> parsed = service_->ParseTracked(text, &parse_ms);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Query query = std::move(parsed).value();
  ScopedExecution execution(this, options);
  query.exec = execution.ctx();
  Result<ServiceResult> result =
      service_->ExecuteInternal(query, /*prepared=*/false, parse_ms);
  NoteUsage(result);
  return result;
}

void Session::NoteUsage(const Result<ServiceResult>& result) {
  if (!result.ok()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  usage_.Add(result.value().usage);
}

obs::ResourceUsage Session::cumulative_usage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

Status Session::Close(int64_t statement_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (statements_.erase(statement_id) == 0) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(statement_id));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

// Waits until the service is below its concurrency limit, then divides
// the pool between the queries now running: with R running queries the
// newcomer gets floor(threads / R) threads (at least 1). The budget is
// computed at admission and kept for the query's lifetime -- a fixed
// contract per execution rather than a moving target.
//
// The wait is bounded by three exits, each yielding its typed error
// without ever incrementing the running count: the admission timeout
// (kOverloaded), the query's own deadline (kTimeout -- queue time counts
// against the budget), and cancellation (kCancelled; Session::Cancel
// notifies the condvar so the waiter wakes promptly).
class QueryService::AdmissionSlot {
 public:
  AdmissionSlot(QueryService* service, const ExecutionContext* exec)
      : service_(service) {
    using Clock = std::chrono::steady_clock;
    const double timeout_ms = service_->options_.admission_timeout_ms;
    const Clock::time_point overload_at =
        timeout_ms > 0 ? Clock::now() + MillisToDuration(timeout_ms)
                       : Clock::time_point::max();
    const Clock::time_point deadline_at =
        exec != nullptr && exec->has_deadline() ? exec->deadline()
                                                : Clock::time_point::max();
    const Clock::time_point wait_until = std::min(overload_at, deadline_at);

    std::unique_lock<std::mutex> lock(service_->admission_mutex_);
    waited_ = service_->running_queries_ >= service_->max_concurrent_;
    while (service_->running_queries_ >= service_->max_concurrent_) {
      if (exec != nullptr && exec->cancelled()) {
        status_ = Status::Cancelled("query cancelled while queued");
        return;
      }
      if (wait_until == Clock::time_point::max()) {
        service_->admission_cv_.wait(lock);
      } else if (service_->admission_cv_.wait_until(lock, wait_until) ==
                 std::cv_status::timeout) {
        if (Clock::now() >= deadline_at) {
          status_ = Status::Timeout(
              "query deadline exceeded while queued for admission");
        } else {
          status_ = Status::Overloaded(
              "admission wait exceeded " +
              std::to_string(static_cast<int64_t>(timeout_ms)) +
              " ms; service at max_concurrent_queries");
        }
        return;
      }
    }
    admitted_ = true;
    ++service_->running_queries_;
    budget_ = std::max(
        1, ThreadPool::Global().num_threads() / service_->running_queries_);
  }

  ~AdmissionSlot() {
    if (!admitted_) {
      return;  // a rejected wait holds no slot; nothing to release
    }
    {
      std::lock_guard<std::mutex> lock(service_->admission_mutex_);
      --service_->running_queries_;
    }
    service_->admission_cv_.notify_one();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool ok() const { return admitted_; }
  const Status& status() const { return status_; }
  int budget() const { return budget_; }
  bool waited() const { return waited_; }

 private:
  QueryService* service_;
  Status status_;
  int budget_ = 1;
  bool admitted_ = false;
  bool waited_ = false;
};

QueryService::QueryService(Database db, ServiceOptions options)
    : db_(std::move(db)),
      options_(options),
      max_concurrent_(options.max_concurrent_queries > 0
                          ? options.max_concurrent_queries
                          : ThreadPool::Global().num_threads()),
      cache_(options.enable_result_cache ? options.result_cache_capacity : 0,
             options.result_cache_max_bytes),
      owned_registry_(options.metrics_registry == nullptr
                          ? std::make_unique<obs::MetricRegistry>()
                          : nullptr),
      registry_(options.metrics_registry != nullptr ? options.metrics_registry
                                                    : owned_registry_.get()),
      statements_(options.statements_capacity) {
  // Intern every metric once; the query paths only ever touch these
  // cached pointers (sharded atomic writes, no registry lock).
  metrics_.queries = registry_->GetCounter("simq_queries_total");
  metrics_.prepared_executions =
      registry_->GetCounter("simq_prepared_executions_total");
  metrics_.cold_parses = registry_->GetCounter("simq_cold_parses_total");
  metrics_.mutations = registry_->GetCounter("simq_mutations_total");
  metrics_.admission_waits =
      registry_->GetCounter("simq_admission_waits_total");
  metrics_.sessions_opened =
      registry_->GetCounter("simq_sessions_opened_total");
  metrics_.active_sessions = registry_->GetGauge("simq_active_sessions");
  metrics_.timeouts = registry_->GetCounter("simq_timeouts_total");
  metrics_.cancellations = registry_->GetCounter("simq_cancellations_total");
  metrics_.overloaded = registry_->GetCounter("simq_overloaded_total");
  metrics_.degraded_queries =
      registry_->GetCounter("simq_degraded_queries_total");
  metrics_.traced_queries =
      registry_->GetCounter("simq_traced_queries_total");
  metrics_.wal_appends = registry_->GetCounter("simq_wal_appends_total");
  metrics_.wal_failures = registry_->GetCounter("simq_wal_failures_total");
  metrics_.checkpoints = registry_->GetCounter("simq_checkpoints_total");
  metrics_.recompactions = registry_->GetCounter("simq_recompactions_total");
  metrics_.recompaction_ms =
      registry_->GetHistogram("simq_recompaction_duration_ms");
  metrics_.delta_rows = registry_->GetGauge("simq_delta_rows");
  metrics_.delta_tombstones = registry_->GetGauge("simq_delta_tombstones");
  metrics_.slow_query_lines =
      registry_->GetCounter("simq_slow_query_log_lines_total");
  metrics_.latency = registry_->GetHistogram("simq_query_latency_ms");
  metrics_.net_connections_accepted =
      registry_->GetCounter("simq_net_connections_accepted_total");
  metrics_.net_connections_active =
      registry_->GetGauge("simq_net_connections_active");
  metrics_.net_connections_shed =
      registry_->GetCounter("simq_net_connections_shed_total");
  metrics_.net_connections_timed_out =
      registry_->GetCounter("simq_net_connections_timed_out_total");
  metrics_.net_requests_shed =
      registry_->GetCounter("simq_net_requests_shed_total");
  metrics_.net_bytes_in = registry_->GetCounter("simq_net_bytes_in_total");
  metrics_.net_bytes_out = registry_->GetCounter("simq_net_bytes_out_total");
  metrics_.cache_hits = registry_->GetGauge("simq_cache_hits");
  metrics_.cache_misses = registry_->GetGauge("simq_cache_misses");
  metrics_.cache_insertions = registry_->GetGauge("simq_cache_insertions");
  metrics_.cache_invalidated =
      registry_->GetGauge("simq_cache_invalidated_entries");
  metrics_.cache_evictions = registry_->GetGauge("simq_cache_evictions");
  metrics_.cache_bytes = registry_->GetGauge("simq_cache_bytes");
  metrics_.statements_tracked =
      registry_->GetGauge("simq_statements_tracked");
  metrics_.watchdog_stalls =
      registry_->GetCounter("simq_watchdog_stalls_total");
  if (!options_.slow_query_log_path.empty()) {
    obs::SlowQueryLogOptions slow;
    slow.path = options_.slow_query_log_path;
    slow.threshold_ms = options_.slow_query_threshold_ms;
    slow.sample_every = options_.slow_query_sample_every;
    slow_log_ = std::make_unique<obs::SlowQueryLog>(std::move(slow));
  }
  if (!options_.wal_path.empty()) {
    Result<WalWriter> wal = WalWriter::Open(options_.wal_path);
    if (wal.ok()) {
      wal_ = std::move(wal).value();
    } else {
      // Deferred failure: queries run, but every mutation returns this
      // status (WalGate) -- never silently non-durable.
      wal_open_status_ = wal.status();
    }
  }
  if (options_.watchdog_stall_after_ms > 0) {
    obs::StallWatchdog::Options wopts;
    wopts.poll_interval_ms = options_.watchdog_poll_interval_ms;
    wopts.stall_after_ms = options_.watchdog_stall_after_ms;
    watchdog_ = std::make_unique<obs::StallWatchdog>(
        wopts,
        [this] {
          obs::StallWatchdog::Probe probe;
          probe.completed =
              executions_finished_.load(std::memory_order_relaxed);
          probe.pending =
              executions_pending_.load(std::memory_order_relaxed);
          return probe;
        },
        [this](double stalled_ms, const obs::StallWatchdog::Probe& probe) {
          OnStallDetected(stalled_ms, probe);
        });
    watchdog_->Start();
  }
}

QueryService::~QueryService() {
  // The watchdog thread probes service state; retire it before anything
  // else unwinds.
  if (watchdog_ != nullptr) {
    watchdog_->Stop();
  }
  // Drain background recompactions. A worker's very last touch of this
  // object is its notify under recompact_mutex_; the wait below only
  // returns once it can reacquire that mutex, i.e. after the worker has
  // released it for good, so no detached thread outlives the service.
  std::unique_lock<std::mutex> lock(recompact_mutex_);
  recompact_cv_.wait(lock, [this] { return recompactions_inflight_ == 0; });
}

std::unique_ptr<Session> QueryService::OpenSession() {
  metrics_.sessions_opened->Add();
  metrics_.active_sessions->Add(1);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return std::unique_ptr<Session>(new Session(this, next_session_id_++));
}

void QueryService::OnSessionClosed() {
  metrics_.active_sessions->Add(-1);
}

void QueryService::NoteConnectionOpened() {
  metrics_.net_connections_accepted->Add();
  metrics_.net_connections_active->Add(1);
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Recordf(
        "conn", "\"event\":\"open\",\"active\":%lld",
        static_cast<long long>(metrics_.net_connections_active->Value()));
  }
}

void QueryService::NoteConnectionClosed(bool timed_out) {
  metrics_.net_connections_active->Add(-1);
  if (timed_out) {
    metrics_.net_connections_timed_out->Add();
  }
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Recordf(
        "conn", "\"event\":\"close\",\"timed_out\":%d,\"active\":%lld",
        timed_out ? 1 : 0,
        static_cast<long long>(metrics_.net_connections_active->Value()));
  }
}

void QueryService::NoteConnectionShed() {
  metrics_.net_connections_shed->Add();
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Record("conn", "\"event\":\"shed\"");
  }
}

void QueryService::NoteRequestShed() { metrics_.net_requests_shed->Add(); }

void QueryService::NoteNetBytes(int64_t bytes_in, int64_t bytes_out) {
  metrics_.net_bytes_in->Add(bytes_in);
  metrics_.net_bytes_out->Add(bytes_out);
}

Status QueryService::WalGate() const {
  if (!options_.wal_path.empty() && !wal_.is_open()) {
    return wal_open_status_;
  }
  return Status::Ok();
}

Status QueryService::FinishAppend(Status append_status) {
  if (append_status.ok() && options_.sync_wal) {
    append_status = wal_.Sync();
  }
  if (append_status.ok()) {
    metrics_.wal_appends->Add();
  } else {
    metrics_.wal_failures->Add();
  }
  return append_status;
}

Status QueryService::CreateRelation(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Status status = WalGate();
  if (status.ok()) {
    status = db_.CreateRelation(name);
  }
  if (status.ok() && wal_.is_open()) {
    status = FinishAppend(wal_.AppendCreateRelation(name));
  }
  if (status.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(name);
    metrics_.mutations->Add();
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Recordf(
          "mutation", "\"op\":\"create\",\"relation\":\"%s\"",
          FlightSafe(name).c_str());
    }
  }
  return status;
}

Result<int64_t> QueryService::Insert(const std::string& relation,
                                     const TimeSeries& series) {
  // The insert bumps the routed shard's epoch inside the data plane; the
  // relation epoch (the shard roll-up) therefore changes before the lock
  // drops, so no reader can pair the new data with the old version. The
  // WAL append happens under the same lock, so log order == apply order.
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  const Status gate = WalGate();
  if (!gate.ok()) {
    return gate;
  }
  Result<int64_t> result = db_.Insert(relation, series);
  if (result.ok() && wal_.is_open()) {
    const Status logged = FinishAppend(wal_.AppendInsert(relation, series));
    if (!logged.ok()) {
      return logged;
    }
  }
  if (result.ok()) {
    RefreshDeltaGauges();
    lock.unlock();
    cache_.InvalidateRelation(relation);
    metrics_.mutations->Add();
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Recordf(
          "mutation", "\"op\":\"insert\",\"relation\":\"%s\",\"id\":%lld",
          FlightSafe(relation).c_str(),
          static_cast<long long>(result.value()));
    }
    MaybeScheduleRecompaction(relation);
  }
  return result;
}

Status QueryService::Delete(const std::string& relation, int64_t id) {
  // Same discipline as Insert: the tombstone bumps the shard epoch under
  // the exclusive lock, the WAL append happens under the same lock (log
  // order == apply order), and the cache entries of the relation are
  // invalidated before the mutation is acknowledged.
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Status status = WalGate();
  if (status.ok()) {
    status = db_.Delete(relation, id);
  }
  if (status.ok() && wal_.is_open()) {
    status = FinishAppend(wal_.AppendDelete(relation, id));
  }
  if (status.ok()) {
    RefreshDeltaGauges();
    lock.unlock();
    cache_.InvalidateRelation(relation);
    metrics_.mutations->Add();
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Recordf(
          "mutation", "\"op\":\"delete\",\"relation\":\"%s\",\"id\":%lld",
          FlightSafe(relation).c_str(), static_cast<long long>(id));
    }
    MaybeScheduleRecompaction(relation);
  }
  return status;
}

Status QueryService::BulkLoad(const std::string& relation,
                              const std::vector<TimeSeries>& series) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Status status = WalGate();
  if (status.ok()) {
    status = db_.BulkLoad(relation, series);
  }
  if (status.ok() && wal_.is_open()) {
    status = FinishAppend(wal_.AppendBulkLoad(relation, series));
  }
  if (status.ok()) {
    RefreshDeltaGauges();
    lock.unlock();
    cache_.InvalidateRelation(relation);
    metrics_.mutations->Add();
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Recordf(
          "mutation", "\"op\":\"bulk_load\",\"relation\":\"%s\",\"rows\":%zu",
          FlightSafe(relation).c_str(), series.size());
    }
  }
  return status;
}

Status QueryService::Recompact(const std::string& relation) {
  return RunRecompaction(relation);
}

void QueryService::MaybeScheduleRecompaction(const std::string& relation) {
  const DeltaOptions& delta = db_.delta_options();
  if (!delta.enabled || delta.recompact_threshold <= 0) {
    return;
  }
  {
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    const Relation* rel = db_.GetRelation(relation);
    if (rel == nullptr ||
        rel->sharded().delta_pressure() < delta.recompact_threshold) {
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(recompact_mutex_);
    if (!recompacting_.insert(relation).second) {
      return;  // one in-flight recompaction per relation is enough
    }
    ++recompactions_inflight_;
  }
  // Detached on purpose: the worker's lifetime is bounded by the
  // destructor's drain (see ~QueryService), and a dedicated thread keeps
  // the long build off the query thread pool. A failed run (fault
  // injection, resource trouble) is dropped here -- the delta layer keeps
  // answering exactly; the next mutation past the threshold retries.
  std::thread([this, relation]() {
    (void)RunRecompaction(relation);
    std::lock_guard<std::mutex> lock(recompact_mutex_);
    recompacting_.erase(relation);
    --recompactions_inflight_;
    recompact_cv_.notify_all();
  }).detach();
}

Status QueryService::RunRecompaction(const std::string& relation) {
  Stopwatch watch;
  // Recompactions are service-internal, so their span tree surfaces via
  // last_recompaction_trace() instead of any ServiceResult: the two
  // phases -- long concurrent build, brief exclusive publish -- become
  // visible in RenderTraceTree.
  auto trace = std::make_shared<obs::Trace>();
  std::vector<RelationShard::Recompaction> built;
  uint64_t generation = 0;
  const int build_span = trace->StartSpan("recompact.build");
  {
    // Build under the shared lock: queries keep running, writers wait.
    // The shard stores are frozen, so the built artifacts cover exactly
    // the rows present now; publish catches up any appended later.
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    SIMQ_RETURN_IF_ERROR(db_.BuildRecompaction(relation, &built));
  }
  trace->EndSpan(build_span);
  const int publish_span = trace->StartSpan("recompact.publish");
  {
    std::unique_lock<std::shared_mutex> lock(data_mutex_);
    SIMQ_RETURN_IF_ERROR(db_.PublishRecompaction(relation, std::move(built)));
    RefreshDeltaGauges();
    generation = GenerationLocked(relation, nullptr);
  }
  trace->EndSpan(publish_span);
  trace->EndSpan(obs::Trace::kRoot);
  {
    std::lock_guard<std::mutex> lock(recompaction_trace_mutex_);
    last_recompaction_trace_ = trace;
  }
  metrics_.recompactions->Add();
  const double elapsed_ms = watch.ElapsedMillis();
  metrics_.recompaction_ms->Observe(elapsed_ms);
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Recordf(
        "recompact",
        "\"relation\":\"%s\",\"generation\":%llu,\"ms\":%.3f",
        FlightSafe(relation).c_str(),
        static_cast<unsigned long long>(generation), elapsed_ms);
  }
  return Status::Ok();
}

std::shared_ptr<obs::Trace> QueryService::last_recompaction_trace() const {
  std::lock_guard<std::mutex> lock(recompaction_trace_mutex_);
  return last_recompaction_trace_;
}

void QueryService::RefreshDeltaGauges() const {
  int64_t rows = 0;
  int64_t tombstones = 0;
  for (const std::string& name : db_.RelationNames()) {
    const Relation* rel = db_.GetRelation(name);
    if (rel == nullptr) {
      continue;
    }
    rows += rel->sharded().delta_rows();
    tombstones += rel->sharded().pending_tombstones();
  }
  metrics_.delta_rows->Set(rows);
  metrics_.delta_tombstones->Set(tombstones);
}

Status QueryService::Checkpoint() {
  if (options_.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "checkpointing requires ServiceOptions::snapshot_path");
  }
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  // Snapshot first, truncate second: a crash between the two leaves the
  // snapshot plus a WAL whose replay re-applies already-snapshotted
  // mutations' successors -- never a gap. (The WAL is only truncated
  // after the snapshot's rename has committed it.)
  Status status = SaveDatabase(db_, options_.snapshot_path);
  if (status.ok() && wal_.is_open()) {
    status = wal_.Truncate();
  }
  if (status.ok()) {
    lock.unlock();
    metrics_.checkpoints->Add();
    if (options_.flight_recorder != nullptr) {
      options_.flight_recorder->Record("checkpoint", "");
    }
  }
  return status;
}

uint64_t QueryService::EpochLocked(const std::string& relation,
                                   int* shards) const {
  const Relation* rel = db_.GetRelation(relation);
  if (shards != nullptr) {
    *shards = rel == nullptr ? 0 : rel->sharded().num_shards();
  }
  return rel == nullptr ? 0 : rel->epoch();
}

uint64_t QueryService::GenerationLocked(const std::string& relation,
                                        int64_t* delta_rows) const {
  const Relation* rel = db_.GetRelation(relation);
  if (rel == nullptr) {
    if (delta_rows != nullptr) {
      *delta_rows = 0;
    }
    return 0;
  }
  if (delta_rows != nullptr) {
    *delta_rows = rel->sharded().delta_rows();
  }
  return rel->sharded().generation();
}

uint64_t QueryService::RelationEpoch(const std::string& relation) const {
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return EpochLocked(relation, nullptr);
}

Result<Query> QueryService::ParseTracked(const std::string& text,
                                         double* parse_ms) {
  Stopwatch watch;
  Result<Query> parsed = ParseQuery(text);
  if (parse_ms != nullptr) {
    *parse_ms = watch.ElapsedMillis();
  }
  metrics_.cold_parses->Add();
  return parsed;
}

bool QueryService::SampleTrace() {
  const int every = options_.trace_sample_every;
  if (every <= 0) {
    return false;
  }
  return trace_tick_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

double QueryService::ResolveDeadlineMs(const ExecOptions& options) const {
  return options.deadline_ms < 0 ? options_.default_deadline_ms
                                 : options.deadline_ms;
}

void QueryService::CountTermination(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
      metrics_.timeouts->Add();
      break;
    case StatusCode::kCancelled:
      metrics_.cancellations->Add();
      break;
    case StatusCode::kOverloaded:
      metrics_.overloaded->Add();
      break;
    default:
      break;
  }
}

Result<ServiceResult> QueryService::Execute(const Query& query) {
  return ExecuteInternal(query, /*prepared=*/false);
}

Result<ServiceResult> QueryService::Execute(const Query& query,
                                            const ExecOptions& options) {
  return ExecuteBound(query, options, /*parse_ms=*/0.0);
}

Result<ServiceResult> QueryService::ExecuteBound(const Query& query,
                                                 const ExecOptions& options,
                                                 double parse_ms) {
  const double deadline_ms = ResolveDeadlineMs(options);
  if (query.exec != nullptr) {
    if (options.force_trace && query.exec->trace() == nullptr) {
      query.exec->set_trace(std::make_shared<obs::Trace>());
    }
    return ExecuteInternal(query, /*prepared=*/false, parse_ms);
  }
  if (deadline_ms <= 0 && !options.force_trace) {
    return ExecuteInternal(query, /*prepared=*/false, parse_ms);
  }
  auto ctx = std::make_shared<ExecutionContext>();
  if (deadline_ms > 0) {
    ctx->set_deadline_after(MillisToDuration(deadline_ms));
  }
  if (options.force_trace) {
    ctx->set_trace(std::make_shared<obs::Trace>());
  }
  Query bounded = query;
  bounded.exec = std::move(ctx);
  return ExecuteInternal(bounded, /*prepared=*/false, parse_ms);
}

Result<ServiceResult> QueryService::ExecuteText(const std::string& text,
                                                const ExecOptions& options) {
  double parse_ms = 0.0;
  Result<Query> parsed = ParseTracked(text, &parse_ms);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return ExecuteBound(parsed.value(), options, parse_ms);
}

Result<ServiceResult> QueryService::ExecuteInternal(const Query& query,
                                                    bool prepared,
                                                    double parse_ms) {
  Stopwatch watch;
  // Watchdog probe bookkeeping: this execution is pending (queued or
  // running) until any exit path below, where the destructor marks it
  // finished -- the monotone count the stall detector watches.
  struct PendingGuard {
    QueryService* service;
    explicit PendingGuard(QueryService* s) : service(s) {
      service->executions_pending_.fetch_add(1, std::memory_order_relaxed);
    }
    ~PendingGuard() {
      service->executions_pending_.fetch_sub(1, std::memory_order_relaxed);
      service->executions_finished_.fetch_add(1, std::memory_order_relaxed);
    }
  } pending_guard(this);
  // Tracing decision: an already-attached trace (force_trace) wins;
  // otherwise EXPLAIN ANALYZE and the 1-in-N sampler each attach one.
  // The trace rides the ExecutionContext, so a query without one gets a
  // context just to carry it. Tracing never changes the answer set.
  std::shared_ptr<obs::Trace> trace;
  if (query.exec != nullptr && query.exec->trace() != nullptr) {
    trace = query.exec->shared_trace();
  } else if (query.analyze || SampleTrace()) {
    trace = std::make_shared<obs::Trace>();
  }
  Query traced_copy;
  const Query* effective = &query;
  if (trace != nullptr) {
    if (query.exec == nullptr) {
      traced_copy = query;  // cheap: shares the compiled rule chain
      traced_copy.exec = std::make_shared<ExecutionContext>();
      effective = &traced_copy;
    }
    effective->exec->set_trace(trace);
    if (parse_ms > 0.0) {
      // The parse finished before the trace existed; record it at the
      // origin with its measured duration.
      trace->AddCompleted("parse", obs::Trace::kRoot, 0.0, parse_ms);
    }
    metrics_.traced_queries->Add();
  }
  const ExecutionContext* exec = effective->exec.get();
  // The fingerprint keys the statements-table row and names the query in
  // flight-recorder events, so every outcome path below needs it.
  const uint64_t fingerprint = QueryFingerprint(*effective);
  obs::ResourceUsage usage;
  // Fast-fail before admission: born cancelled (session in the cancelled
  // state) or a deadline already in the past.
  if (exec != nullptr) {
    const Status start = exec->Check();
    if (!start.ok()) {
      if (trace != nullptr) {
        effective->exec->set_trace(nullptr);
      }
      CountTermination(start);
      RecordQueryOutcome(*effective, fingerprint, start, false,
                         watch.ElapsedMillis(), usage);
      return start;
    }
  }
  const double admit_start_ms = trace != nullptr ? trace->NowMs() : 0.0;
  AdmissionSlot slot(this, exec);
  if (trace != nullptr) {
    trace->AddCompleted("admission", obs::Trace::kRoot, admit_start_ms,
                        trace->NowMs() - admit_start_ms);
  }
  if (!slot.ok()) {
    if (trace != nullptr) {
      effective->exec->set_trace(nullptr);
    }
    CountTermination(slot.status());
    RecordQueryOutcome(*effective, fingerprint, slot.status(), false,
                       watch.ElapsedMillis(), usage);
    return slot.status();
  }
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Recordf(
        "query_admit", "\"fp\":\"%016llx\",\"budget\":%d,\"waited\":%d",
        static_cast<unsigned long long>(fingerprint), slot.budget(),
        slot.waited() ? 1 : 0);
  }
  ThreadPool::ScopedParallelismBudget budget(slot.budget());
  usage.peak_parallelism = slot.budget();
  // Live accounting cells: pool workers add their per-block CPU deltas
  // through the thread-pool sink; the calling thread's own delta is
  // measured end-to-end around the engine call below.
  std::shared_ptr<obs::QueryAccounting> accounting;
  if (options_.enable_resource_accounting) {
    accounting = std::make_shared<obs::QueryAccounting>();
    if (exec != nullptr) {
      exec->set_accounting(accounting);
    }
  }

  ServiceResult out;
  bool cache_hit = false;
  uint64_t epoch = 0;
  uint64_t generation = 0;
  int64_t delta_rows = 0;
  int shards = 0;
  std::string canonical;
  const int execute_span =
      trace != nullptr ? trace->StartSpan("execute") : -1;
  if (trace != nullptr) {
    // The engine attaches its stage spans (per-shard index descents,
    // filter/refine, scan, merge) under the execute span.
    trace->SetEngineParent(execute_span);
  }
  {
    // Shared lock: the query -- including its cache probe/fill -- runs
    // against one data version; writers wait, other readers do not. The
    // epoch is the relation's per-shard roll-up, read under the same
    // acquisition as the data it names.
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    epoch = EpochLocked(effective->relation, &shards);
    generation = GenerationLocked(effective->relation, &delta_rows);
    // Cached entries replay their execution's plan metadata (filter,
    // pruning counts), and a query's effective filter configuration is
    // resolved against the engine-wide settings at execution time -- so
    // when the quantized engine would run, the key must name it AND its
    // bit width, or an entry cached before a set_filter_engine /
    // set_filter_options change would keep reporting the old plan. The
    // exact-engine case keeps the historical key rendering.
    const bool effectively_quantized =
        effective->filter == FilterMode::kFiltered ||
        (effective->filter == FilterMode::kDefault &&
         db_.filter_engine() == FilterEngine::kQuantized);
    canonical = CanonicalQueryKey(*effective);
    // The generation joins the key because cached entries replay their
    // execution's plan metadata: answers are identical across
    // generations, but an entry cached before a recompaction would keep
    // reporting the old generation's delta_rows.
    const std::string key =
        canonical + "@" + std::to_string(epoch) + "@g" +
        std::to_string(generation) +
        (effectively_quantized
             ? "@fq" + std::to_string(db_.filter_options().bits_per_dim)
             : "");
    if (!cache_.Get(key, &out.result)) {
      Result<QueryResult> executed = [&]() -> Result<QueryResult> {
        try {
          ThreadPool::ScopedCpuAccounting meter(
              accounting != nullptr ? &accounting->cpu_ns : nullptr,
              accounting != nullptr ? &accounting->pool_tasks : nullptr);
          const int64_t cpu_begin =
              accounting != nullptr ? ThreadPool::ThreadCpuNs() : 0;
          Result<QueryResult> r = db_.Execute(*effective);
          if (accounting != nullptr) {
            // The calling thread participates in its own fan-outs; its
            // delta covers those blocks, the sink covered the helpers'.
            accounting->cpu_ns.fetch_add(
                ThreadPool::ThreadCpuNs() - cpu_begin,
                std::memory_order_relaxed);
          }
          return r;
        } catch (const std::exception& e) {
          // An exception escaping the engine (e.g. a fault-injected pool
          // task) fails this query, not the service: the shared lock and
          // admission slot unwind normally, the session stays usable.
          return Status::Internal(std::string("query execution failed: ") +
                                  e.what());
        }
      }();
      if (!executed.ok()) {
        if (trace != nullptr) {
          effective->exec->set_trace(nullptr);
        }
        if (accounting != nullptr) {
          usage.cpu_ns = accounting->cpu_ns.load(std::memory_order_relaxed);
          usage.pool_tasks =
              accounting->pool_tasks.load(std::memory_order_relaxed);
          if (exec != nullptr) {
            exec->set_accounting(nullptr);
          }
        }
        CountTermination(executed.status());
        RecordQueryOutcome(*effective, fingerprint, executed.status(), false,
                           watch.ElapsedMillis(), usage);
        return executed.status();
      }
      out.result = std::move(executed).value();
      cache_.Put(key, effective->relation, out.result);
      if (out.result.stats.degraded) {
        metrics_.degraded_queries->Add();
      }
    } else {
      cache_hit = true;
    }
    // A degraded index execution actually ran on the pointer tree.
    out.plan.engine =
        out.result.stats.used_index
            ? (out.result.stats.degraded ||
                       db_.EffectiveIndexEngine() == IndexEngine::kPointer
                   ? "pointer"
                   : "packed")
            : "columnar";
  }
  out.plan.strategy = out.result.stats.used_index ? "index" : "scan";
  out.plan.filter = out.result.stats.used_filter ? "quantized" : "none";
  if (out.result.stats.used_filter) {
    out.plan.filter_scanned = out.result.stats.filter_scanned;
    out.plan.candidates = out.result.stats.candidates;
    if (out.result.stats.filter_scanned > 0) {
      out.plan.pruning_ratio =
          1.0 - static_cast<double>(out.result.stats.candidates) /
                    static_cast<double>(out.result.stats.filter_scanned);
    }
  }
  out.plan.cache_hit = cache_hit;
  out.plan.prepared = prepared;
  out.plan.explain = effective->explain;
  out.plan.analyze = effective->analyze;
  out.plan.degraded = out.result.stats.degraded;
  out.plan.shards = shards;
  out.plan.relation_epoch = epoch;
  out.plan.generation = generation;
  out.plan.delta_rows = delta_rows;
  out.plan.fingerprint = fingerprint;
  out.plan.per_shard = out.result.stats.shard_stats;
  out.elapsed_ms = watch.ElapsedMillis();

  // Assemble this execution's ResourceUsage. Engine effort counters stay
  // zero on a cache hit -- the replayed stats describe the *original*
  // execution's work, not this one's -- while result_bytes and the CPU
  // cells always describe this execution.
  const ExecutionStats& est = out.result.stats;
  if (!cache_hit) {
    // Rows examined: the quantized filter's scan when it ran, else
    // whichever refinement counter the strategy populated (the index
    // nearest path counts exact_checks only; range paths count
    // candidates).
    usage.rows_scanned =
        est.filter_scanned > 0
            ? est.filter_scanned
            : std::max(est.candidates, est.exact_checks);
    usage.candidates = est.candidates;
    usage.exact_checks = est.exact_checks;
    usage.delta_rows_merged = delta_rows;
  }
  usage.result_bytes = ResultCache::ApproxResultBytes(out.result);
  if (accounting != nullptr) {
    usage.cpu_ns = accounting->cpu_ns.load(std::memory_order_relaxed);
    usage.pool_tasks =
        accounting->pool_tasks.load(std::memory_order_relaxed);
    if (exec != nullptr) {
      // Detach like the trace below: contexts can outlive this execution.
      exec->set_accounting(nullptr);
    }
  }
  out.usage = usage;

  if (trace != nullptr) {
    std::string note = out.plan.strategy + "/" + out.plan.engine;
    if (out.result.stats.used_filter) {
      note += "+quantized";
    }
    if (cache_hit) {
      note += " (cache hit)";
    }
    if (out.plan.degraded) {
      note += " (degraded)";
    }
    trace->SetNote(execute_span, note);
    trace->EndSpan(execute_span);
    const int64_t rows =
        static_cast<int64_t>(out.result.matches.size()) +
        static_cast<int64_t>(out.result.pairs.size());
    trace->SetRows(obs::Trace::kRoot, 0, 0, rows);
    trace->EndSpan(obs::Trace::kRoot);
    // Detach before returning: contexts can outlive this execution (the
    // ad-hoc Execute(query) path reuses caller-owned contexts), and the
    // trace's ownership moves to the result.
    effective->exec->set_trace(nullptr);
    out.trace = trace;
  }

  metrics_.queries->Add();
  if (prepared) {
    metrics_.prepared_executions->Add();
  }
  if (slot.waited()) {
    metrics_.admission_waits->Add();
  }
  metrics_.latency->Observe(out.elapsed_ms);
  RecordQueryOutcome(*effective, fingerprint, Status::Ok(), cache_hit,
                     out.elapsed_ms, usage);

  if (trace != nullptr && slow_log_ != nullptr &&
      slow_log_->ShouldLog(out.elapsed_ms)) {
    obs::SlowQueryEntry entry;
    entry.unix_ms = WallClockUnixMs();
    entry.fingerprint = canonical;
    entry.epoch = epoch;
    entry.relation = effective->relation;
    entry.elapsed_ms = out.elapsed_ms;
    entry.strategy = out.plan.strategy;
    entry.engine = out.plan.engine;
    entry.filtered = out.result.stats.used_filter;
    entry.cache_hit = cache_hit;
    entry.degraded = out.plan.degraded;
    entry.shards = shards;
    entry.spans = trace->spans();
    slow_log_->Append(entry);
    metrics_.slow_query_lines->Add();
  }
  return out;
}

void QueryService::RecordQueryOutcome(const Query& query,
                                      uint64_t fingerprint,
                                      const Status& status, bool cache_hit,
                                      double elapsed_ms,
                                      const obs::ResourceUsage& usage) {
  if (statements_.enabled()) {
    statements_.Record(fingerprint, CanonicalQueryKey(query), status,
                       cache_hit, elapsed_ms, usage);
  }
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Recordf(
        "query",
        "\"fp\":\"%016llx\",\"status\":\"%s\",\"ms\":%.3f,"
        "\"cache_hit\":%d,%s",
        static_cast<unsigned long long>(fingerprint),
        StatusLabel(status.code()), elapsed_ms, cache_hit ? 1 : 0,
        obs::FormatResourceUsageJson(usage).c_str());
  }
}

void QueryService::OnStallDetected(double stalled_ms,
                                   const obs::StallWatchdog::Probe& probe) {
  metrics_.watchdog_stalls->Add();
  int running = 0;
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    running = running_queries_;
  }
  if (options_.flight_recorder != nullptr) {
    // Record the admission snapshot first so it is part of the dump that
    // lands on disk while the stall is still live.
    options_.flight_recorder->Recordf(
        "stall",
        "\"stalled_ms\":%.0f,\"pending\":%lld,\"completed\":%lld,"
        "\"running\":%d,\"max_concurrent\":%d",
        stalled_ms, static_cast<long long>(probe.pending),
        static_cast<long long>(probe.completed), running, max_concurrent_);
    (void)options_.flight_recorder->DumpToCrashPath();
  }
}

void QueryService::RefreshScrapeGauges() const {
  {
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    RefreshDeltaGauges();
  }
  // Mirror the cache's own counters into registry gauges so a registry
  // scrape (Prometheus text, kMetrics frame) sees them without a
  // ResultCache dependency.
  const ResultCache::Stats cache = cache_.stats();
  metrics_.cache_hits->Set(cache.hits);
  metrics_.cache_misses->Set(cache.misses);
  metrics_.cache_insertions->Set(cache.insertions);
  metrics_.cache_invalidated->Set(cache.invalidated_entries);
  metrics_.cache_evictions->Set(cache.evictions);
  metrics_.cache_bytes->Set(cache.bytes);
  metrics_.statements_tracked->Set(static_cast<int64_t>(statements_.size()));
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.queries = metrics_.queries->Value();
  out.prepared_executions = metrics_.prepared_executions->Value();
  out.cold_parses = metrics_.cold_parses->Value();
  out.mutations = metrics_.mutations->Value();
  out.admission_waits = metrics_.admission_waits->Value();
  out.sessions_opened = metrics_.sessions_opened->Value();
  out.active_sessions = metrics_.active_sessions->Value();
  out.timeouts = metrics_.timeouts->Value();
  out.cancellations = metrics_.cancellations->Value();
  out.overloaded = metrics_.overloaded->Value();
  out.degraded_queries = metrics_.degraded_queries->Value();
  out.traced_queries = metrics_.traced_queries->Value();
  out.slow_query_log_lines = metrics_.slow_query_lines->Value();
  out.wal_appends = metrics_.wal_appends->Value();
  out.wal_failures = metrics_.wal_failures->Value();
  out.checkpoints = metrics_.checkpoints->Value();
  out.recompactions = metrics_.recompactions->Value();
  // One refresh covers the delta gauges and the cache/statements mirrors
  // (the same hook every scrape surface calls).
  RefreshScrapeGauges();
  out.delta_rows = metrics_.delta_rows->Value();
  out.delta_tombstones = metrics_.delta_tombstones->Value();
  out.net.connections_accepted = metrics_.net_connections_accepted->Value();
  out.net.connections_active = metrics_.net_connections_active->Value();
  out.net.connections_shed = metrics_.net_connections_shed->Value();
  out.net.connections_timed_out =
      metrics_.net_connections_timed_out->Value();
  out.net.requests_shed = metrics_.net_requests_shed->Value();
  out.net.bytes_in = metrics_.net_bytes_in->Value();
  out.net.bytes_out = metrics_.net_bytes_out->Value();
  out.cache = cache_.stats();
  const obs::Histogram::Snapshot latency = metrics_.latency->snapshot();
  if (latency.count > 0) {
    out.latency_p50_ms = latency.Percentile(50.0);
    out.latency_p95_ms = latency.Percentile(95.0);
    out.latency_p99_ms = latency.Percentile(99.0);
  }
  return out;
}

}  // namespace simq
