#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "core/parser.h"
#include "core/persistence.h"
#include "service/fingerprint.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace simq {

namespace {

std::chrono::steady_clock::duration MillisToDuration(double millis) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(millis));
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::~Session() { service_->OnSessionClosed(); }

Result<int64_t> Session::Prepare(const std::string& text) {
  Result<Query> parsed = service_->ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  PreparedStatement statement;
  statement.text = text;
  statement.query = std::move(parsed).value();
  // Normalize a literal query series once: every execution that keeps the
  // template's series skips ToNormalForm + re-validation. Substituting the
  // normal form with query_prenormalized set is answer-preserving by
  // definition of the PRENORMALIZED clause (the engine would compute the
  // same doubles itself).
  if (statement.query.kind != QueryKind::kAllPairs &&
      statement.query.mode == DistanceMode::kNormalForm &&
      !statement.query.query_prenormalized &&
      statement.query.query_series.is_literal() &&
      !statement.query.query_series.literal.empty()) {
    statement.normalized_literal =
        ToNormalForm(statement.query.query_series.literal).values;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t id = next_statement_id_++;
  statements_[id] = std::move(statement);
  return id;
}

std::shared_ptr<ExecutionContext> Session::BeginExecution(
    const ExecOptions& options) {
  auto ctx = std::make_shared<ExecutionContext>();
  const double deadline_ms = service_->ResolveDeadlineMs(options);
  if (deadline_ms > 0) {
    ctx->set_deadline_after(MillisToDuration(deadline_ms));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancel_requested_) {
    ctx->Cancel();
  }
  inflight_.push_back(ctx);
  return ctx;
}

void Session::EndExecution(const ExecutionContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < inflight_.size(); ++i) {
    if (inflight_[i].get() == ctx) {
      inflight_[i] = std::move(inflight_.back());
      inflight_.pop_back();
      return;
    }
  }
}

void Session::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_requested_ = true;
    for (const std::shared_ptr<ExecutionContext>& ctx : inflight_) {
      ctx->Cancel();
    }
  }
  // Wake queued executions so a cancelled query never waits out the
  // admission timeout holding a client thread.
  service_->admission_cv_.notify_all();
}

void Session::ResetCancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  cancel_requested_ = false;
}

// Pairs every BeginExecution with EndExecution, on every return path --
// including an exception escaping the engine.
class Session::ScopedExecution {
 public:
  ScopedExecution(Session* session, const ExecOptions& options)
      : session_(session), ctx_(session->BeginExecution(options)) {}
  ~ScopedExecution() { session_->EndExecution(ctx_.get()); }
  ScopedExecution(const ScopedExecution&) = delete;
  ScopedExecution& operator=(const ScopedExecution&) = delete;

  const std::shared_ptr<ExecutionContext>& ctx() const { return ctx_; }

 private:
  Session* session_;
  std::shared_ptr<ExecutionContext> ctx_;
};

Result<ServiceResult> Session::ExecutePrepared(int64_t statement_id,
                                               const BindParams& params,
                                               const ExecOptions& options) {
  Query query;
  std::vector<double> normalized_literal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = statements_.find(statement_id);
    if (it == statements_.end()) {
      return Status::NotFound("no prepared statement with id " +
                              std::to_string(statement_id));
    }
    query = it->second.query;  // cheap: shares the compiled rule chain
    normalized_literal = it->second.normalized_literal;
  }
  if (params.epsilon.has_value()) {
    if (query.kind == QueryKind::kNearest) {
      return Status::InvalidArgument(
          "epsilon parameter is not bindable on a NEAREST statement");
    }
    query.epsilon = *params.epsilon;
  }
  if (params.k.has_value()) {
    if (query.kind != QueryKind::kNearest) {
      return Status::InvalidArgument(
          "k parameter is only bindable on NEAREST statements");
    }
    query.k = *params.k;
  }
  if (params.series.has_value()) {
    if (query.kind == QueryKind::kAllPairs) {
      return Status::InvalidArgument(
          "series parameter is not bindable on a PAIRS statement");
    }
    query.query_series = *params.series;
  } else if (!normalized_literal.empty()) {
    query.query_series.literal = std::move(normalized_literal);
    query.query_prenormalized = true;
  }
  ScopedExecution execution(this, options);
  query.exec = execution.ctx();
  return service_->ExecuteInternal(query, /*prepared=*/true);
}

Result<ServiceResult> Session::Execute(const std::string& text,
                                       const ExecOptions& options) {
  Result<Query> parsed = service_->ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Query query = std::move(parsed).value();
  ScopedExecution execution(this, options);
  query.exec = execution.ctx();
  return service_->ExecuteInternal(query, /*prepared=*/false);
}

Status Session::Close(int64_t statement_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (statements_.erase(statement_id) == 0) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(statement_id));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

// Waits until the service is below its concurrency limit, then divides
// the pool between the queries now running: with R running queries the
// newcomer gets floor(threads / R) threads (at least 1). The budget is
// computed at admission and kept for the query's lifetime -- a fixed
// contract per execution rather than a moving target.
//
// The wait is bounded by three exits, each yielding its typed error
// without ever incrementing the running count: the admission timeout
// (kOverloaded), the query's own deadline (kTimeout -- queue time counts
// against the budget), and cancellation (kCancelled; Session::Cancel
// notifies the condvar so the waiter wakes promptly).
class QueryService::AdmissionSlot {
 public:
  AdmissionSlot(QueryService* service, const ExecutionContext* exec)
      : service_(service) {
    using Clock = std::chrono::steady_clock;
    const double timeout_ms = service_->options_.admission_timeout_ms;
    const Clock::time_point overload_at =
        timeout_ms > 0 ? Clock::now() + MillisToDuration(timeout_ms)
                       : Clock::time_point::max();
    const Clock::time_point deadline_at =
        exec != nullptr && exec->has_deadline() ? exec->deadline()
                                                : Clock::time_point::max();
    const Clock::time_point wait_until = std::min(overload_at, deadline_at);

    std::unique_lock<std::mutex> lock(service_->admission_mutex_);
    waited_ = service_->running_queries_ >= service_->max_concurrent_;
    while (service_->running_queries_ >= service_->max_concurrent_) {
      if (exec != nullptr && exec->cancelled()) {
        status_ = Status::Cancelled("query cancelled while queued");
        return;
      }
      if (wait_until == Clock::time_point::max()) {
        service_->admission_cv_.wait(lock);
      } else if (service_->admission_cv_.wait_until(lock, wait_until) ==
                 std::cv_status::timeout) {
        if (Clock::now() >= deadline_at) {
          status_ = Status::Timeout(
              "query deadline exceeded while queued for admission");
        } else {
          status_ = Status::Overloaded(
              "admission wait exceeded " +
              std::to_string(static_cast<int64_t>(timeout_ms)) +
              " ms; service at max_concurrent_queries");
        }
        return;
      }
    }
    admitted_ = true;
    ++service_->running_queries_;
    budget_ = std::max(
        1, ThreadPool::Global().num_threads() / service_->running_queries_);
  }

  ~AdmissionSlot() {
    if (!admitted_) {
      return;  // a rejected wait holds no slot; nothing to release
    }
    {
      std::lock_guard<std::mutex> lock(service_->admission_mutex_);
      --service_->running_queries_;
    }
    service_->admission_cv_.notify_one();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool ok() const { return admitted_; }
  const Status& status() const { return status_; }
  int budget() const { return budget_; }
  bool waited() const { return waited_; }

 private:
  QueryService* service_;
  Status status_;
  int budget_ = 1;
  bool admitted_ = false;
  bool waited_ = false;
};

QueryService::QueryService(Database db, ServiceOptions options)
    : db_(std::move(db)),
      options_(options),
      max_concurrent_(options.max_concurrent_queries > 0
                          ? options.max_concurrent_queries
                          : ThreadPool::Global().num_threads()),
      cache_(options.enable_result_cache ? options.result_cache_capacity : 0,
             options.result_cache_max_bytes) {
  latencies_.reserve(std::max<size_t>(options_.latency_reservoir, 1));
  if (!options_.wal_path.empty()) {
    Result<WalWriter> wal = WalWriter::Open(options_.wal_path);
    if (wal.ok()) {
      wal_ = std::move(wal).value();
    } else {
      // Deferred failure: queries run, but every mutation returns this
      // status (WalGate) -- never silently non-durable.
      wal_open_status_ = wal.status();
    }
  }
}

QueryService::~QueryService() = default;

std::unique_ptr<Session> QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.sessions_opened;
  ++stats_.active_sessions;
  return std::unique_ptr<Session>(new Session(this, next_session_id_++));
}

void QueryService::OnSessionClosed() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  --stats_.active_sessions;
}

void QueryService::NoteConnectionOpened() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.net.connections_accepted;
  ++stats_.net.connections_active;
}

void QueryService::NoteConnectionClosed(bool timed_out) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  --stats_.net.connections_active;
  if (timed_out) {
    ++stats_.net.connections_timed_out;
  }
}

void QueryService::NoteConnectionShed() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.net.connections_shed;
}

void QueryService::NoteRequestShed() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.net.requests_shed;
}

void QueryService::NoteNetBytes(int64_t bytes_in, int64_t bytes_out) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.net.bytes_in += bytes_in;
  stats_.net.bytes_out += bytes_out;
}

Status QueryService::WalGate() const {
  if (!options_.wal_path.empty() && !wal_.is_open()) {
    return wal_open_status_;
  }
  return Status::Ok();
}

Status QueryService::FinishAppend(Status append_status) {
  if (append_status.ok() && options_.sync_wal) {
    append_status = wal_.Sync();
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (append_status.ok()) {
    ++stats_.wal_appends;
  } else {
    ++stats_.wal_failures;
  }
  return append_status;
}

Status QueryService::CreateRelation(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Status status = WalGate();
  if (status.ok()) {
    status = db_.CreateRelation(name);
  }
  if (status.ok() && wal_.is_open()) {
    status = FinishAppend(wal_.AppendCreateRelation(name));
  }
  if (status.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(name);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return status;
}

Result<int64_t> QueryService::Insert(const std::string& relation,
                                     const TimeSeries& series) {
  // The insert bumps the routed shard's epoch inside the data plane; the
  // relation epoch (the shard roll-up) therefore changes before the lock
  // drops, so no reader can pair the new data with the old version. The
  // WAL append happens under the same lock, so log order == apply order.
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  const Status gate = WalGate();
  if (!gate.ok()) {
    return gate;
  }
  Result<int64_t> result = db_.Insert(relation, series);
  if (result.ok() && wal_.is_open()) {
    const Status logged = FinishAppend(wal_.AppendInsert(relation, series));
    if (!logged.ok()) {
      return logged;
    }
  }
  if (result.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(relation);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return result;
}

Status QueryService::BulkLoad(const std::string& relation,
                              const std::vector<TimeSeries>& series) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Status status = WalGate();
  if (status.ok()) {
    status = db_.BulkLoad(relation, series);
  }
  if (status.ok() && wal_.is_open()) {
    status = FinishAppend(wal_.AppendBulkLoad(relation, series));
  }
  if (status.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(relation);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return status;
}

Status QueryService::Checkpoint() {
  if (options_.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "checkpointing requires ServiceOptions::snapshot_path");
  }
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  // Snapshot first, truncate second: a crash between the two leaves the
  // snapshot plus a WAL whose replay re-applies already-snapshotted
  // mutations' successors -- never a gap. (The WAL is only truncated
  // after the snapshot's rename has committed it.)
  Status status = SaveDatabase(db_, options_.snapshot_path);
  if (status.ok() && wal_.is_open()) {
    status = wal_.Truncate();
  }
  if (status.ok()) {
    lock.unlock();
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.checkpoints;
  }
  return status;
}

uint64_t QueryService::EpochLocked(const std::string& relation,
                                   int* shards) const {
  const Relation* rel = db_.GetRelation(relation);
  if (shards != nullptr) {
    *shards = rel == nullptr ? 0 : rel->sharded().num_shards();
  }
  return rel == nullptr ? 0 : rel->epoch();
}

uint64_t QueryService::RelationEpoch(const std::string& relation) const {
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return EpochLocked(relation, nullptr);
}

Result<Query> QueryService::ParseTracked(const std::string& text) {
  Result<Query> parsed = ParseQuery(text);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.cold_parses;
  return parsed;
}

double QueryService::ResolveDeadlineMs(const ExecOptions& options) const {
  return options.deadline_ms < 0 ? options_.default_deadline_ms
                                 : options.deadline_ms;
}

void QueryService::CountTermination(const Status& status) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (status.code()) {
    case StatusCode::kTimeout:
      ++stats_.timeouts;
      break;
    case StatusCode::kCancelled:
      ++stats_.cancellations;
      break;
    case StatusCode::kOverloaded:
      ++stats_.overloaded;
      break;
    default:
      break;
  }
}

Result<ServiceResult> QueryService::Execute(const Query& query) {
  return ExecuteInternal(query, /*prepared=*/false);
}

Result<ServiceResult> QueryService::Execute(const Query& query,
                                            const ExecOptions& options) {
  const double deadline_ms = ResolveDeadlineMs(options);
  if (query.exec != nullptr || deadline_ms <= 0) {
    return ExecuteInternal(query, /*prepared=*/false);
  }
  auto ctx = std::make_shared<ExecutionContext>();
  ctx->set_deadline_after(MillisToDuration(deadline_ms));
  Query bounded = query;
  bounded.exec = std::move(ctx);
  return ExecuteInternal(bounded, /*prepared=*/false);
}

Result<ServiceResult> QueryService::ExecuteText(const std::string& text,
                                                const ExecOptions& options) {
  Result<Query> parsed = ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return Execute(parsed.value(), options);
}

Result<ServiceResult> QueryService::ExecuteInternal(const Query& query,
                                                    bool prepared) {
  Stopwatch watch;
  const ExecutionContext* exec = query.exec.get();
  // Fast-fail before admission: born cancelled (session in the cancelled
  // state) or a deadline already in the past.
  if (exec != nullptr) {
    const Status start = exec->Check();
    if (!start.ok()) {
      CountTermination(start);
      return start;
    }
  }
  AdmissionSlot slot(this, exec);
  if (!slot.ok()) {
    CountTermination(slot.status());
    return slot.status();
  }
  ThreadPool::ScopedParallelismBudget budget(slot.budget());

  ServiceResult out;
  bool cache_hit = false;
  uint64_t epoch = 0;
  int shards = 0;
  {
    // Shared lock: the query -- including its cache probe/fill -- runs
    // against one data version; writers wait, other readers do not. The
    // epoch is the relation's per-shard roll-up, read under the same
    // acquisition as the data it names.
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    epoch = EpochLocked(query.relation, &shards);
    // Cached entries replay their execution's plan metadata (filter,
    // pruning counts), and a query's effective filter configuration is
    // resolved against the engine-wide settings at execution time -- so
    // when the quantized engine would run, the key must name it AND its
    // bit width, or an entry cached before a set_filter_engine /
    // set_filter_options change would keep reporting the old plan. The
    // exact-engine case keeps the historical key rendering.
    const bool effectively_quantized =
        query.filter == FilterMode::kFiltered ||
        (query.filter == FilterMode::kDefault &&
         db_.filter_engine() == FilterEngine::kQuantized);
    const std::string key =
        CanonicalQueryKey(query) + "@" + std::to_string(epoch) +
        (effectively_quantized
             ? "@fq" + std::to_string(db_.filter_options().bits_per_dim)
             : "");
    if (!cache_.Get(key, &out.result)) {
      Result<QueryResult> executed = [&]() -> Result<QueryResult> {
        try {
          return db_.Execute(query);
        } catch (const std::exception& e) {
          // An exception escaping the engine (e.g. a fault-injected pool
          // task) fails this query, not the service: the shared lock and
          // admission slot unwind normally, the session stays usable.
          return Status::Internal(std::string("query execution failed: ") +
                                  e.what());
        }
      }();
      if (!executed.ok()) {
        CountTermination(executed.status());
        return executed.status();
      }
      out.result = std::move(executed).value();
      cache_.Put(key, query.relation, out.result);
      if (out.result.stats.degraded) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.degraded_queries;
      }
    } else {
      cache_hit = true;
    }
    // A degraded index execution actually ran on the pointer tree.
    out.plan.engine =
        out.result.stats.used_index
            ? (out.result.stats.degraded ||
                       db_.EffectiveIndexEngine() == IndexEngine::kPointer
                   ? "pointer"
                   : "packed")
            : "columnar";
  }
  out.plan.strategy = out.result.stats.used_index ? "index" : "scan";
  out.plan.filter = out.result.stats.used_filter ? "quantized" : "none";
  if (out.result.stats.used_filter) {
    out.plan.filter_scanned = out.result.stats.filter_scanned;
    out.plan.candidates = out.result.stats.candidates;
    if (out.result.stats.filter_scanned > 0) {
      out.plan.pruning_ratio =
          1.0 - static_cast<double>(out.result.stats.candidates) /
                    static_cast<double>(out.result.stats.filter_scanned);
    }
  }
  out.plan.cache_hit = cache_hit;
  out.plan.prepared = prepared;
  out.plan.explain = query.explain;
  out.plan.degraded = out.result.stats.degraded;
  out.plan.shards = shards;
  out.plan.relation_epoch = epoch;
  out.plan.fingerprint = QueryFingerprint(query);
  out.elapsed_ms = watch.ElapsedMillis();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    if (prepared) {
      ++stats_.prepared_executions;
    }
    if (slot.waited()) {
      ++stats_.admission_waits;
    }
  }
  RecordLatency(out.elapsed_ms);
  return out;
}

void QueryService::RecordLatency(double millis) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  const size_t capacity = std::max<size_t>(options_.latency_reservoir, 1);
  if (latencies_.size() < capacity) {
    latencies_.push_back(millis);
  } else {
    latencies_[latency_next_] = millis;
  }
  latency_next_ = (latency_next_ + 1) % capacity;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
    samples = latencies_;
  }
  out.cache = cache_.stats();
  if (!samples.empty()) {
    out.latency_p50_ms = Percentile(samples, 50.0);
    out.latency_p95_ms = Percentile(samples, 95.0);
    out.latency_p99_ms = Percentile(samples, 99.0);
  }
  return out;
}

}  // namespace simq
