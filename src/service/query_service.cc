#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "core/parser.h"
#include "service/fingerprint.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace simq {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::~Session() { service_->OnSessionClosed(); }

Result<int64_t> Session::Prepare(const std::string& text) {
  Result<Query> parsed = service_->ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  PreparedStatement statement;
  statement.text = text;
  statement.query = std::move(parsed).value();
  // Normalize a literal query series once: every execution that keeps the
  // template's series skips ToNormalForm + re-validation. Substituting the
  // normal form with query_prenormalized set is answer-preserving by
  // definition of the PRENORMALIZED clause (the engine would compute the
  // same doubles itself).
  if (statement.query.kind != QueryKind::kAllPairs &&
      statement.query.mode == DistanceMode::kNormalForm &&
      !statement.query.query_prenormalized &&
      statement.query.query_series.is_literal() &&
      !statement.query.query_series.literal.empty()) {
    statement.normalized_literal =
        ToNormalForm(statement.query.query_series.literal).values;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t id = next_statement_id_++;
  statements_[id] = std::move(statement);
  return id;
}

Result<ServiceResult> Session::ExecutePrepared(int64_t statement_id,
                                               const BindParams& params) {
  Query query;
  std::vector<double> normalized_literal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = statements_.find(statement_id);
    if (it == statements_.end()) {
      return Status::NotFound("no prepared statement with id " +
                              std::to_string(statement_id));
    }
    query = it->second.query;  // cheap: shares the compiled rule chain
    normalized_literal = it->second.normalized_literal;
  }
  if (params.epsilon.has_value()) {
    if (query.kind == QueryKind::kNearest) {
      return Status::InvalidArgument(
          "epsilon parameter is not bindable on a NEAREST statement");
    }
    query.epsilon = *params.epsilon;
  }
  if (params.k.has_value()) {
    if (query.kind != QueryKind::kNearest) {
      return Status::InvalidArgument(
          "k parameter is only bindable on NEAREST statements");
    }
    query.k = *params.k;
  }
  if (params.series.has_value()) {
    if (query.kind == QueryKind::kAllPairs) {
      return Status::InvalidArgument(
          "series parameter is not bindable on a PAIRS statement");
    }
    query.query_series = *params.series;
  } else if (!normalized_literal.empty()) {
    query.query_series.literal = std::move(normalized_literal);
    query.query_prenormalized = true;
  }
  return service_->ExecuteInternal(query, /*prepared=*/true);
}

Result<ServiceResult> Session::Execute(const std::string& text) {
  return service_->ExecuteText(text);
}

Status Session::Close(int64_t statement_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (statements_.erase(statement_id) == 0) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(statement_id));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

// Blocks until the service is below its concurrency limit, then divides
// the pool between the queries now running: with R running queries the
// newcomer gets floor(threads / R) threads (at least 1). The budget is
// computed at admission and kept for the query's lifetime -- a fixed
// contract per execution rather than a moving target.
class QueryService::AdmissionSlot {
 public:
  explicit AdmissionSlot(QueryService* service) : service_(service) {
    std::unique_lock<std::mutex> lock(service_->admission_mutex_);
    waited_ = service_->running_queries_ >= service_->max_concurrent_;
    service_->admission_cv_.wait(lock, [this] {
      return service_->running_queries_ < service_->max_concurrent_;
    });
    ++service_->running_queries_;
    budget_ = std::max(
        1, ThreadPool::Global().num_threads() / service_->running_queries_);
  }

  ~AdmissionSlot() {
    {
      std::lock_guard<std::mutex> lock(service_->admission_mutex_);
      --service_->running_queries_;
    }
    service_->admission_cv_.notify_one();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  int budget() const { return budget_; }
  bool waited() const { return waited_; }

 private:
  QueryService* service_;
  int budget_ = 1;
  bool waited_ = false;
};

QueryService::QueryService(Database db, ServiceOptions options)
    : db_(std::move(db)),
      options_(options),
      max_concurrent_(options.max_concurrent_queries > 0
                          ? options.max_concurrent_queries
                          : ThreadPool::Global().num_threads()),
      cache_(options.enable_result_cache ? options.result_cache_capacity
                                         : 0) {
  latencies_.reserve(std::max<size_t>(options_.latency_reservoir, 1));
}

QueryService::~QueryService() = default;

std::unique_ptr<Session> QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.sessions_opened;
  ++stats_.active_sessions;
  return std::unique_ptr<Session>(new Session(this, next_session_id_++));
}

void QueryService::OnSessionClosed() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  --stats_.active_sessions;
}

Status QueryService::CreateRelation(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  const Status status = db_.CreateRelation(name);
  if (status.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(name);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return status;
}

Result<int64_t> QueryService::Insert(const std::string& relation,
                                     const TimeSeries& series) {
  // The insert bumps the routed shard's epoch inside the data plane; the
  // relation epoch (the shard roll-up) therefore changes before the lock
  // drops, so no reader can pair the new data with the old version.
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  Result<int64_t> result = db_.Insert(relation, series);
  if (result.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(relation);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return result;
}

Status QueryService::BulkLoad(const std::string& relation,
                              const std::vector<TimeSeries>& series) {
  std::unique_lock<std::shared_mutex> lock(data_mutex_);
  const Status status = db_.BulkLoad(relation, series);
  if (status.ok()) {
    lock.unlock();
    cache_.InvalidateRelation(relation);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.mutations;
  }
  return status;
}

uint64_t QueryService::EpochLocked(const std::string& relation,
                                   int* shards) const {
  const Relation* rel = db_.GetRelation(relation);
  if (shards != nullptr) {
    *shards = rel == nullptr ? 0 : rel->sharded().num_shards();
  }
  return rel == nullptr ? 0 : rel->epoch();
}

uint64_t QueryService::RelationEpoch(const std::string& relation) const {
  std::shared_lock<std::shared_mutex> lock(data_mutex_);
  return EpochLocked(relation, nullptr);
}

Result<Query> QueryService::ParseTracked(const std::string& text) {
  Result<Query> parsed = ParseQuery(text);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.cold_parses;
  return parsed;
}

Result<ServiceResult> QueryService::Execute(const Query& query) {
  return ExecuteInternal(query, /*prepared=*/false);
}

Result<ServiceResult> QueryService::ExecuteText(const std::string& text) {
  Result<Query> parsed = ParseTracked(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return ExecuteInternal(parsed.value(), /*prepared=*/false);
}

Result<ServiceResult> QueryService::ExecuteInternal(const Query& query,
                                                    bool prepared) {
  Stopwatch watch;
  AdmissionSlot slot(this);
  ThreadPool::ScopedParallelismBudget budget(slot.budget());

  ServiceResult out;
  bool cache_hit = false;
  uint64_t epoch = 0;
  int shards = 0;
  {
    // Shared lock: the query -- including its cache probe/fill -- runs
    // against one data version; writers wait, other readers do not. The
    // epoch is the relation's per-shard roll-up, read under the same
    // acquisition as the data it names.
    std::shared_lock<std::shared_mutex> lock(data_mutex_);
    epoch = EpochLocked(query.relation, &shards);
    // Cached entries replay their execution's plan metadata (filter,
    // pruning counts), and a query's effective filter configuration is
    // resolved against the engine-wide settings at execution time -- so
    // when the quantized engine would run, the key must name it AND its
    // bit width, or an entry cached before a set_filter_engine /
    // set_filter_options change would keep reporting the old plan. The
    // exact-engine case keeps the historical key rendering.
    const bool effectively_quantized =
        query.filter == FilterMode::kFiltered ||
        (query.filter == FilterMode::kDefault &&
         db_.filter_engine() == FilterEngine::kQuantized);
    const std::string key =
        CanonicalQueryKey(query) + "@" + std::to_string(epoch) +
        (effectively_quantized
             ? "@fq" + std::to_string(db_.filter_options().bits_per_dim)
             : "");
    if (!cache_.Get(key, &out.result)) {
      Result<QueryResult> executed = db_.Execute(query);
      if (!executed.ok()) {
        return executed.status();
      }
      out.result = std::move(executed).value();
      cache_.Put(key, query.relation, out.result);
    } else {
      cache_hit = true;
    }
    out.plan.engine =
        out.result.stats.used_index
            ? (db_.EffectiveIndexEngine() == IndexEngine::kPacked ? "packed"
                                                                  : "pointer")
            : "columnar";
  }
  out.plan.strategy = out.result.stats.used_index ? "index" : "scan";
  out.plan.filter = out.result.stats.used_filter ? "quantized" : "none";
  if (out.result.stats.used_filter) {
    out.plan.filter_scanned = out.result.stats.filter_scanned;
    out.plan.candidates = out.result.stats.candidates;
    if (out.result.stats.filter_scanned > 0) {
      out.plan.pruning_ratio =
          1.0 - static_cast<double>(out.result.stats.candidates) /
                    static_cast<double>(out.result.stats.filter_scanned);
    }
  }
  out.plan.cache_hit = cache_hit;
  out.plan.prepared = prepared;
  out.plan.explain = query.explain;
  out.plan.shards = shards;
  out.plan.relation_epoch = epoch;
  out.plan.fingerprint = QueryFingerprint(query);
  out.elapsed_ms = watch.ElapsedMillis();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    if (prepared) {
      ++stats_.prepared_executions;
    }
    if (slot.waited()) {
      ++stats_.admission_waits;
    }
  }
  RecordLatency(out.elapsed_ms);
  return out;
}

void QueryService::RecordLatency(double millis) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  const size_t capacity = std::max<size_t>(options_.latency_reservoir, 1);
  if (latencies_.size() < capacity) {
    latencies_.push_back(millis);
  } else {
    latencies_[latency_next_] = millis;
  }
  latency_next_ = (latency_next_ + 1) % capacity;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
    samples = latencies_;
  }
  out.cache = cache_.stats();
  if (!samples.empty()) {
    out.latency_p50_ms = Percentile(samples, 50.0);
    out.latency_p95_ms = Percentile(samples, 95.0);
    out.latency_p99_ms = Percentile(samples, 99.0);
  }
  return out;
}

}  // namespace simq
