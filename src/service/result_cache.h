/// LRU cache of query results, keyed by canonical fingerprint + relation
/// epoch (service/fingerprint.h).
///
/// The epoch suffix already makes entries from older data versions
/// unreachable; InvalidateRelation additionally evicts them eagerly on
/// mutation so a write never leaves dead entries squatting on capacity.
/// Entries store full QueryResult copies, including the ExecutionStats of
/// the execution that produced them -- a hit replays the original answer
/// set bit-for-bit (asserted by the service tests and the serve bench).
///
/// Two independent bounds, both enforced LRU-first:
///  * capacity: the maximum entry count (0 disables the cache);
///  * max_bytes: the maximum approximate memory footprint (0 = unbounded).
/// Footprint is the sum of ApproxEntryBytes over resident entries -- entry
/// struct + string capacities + match/pair vector capacities, a slight
/// underestimate of true heap use (allocator headers, map nodes) but
/// monotone in result size, which is what the bound is for: one query with
/// a huge answer set cannot pin unbounded memory. An insert whose entry
/// alone exceeds max_bytes evicts everything and then itself -- oversized
/// results are simply not cacheable.
///
/// Thread-safe; every method takes the internal mutex. Copies in and out
/// are deliberate: the cache never hands out references into itself, so
/// hits stay valid across later evictions.

#ifndef SIMQ_SERVICE_RESULT_CACHE_H_
#define SIMQ_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/query.h"

namespace simq {

class ResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t invalidated_entries = 0;  // evicted by InvalidateRelation
    int64_t evictions = 0;            // evicted by capacity/byte pressure
    int64_t bytes = 0;                // current approximate footprint
  };

  /// A capacity of 0 disables the cache (Get always misses, Put drops).
  /// `max_bytes` of 0 leaves the footprint unbounded (entry count only).
  explicit ResultCache(size_t capacity, size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached result into *out, refreshes recency, and
  /// returns true.
  bool Get(const std::string& key, QueryResult* out);

  /// Inserts (or refreshes) `result` under `key`, tagged with the relation
  /// it was computed against; evicts least-recently-used entries until both
  /// the entry-count and byte bounds hold again.
  void Put(const std::string& key, const std::string& relation,
           const QueryResult& result);

  /// Evicts every entry computed against `relation`.
  void InvalidateRelation(const std::string& relation);

  void Clear();

  size_t size() const;
  /// Current approximate footprint of resident entries, in bytes.
  size_t bytes() const;
  Stats stats() const;

  /// Approximate heap footprint of one cached result (see file comment).
  static size_t ApproxResultBytes(const QueryResult& result);

 private:
  struct Entry {
    std::string key;
    std::string relation;
    QueryResult result;
    size_t bytes = 0;  // ApproxEntryBytes at insert/refresh time
  };

  static size_t ApproxEntryBytes(const Entry& entry);
  /// Drops the least recently used entry; caller holds mutex_.
  void EvictBack();

  mutable std::mutex mutex_;
  size_t capacity_;
  size_t max_bytes_;
  size_t bytes_ = 0;  // sum of Entry::bytes over lru_
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace simq

#endif  // SIMQ_SERVICE_RESULT_CACHE_H_
