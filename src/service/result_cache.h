/// LRU cache of query results, keyed by canonical fingerprint + relation
/// epoch (service/fingerprint.h).
///
/// The epoch suffix already makes entries from older data versions
/// unreachable; InvalidateRelation additionally evicts them eagerly on
/// mutation so a write never leaves dead entries squatting on capacity.
/// Entries store full QueryResult copies, including the ExecutionStats of
/// the execution that produced them -- a hit replays the original answer
/// set bit-for-bit (asserted by the service tests and the serve bench).
///
/// Thread-safe; every method takes the internal mutex. Copies in and out
/// are deliberate: the cache never hands out references into itself, so
/// hits stay valid across later evictions.

#ifndef SIMQ_SERVICE_RESULT_CACHE_H_
#define SIMQ_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/query.h"

namespace simq {

class ResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t invalidated_entries = 0;  // evicted by InvalidateRelation
    int64_t evictions = 0;            // evicted by capacity pressure
  };

  /// A capacity of 0 disables the cache (Get always misses, Put drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached result into *out, refreshes recency, and
  /// returns true.
  bool Get(const std::string& key, QueryResult* out);

  /// Inserts (or refreshes) `result` under `key`, tagged with the relation
  /// it was computed against; evicts the least recently used entry beyond
  /// capacity.
  void Put(const std::string& key, const std::string& relation,
           const QueryResult& result);

  /// Evicts every entry computed against `relation`.
  void InvalidateRelation(const std::string& relation);

  void Clear();

  size_t size() const;
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string relation;
    QueryResult result;
  };

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace simq

#endif  // SIMQ_SERVICE_RESULT_CACHE_H_
