#include "service/result_cache.h"

namespace simq {

bool ResultCache::Get(const std::string& key, QueryResult* out) {
  if (capacity_ == 0) {
    return false;  // disabled: not even a counted miss
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  ++stats_.hits;
  return true;
}

void ResultCache::Put(const std::string& key, const std::string& relation,
                      const QueryResult& result) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, relation, result});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::InvalidateRelation(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->relation == relation) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidated_entries;
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  lru_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace simq
