#include "service/result_cache.h"

namespace simq {

size_t ResultCache::ApproxResultBytes(const QueryResult& result) {
  size_t bytes = sizeof(QueryResult);
  bytes += result.matches.capacity() * sizeof(Match);
  for (const Match& match : result.matches) {
    bytes += match.name.capacity();
  }
  bytes += result.pairs.capacity() * sizeof(PairMatch);
  return bytes;
}

size_t ResultCache::ApproxEntryBytes(const Entry& entry) {
  return sizeof(Entry) + entry.key.capacity() + entry.relation.capacity() +
         ApproxResultBytes(entry.result);
}

void ResultCache::EvictBack() {
  bytes_ -= lru_.back().bytes;
  index_.erase(lru_.back().key);
  lru_.pop_back();
  ++stats_.evictions;
}

bool ResultCache::Get(const std::string& key, QueryResult* out) {
  if (capacity_ == 0) {
    return false;  // disabled: not even a counted miss
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  ++stats_.hits;
  return true;
}

void ResultCache::Put(const std::string& key, const std::string& relation,
                      const QueryResult& result) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *it->second;
    bytes_ -= entry.bytes;
    entry.result = result;
    entry.bytes = ApproxEntryBytes(entry);
    bytes_ += entry.bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, relation, result, 0});
    lru_.front().bytes = ApproxEntryBytes(lru_.front());
    bytes_ += lru_.front().bytes;
    index_[key] = lru_.begin();
    ++stats_.insertions;
  }
  // LRU-evict past either bound. An entry larger than the whole byte
  // budget drains the list and finally evicts itself -- the cache never
  // holds more than max_bytes_, even transiently across calls.
  while (!lru_.empty() &&
         (lru_.size() > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    EvictBack();
  }
}

void ResultCache::InvalidateRelation(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->relation == relation) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidated_entries;
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.bytes = static_cast<int64_t>(bytes_);
  return out;
}

}  // namespace simq
