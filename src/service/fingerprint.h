/// Canonical query fingerprints: the result-cache key and the prepared-
/// statement identity of the query service.
///
/// CanonicalQueryKey renders a parsed Query into a canonical string that is
/// equal iff the two queries denote the same answer set over the same
/// relation contents (modulo execution strategy, which is included because
/// it changes the reported ExecutionStats, and they are part of the cached
/// QueryResult). Properties:
///
///  * Purely syntactic inputs that cannot change the result are excluded:
///    the EXPLAIN flag, keyword case, clause order, whitespace -- all
///    already normalized away by the parser/AST.
///  * Floating-point parameters (epsilon, literals, statistic ranges) are
///    rendered as exact IEEE-754 bit patterns, never decimal round-trips,
///    so distinct doubles never collide and equal doubles always agree.
///  * Transformations are rendered via TransformationRule::name(), the
///    canonical textual form of the rule chain.
///
/// The service appends "@<relation epoch>" before using the key, pinning
/// every cache entry to the data version it was computed against (see
/// service/query_service.h).

#ifndef SIMQ_SERVICE_FINGERPRINT_H_
#define SIMQ_SERVICE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "core/query.h"

namespace simq {

/// The canonical rendering described above.
std::string CanonicalQueryKey(const Query& query);

/// FNV-1a 64-bit hash of CanonicalQueryKey -- a compact identity for logs
/// and the shell's EXPLAIN output. The cache itself keys on the full string
/// (hashes may collide; answers must not).
uint64_t QueryFingerprint(const Query& query);

}  // namespace simq

#endif  // SIMQ_SERVICE_FINGERPRINT_H_
