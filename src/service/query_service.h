/// The concurrent query service: the layer that turns the single-Database
/// engine into something that serves sustained multi-client traffic.
///
/// A QueryService owns a Database and serves any number of concurrent
/// Sessions. Four mechanisms, layered (see DESIGN.md "Query service"):
///
///  * Snapshot-isolated concurrency. All data-plane reads and writes go
///    through one reader/writer lock (std::shared_mutex): queries hold it
///    shared -- any number run fully in parallel, on the immutable packed
///    index snapshot and the append-only columnar store -- while
///    Insert/BulkLoad/CreateRelation hold it exclusive. Every relation
///    carries a monotonically increasing epoch -- the roll-up of its
///    per-shard mutation counters (core/sharded_relation.h), bumped by
///    every mutation of any shard; a query reads the epoch once under the
///    shared lock, so the epoch it reports (and caches under) names
///    exactly the (records, FeatureStore, PackedRTree) version it
///    executed against.
///
///  * Prepared queries. Session::Prepare parses and validates once;
///    ExecutePrepared reuses the AST -- including the compiled
///    TransformationRule chain and, when the query series is a literal, its
///    precomputed normal form -- and binds per-execution parameters
///    (epsilon, k, the query series). Prepared execution returns answers
///    bit-identical to a cold parse->execute of the same text.
///
///  * Result cache. Successful results are cached under the canonical
///    query fingerprint + relation epoch (service/fingerprint.h,
///    service/result_cache.h); mutations invalidate per relation. A hit
///    replays the original answer set without touching the engine. The
///    cache is bounded both by entry count and by approximate bytes
///    (ServiceOptions::result_cache_max_bytes).
///
///  * Admission scheduler. At most `max_concurrent_queries` queries execute
///    at once (the rest wait FIFO-ish on a condition variable, bounded by
///    ServiceOptions::admission_timeout_ms -> kOverloaded), and each
///    admitted query gets a parallelism budget of roughly
///    pool_threads / running_queries, installed as a
///    ThreadPool::ScopedParallelismBudget -- one query saturates the
///    machine when alone, concurrent queries share it instead of
///    oversubscribing the pool with 4x blocks each.
///
/// Query-lifecycle hardening (this layer's fault story; DESIGN.md
/// "Durability & fault handling"):
///
///  * Deadlines. Every execution may carry a deadline
///    (ExecOptions::deadline_ms, defaulting to
///    ServiceOptions::default_deadline_ms). The service binds it into an
///    ExecutionContext on the query; the engine polls it at block
///    boundaries and the admission wait respects it, so an expired query
///    returns kTimeout within one poll interval -- whether it was running
///    or still queued -- and never returns partial answers.
///
///  * Cancellation. Session::Cancel() cancels every query in flight on
///    that session (they return kCancelled at their next poll) and makes
///    the session refuse new executions until ResetCancel(). Admission
///    waiters are woken and bail out too -- a cancelled query never
///    consumes an execution slot.
///
///  * Overload shedding. When the admission wait exceeds
///    admission_timeout_ms the execution fails fast with kOverloaded
///    instead of queueing unboundedly. Slots never leak: only an admitted
///    execution decrements the running count.
///
///  * Graceful degradation. A failed packed-snapshot or quantized-code
///    compile (fault-injected today, any real resource failure tomorrow)
///    demotes the query to the pointer-tree / exact-scan path inside the
///    engine; the service surfaces it in QueryPlan::degraded and the
///    degraded_queries counter. Answers are identical; only the
///    acceleration is lost. An exception escaping the engine (e.g. the
///    "pool.task" failpoint) is caught and returned as kInternal -- one
///    poisoned query never takes down the service or its sessions.
///
///  * Durability. With ServiceOptions::wal_path set, every successful
///    mutation is appended to the write-ahead log (core/wal.h) under the
///    same exclusive lock that applied it -- log order is apply order --
///    and synced before the mutation is acknowledged (sync_wal).
///    Checkpoint() writes an atomic snapshot (core/persistence.h) and
///    truncates the log. Build the Database with OpenDurableDatabase over
///    the same paths to recover: snapshot + WAL replay reconstructs every
///    acknowledged mutation after a crash at any instruction.
///
/// Observability (DESIGN.md "Observability"): every counter the service
/// keeps lives in an obs::MetricRegistry -- owned per service by default
/// so instances never bleed into each other, shareable via
/// ServiceOptions::metrics_registry. Latency percentiles come from a
/// bounded log-bucketed histogram (simq_query_latency_ms), not a sample
/// vector. Executions are traced (a span tree on the ExecutionContext)
/// when the query is EXPLAIN ANALYZE, when ExecOptions::force_trace is
/// set, or when the 1-in-N sampler (ServiceOptions::trace_sample_every)
/// fires; traced queries that cross the slow-query threshold are appended
/// to the structured JSONL slow-query log (obs/slow_query_log.h).
/// ServiceStats remains the aggregated read API; stats() assembles it
/// from the registry.
///
/// Thread-safety summary (which lock guards what):
///  * data_mutex_ (std::shared_mutex): the database, its epochs, and the
///    WAL writer. Execute/ExecuteText/ExecutePrepared/RelationEpoch take
///    it shared; CreateRelation/Insert/BulkLoad/Checkpoint take it
///    exclusive. Everything that runs under the shared lock is
///    snapshot-safe: packed index snapshots are immutable, FeatureStores
///    append-only, node-access counters relaxed atomics.
///  * admission_mutex_: the running-query count and its condvar.
///  * stats_mutex_: session-id allocation. Counters live in the metrics
///    registry (sharded atomics; obs/metrics.h) and need no lock.
///  * Session::mutex_: that session's prepared-statement map, cancel
///    flag, and in-flight execution contexts.
/// All public methods of QueryService and Session are safe to call from
/// any thread concurrently, EXCEPT database_unlocked() /
/// mutable_database_unlocked(), which bypass data_mutex_ by design.
///
/// Lifetime: Sessions hold a pointer to their service. Destroy all
/// sessions before the service (the shell and tests scope them naturally).

#ifndef SIMQ_SERVICE_QUERY_SERVICE_H_
#define SIMQ_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/database.h"
#include "core/exec_context.h"
#include "core/query.h"
#include "core/wal.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource_usage.h"
#include "obs/slow_query_log.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "service/result_cache.h"
#include "ts/time_series.h"
#include "util/status.h"

namespace simq {

class QueryService;

struct ServiceOptions {
  /// Maximum queries executing simultaneously; 0 means the thread pool
  /// width (ThreadPool::Global().num_threads()).
  int max_concurrent_queries = 0;
  /// Result cache entries; 0 disables caching entirely.
  size_t result_cache_capacity = 256;
  /// Approximate byte budget for the result cache; 0 = unbounded. LRU
  /// entries are evicted past it, so one huge answer set cannot pin
  /// unbounded memory (service/result_cache.h).
  size_t result_cache_max_bytes = 0;
  bool enable_result_cache = true;
  /// Historical knob for the latency sample ring buffer. The percentile
  /// stats now come from a bounded log-bucketed histogram
  /// (obs/metrics.h), so this field is ignored; it remains so existing
  /// callers keep compiling.
  size_t latency_reservoir = 4096;

  /// Metrics registry to record into. Null (the default) means the
  /// service constructs and owns a private registry -- counters never
  /// bleed across service instances. Pass one to share a registry across
  /// services or to scrape it from outside; it must outlive the service.
  obs::MetricRegistry* metrics_registry = nullptr;
  /// Trace 1 in N executions (0 = never sample). Independent of EXPLAIN
  /// ANALYZE and ExecOptions::force_trace, which always trace.
  int trace_sample_every = 0;
  /// Structured slow-query log (obs/slow_query_log.h); empty = disabled.
  /// Only traced executions are considered -- a slow line always carries
  /// its span tree.
  std::string slow_query_log_path;
  /// Minimum elapsed time for a traced query to reach the slow-query log.
  double slow_query_threshold_ms = 100.0;
  /// Keep 1 in N of the qualifying (slow) queries; 1 logs them all.
  int slow_query_sample_every = 1;

  /// Default per-query deadline in milliseconds; 0 = no deadline.
  /// ExecOptions::deadline_ms overrides it per execution.
  double default_deadline_ms = 0.0;
  /// Longest an execution may wait for an admission slot before failing
  /// with kOverloaded; 0 = wait indefinitely (the historical behavior).
  double admission_timeout_ms = 0.0;

  /// Per-query resource accounting (obs/resource_usage.h): thread-CPU
  /// metering through the pool's per-task CLOCK_THREAD_CPUTIME_ID deltas
  /// plus the engine effort counters, returned on ServiceResult::usage
  /// and aggregated into the statements table. Off leaves every usage
  /// field zero and skips the clock reads (bench/obs_overhead.cc gates
  /// the on-cost at < 2%).
  bool enable_resource_accounting = true;
  /// Statement shapes the statements table tracks (LRU-bounded;
  /// obs/statements.h). 0 disables the table entirely.
  size_t statements_capacity = 256;
  /// Flight recorder receiving query/mutation/lifecycle events
  /// (obs/flight_recorder.h). Defaults to the process-wide black box;
  /// tests pass a private recorder, nullptr disables recording.
  obs::FlightRecorder* flight_recorder = &obs::FlightRecorder::Global();
  /// Stall watchdog (obs/watchdog.h): when > 0, a background thread
  /// fires -- records a "stall" event with the admission snapshot and
  /// dumps the flight recorder to its crash path -- whenever no query
  /// completes for this long while executions are pending. 0 = off.
  double watchdog_stall_after_ms = 0.0;
  /// Watchdog probe cadence (bounds detection latency only).
  double watchdog_poll_interval_ms = 250.0;

  /// Durability (off when wal_path is empty): successful mutations are
  /// appended to the WAL at wal_path before being acknowledged;
  /// Checkpoint() snapshots to snapshot_path and truncates the log.
  /// Recover by building the Database with OpenDurableDatabase over the
  /// same paths before handing it to the service.
  std::string snapshot_path;
  std::string wal_path;
  /// Sync the WAL (fdatasync) on every acknowledged mutation. Turning it
  /// off trades the tail of acknowledged-but-unsynced mutations for
  /// append throughput; replay correctness is unaffected.
  bool sync_wal = true;
};

/// Per-execution options (deadline today; the natural place for priority
/// or tracing knobs later). Distinct from BindParams, which binds query
/// *parameters* -- these knobs never affect the answer set.
struct ExecOptions {
  /// Deadline for this execution in milliseconds. Negative = use
  /// ServiceOptions::default_deadline_ms; 0 = explicitly unbounded;
  /// positive = this budget, measured from the Execute call (queue time
  /// counts against it).
  double deadline_ms = -1.0;
  /// Trace this execution regardless of the sampler (the shell's `.trace
  /// on`). The span tree comes back on ServiceResult::trace. Tracing
  /// never affects the answer set.
  bool force_trace = false;
};

/// Per-execution parameter bindings for a prepared statement. Unset fields
/// keep the prepared template's values.
struct BindParams {
  std::optional<double> epsilon;   // range / all-pairs threshold
  std::optional<int> k;            // nearest-neighbor count
  std::optional<SeriesRef> series; // range / nearest query object
};

/// How one execution was served; EXPLAIN renders this.
struct QueryPlan {
  std::string strategy;  // "index" or "scan"
  std::string engine;    // "packed", "pointer", or "columnar"
  /// Scan-side filter actually used: "quantized" when the execution took
  /// the filter-and-refine path, "none" otherwise.
  std::string filter = "none";
  bool cache_hit = false;
  bool prepared = false;
  bool explain = false;  // the query carried the EXPLAIN prefix
  bool analyze = false;  // EXPLAIN ANALYZE: executed and traced
  /// A derived-artifact compile failed and the engine fell back (packed ->
  /// pointer, filtered -> exact). Answers identical; `engine`/`filter`
  /// report the path actually taken.
  bool degraded = false;
  /// Shards of the queried relation (the scatter-gather width); 0 when the
  /// relation does not exist.
  int shards = 0;
  /// Quantized filter path only (0 / 0 / 0.0 otherwise): records or pairs
  /// bound-scanned, survivors refined through the exact kernels, and the
  /// fraction of scanned entries the bounds pruned.
  int64_t filter_scanned = 0;
  int64_t candidates = 0;
  double pruning_ratio = 0.0;
  uint64_t relation_epoch = 0;
  /// Artifact generation of the queried relation: bumped by every
  /// recompaction publish (core/sharded_relation.h), never by mutations.
  /// Answers are bit-identical across generations; the generation names
  /// which compiled snapshot served the query.
  uint64_t generation = 0;
  /// Rows currently in the relation's delta layer -- appended since its
  /// packed snapshots were compiled, merged into answers by exact scans.
  int64_t delta_rows = 0;
  uint64_t fingerprint = 0;  // QueryFingerprint of the executed AST
  /// Per-shard cardinalities (ExecutionStats::ShardStats): estimated
  /// candidates always (EXPLAIN and EXPLAIN ANALYZE render the
  /// estimated-vs-actual columns from the same rows), actuals filled by
  /// the execution. Empty on cache hits replaying a pre-observability
  /// entry and on queries that never reached the engine.
  std::vector<ExecutionStats::ShardStats> per_shard;
};

struct ServiceResult {
  QueryResult result;
  QueryPlan plan;
  double elapsed_ms = 0.0;
  /// Span tree of this execution; non-null only when it was traced
  /// (EXPLAIN ANALYZE, ExecOptions::force_trace, or the sampler).
  /// RenderTraceTree(trace->spans()) prints it.
  std::shared_ptr<obs::Trace> trace;
  /// What this execution cost (obs/resource_usage.h). Engine effort
  /// counters are zero on cache hits -- the replay did no engine work --
  /// while result_bytes and cpu_ns always reflect this execution. All
  /// zero when ServiceOptions::enable_resource_accounting is off.
  obs::ResourceUsage usage;
};

struct ServiceStats {
  int64_t queries = 0;              // total executions, including hits
  int64_t prepared_executions = 0;  // served via ExecutePrepared
  int64_t cold_parses = 0;          // text parses (Prepare + one-shot)
  int64_t mutations = 0;            // Insert/BulkLoad/CreateRelation
  int64_t admission_waits = 0;      // executions that queued for a slot
  int64_t sessions_opened = 0;
  int64_t active_sessions = 0;
  /// Query-lifecycle terminations (each failed execution counts once).
  int64_t timeouts = 0;       // kTimeout: deadline hit, queued or running
  int64_t cancellations = 0;  // kCancelled: Session::Cancel observed
  int64_t overloaded = 0;     // kOverloaded: admission wait timed out
  /// Executions that completed degraded (QueryPlan::degraded; cache-hit
  /// replays of a degraded result are not re-counted).
  int64_t degraded_queries = 0;
  /// Executions that carried a trace (ANALYZE, force_trace, or sampled).
  int64_t traced_queries = 0;
  /// Lines appended to the slow-query log (0 when it is disabled).
  int64_t slow_query_log_lines = 0;
  /// Durability counters (all 0 when wal_path is unset).
  int64_t wal_appends = 0;   // mutation frames acknowledged to the log
  int64_t wal_failures = 0;  // appends/syncs that returned an error
  int64_t checkpoints = 0;   // successful Checkpoint() calls
  /// Delta-layer state and maintenance (all 0 when the delta layer is
  /// off or nothing has been mutated since the last recompaction).
  int64_t recompactions = 0;     // successful recompaction publishes
  int64_t delta_rows = 0;        // rows currently in delta layers
  int64_t delta_tombstones = 0;  // deletes not yet shed by recompaction
  ResultCache::Stats cache;
  /// Latency percentiles from the simq_query_latency_ms histogram
  /// (milliseconds); 0 when no samples yet.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Network front-end counters, folded in by src/net/server.cc through
  /// the Note* hooks below (all 0 when no NetServer fronts this service).
  struct NetStats {
    int64_t connections_accepted = 0;
    int64_t connections_active = 0;
    int64_t connections_shed = 0;      // refused at accept (overload)
    int64_t connections_timed_out = 0; // closed by idle/stall timers
    int64_t requests_shed = 0;         // kOverloaded before reaching a slot
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
  };
  NetStats net;
};

/// A client's handle: a prepared-statement namespace plus entry points for
/// one-shot text queries. Sessions are cheap; open one per client/thread.
/// Each session is internally synchronized, so sharing one across threads
/// is also safe -- including Cancel() of a query another thread is running.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t id() const { return id_; }

  /// Parses and validates `text` once; returns a statement id for
  /// ExecutePrepared. The compiled transformation chain and (for literal
  /// query series in normal-form mode) the precomputed normal form are
  /// reused by every execution.
  Result<int64_t> Prepare(const std::string& text);

  /// Executes a prepared statement with optional parameter bindings.
  Result<ServiceResult> ExecutePrepared(int64_t statement_id,
                                        const BindParams& params = {},
                                        const ExecOptions& options = {});

  /// One-shot: parse + execute (the cold path the bench compares against).
  Result<ServiceResult> Execute(const std::string& text,
                                const ExecOptions& options = {});

  /// Drops a prepared statement; subsequent executions return NotFound.
  Status Close(int64_t statement_id);

  /// Cancels every execution currently in flight on this session (each
  /// returns kCancelled at its next poll, within one block of work) and
  /// puts the session in the cancelled state: new executions fail
  /// immediately with kCancelled until ResetCancel(). Admission waiters
  /// are woken so a queued query never consumes a slot after cancel.
  void Cancel();
  /// Leaves the cancelled state; already-cancelled executions stay
  /// cancelled (the flag on their context is sticky by design).
  void ResetCancel();

  /// Cumulative ResourceUsage of every successful execution finished on
  /// this session -- the per-session (and, for the network server, whose
  /// connections own exactly one session each, per-connection) roll-up.
  obs::ResourceUsage cumulative_usage() const;

 private:
  friend class QueryService;

  struct PreparedStatement {
    std::string text;
    Query query;
    /// Normal form of a literal query series, computed once at Prepare and
    /// substituted (with query_prenormalized set) on execution -- the
    /// normalize+nothing-else part of the per-query setup cost.
    std::vector<double> normalized_literal;
  };

  Session(QueryService* service, int64_t id) : service_(service), id_(id) {}

  /// RAII pairing of BeginExecution/EndExecution (defined in the .cc).
  class ScopedExecution;

  /// Creates this execution's context -- deadline resolved from
  /// `options`, born cancelled if the session is -- and registers it so
  /// Cancel() can reach it. Every BeginExecution is paired with
  /// EndExecution (RAII in the call sites).
  std::shared_ptr<ExecutionContext> BeginExecution(
      const ExecOptions& options);
  void EndExecution(const ExecutionContext* ctx);

  /// Folds a finished execution's usage into the session roll-up.
  void NoteUsage(const Result<ServiceResult>& result);

  QueryService* service_;
  int64_t id_;
  mutable std::mutex mutex_;
  std::unordered_map<int64_t, PreparedStatement> statements_;
  int64_t next_statement_id_ = 1;
  bool cancel_requested_ = false;
  std::vector<std::shared_ptr<ExecutionContext>> inflight_;
  obs::ResourceUsage usage_;  // guarded by mutex_
};

class QueryService {
 public:
  /// Takes ownership of the database; all subsequent access goes through
  /// the service's locking discipline. With ServiceOptions::wal_path set,
  /// the WAL is opened (created) here; an open failure is deferred --
  /// every subsequent mutation fails with that status rather than
  /// silently running non-durable (queries are unaffected).
  explicit QueryService(Database db, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  std::unique_ptr<Session> OpenSession();

  /// Data-plane writes under the exclusive lock, with eager cache
  /// invalidation. Insert/BulkLoad bump the routed shard epochs (and so
  /// the relation epoch); CreateRelation makes the relation visible at
  /// epoch 0 -- its first data mutation produces the first nonzero
  /// version. With durability on, the mutation is WAL-appended (and
  /// synced) under the same lock before it is acknowledged; a WAL failure
  /// surfaces as the returned status even though the in-memory state has
  /// advanced -- the caller must treat the service as needing a
  /// checkpoint or restart, not retry blindly.
  Status CreateRelation(const std::string& name);
  Result<int64_t> Insert(const std::string& relation,
                         const TimeSeries& series);
  Status BulkLoad(const std::string& relation,
                  const std::vector<TimeSeries>& series);
  /// Deletes one series by id: a tombstone in the data plane (the record
  /// stays stored and its name stays reserved; core/database.h), logged
  /// to the WAL like any other mutation. Queries stop returning the
  /// series immediately; the tombstone is shed by the next recompaction.
  Status Delete(const std::string& relation, int64_t id);

  /// Synchronously folds `relation`'s delta layer into a fresh artifact
  /// generation: build under the shared lock (readers keep running),
  /// publish under the exclusive lock (a brief swap). The service also
  /// runs this in the background once a relation's delta pressure
  /// crosses DeltaOptions::recompact_threshold -- at most one in-flight
  /// recompaction per relation; the destructor waits for them.
  Status Recompact(const std::string& relation);

  /// Ad-hoc execution of a parsed query (sessions call this too). The
  /// ExecOptions overload binds a deadline context onto the query when it
  /// does not already carry one.
  Result<ServiceResult> Execute(const Query& query);
  Result<ServiceResult> Execute(const Query& query,
                                const ExecOptions& options);
  /// Parse + Execute; equivalent to Session::Execute without a session.
  Result<ServiceResult> ExecuteText(const std::string& text,
                                    const ExecOptions& options = {});

  /// Durability checkpoint: atomically snapshots the database to
  /// ServiceOptions::snapshot_path (core/persistence.h) and truncates the
  /// WAL, all under the exclusive lock. Requires snapshot_path; the WAL
  /// is only truncated after the snapshot rename committed, so a crash
  /// anywhere in between still recovers every acknowledged mutation.
  Status Checkpoint();
  /// True when this service was configured with a WAL and it opened.
  bool durable() const { return wal_.is_open(); }

  /// Current epoch of a relation: the roll-up of its per-shard epochs
  /// (core/sharded_relation.h), read under the shared data lock. 0 for a
  /// relation that does not exist or has never been mutated; bumped by
  /// every mutation of any shard, whether it happened through this service
  /// or before the service took ownership of the database.
  uint64_t RelationEpoch(const std::string& relation) const;

  ServiceStats stats() const;

  /// The registry this service records into: the injected one
  /// (ServiceOptions::metrics_registry) or the service's own. Scrape it
  /// with RenderPrometheusText() after RefreshScrapeGauges(). Never
  /// null; stable for the service lifetime.
  obs::MetricRegistry* metrics_registry() const { return registry_; }

  /// Re-derives every gauge a scrape reads -- delta/generation state,
  /// result-cache mirrors, statements-table size -- without assembling a
  /// full ServiceStats. The HTTP exporter's refresh callback and the
  /// wire kMetrics handler call this so scrapes are never stale, whether
  /// or not anything called stats() in between.
  void RefreshScrapeGauges() const;

  /// The statements table (pg_stat_statements-style per-shape
  /// aggregates; obs/statements.h). Never null; a zero
  /// ServiceOptions::statements_capacity leaves it permanently empty.
  const obs::StatementsTable* statements() const { return &statements_; }
  obs::StatementsTable* statements() { return &statements_; }

  /// The flight recorder this service records into; may be null
  /// (recording disabled).
  obs::FlightRecorder* flight_recorder() const {
    return options_.flight_recorder;
  }

  /// Span tree of the most recent recompaction (build/publish phases),
  /// null until one has run. Recompactions are service-internal, so
  /// their traces surface here rather than on any ServiceResult.
  std::shared_ptr<obs::Trace> last_recompaction_trace() const;

  /// Network front-end hooks (called by net::NetServer): fold connection
  /// and byte counters into ServiceStats::net so the shell's `.stats` and
  /// the wire kStats frame report them alongside the query counters. Safe
  /// from any thread; no-ops never occur -- every call counts.
  void NoteConnectionOpened();
  void NoteConnectionClosed(bool timed_out);
  void NoteConnectionShed();
  void NoteRequestShed();
  void NoteNetBytes(int64_t bytes_in, int64_t bytes_out);

  /// The owned database, without any locking. Safe only while no other
  /// thread is using the service (setup, teardown, single-threaded tools).
  const Database& database_unlocked() const { return db_; }
  Database& mutable_database_unlocked() { return db_; }

 private:
  friend class Session;

  /// RAII admission slot: waits until the service is below its concurrency
  /// limit -- bounded by the admission timeout, the query's deadline, and
  /// cancellation -- and computes this query's parallelism budget. When
  /// the wait fails, ok() is false, status() carries the typed error
  /// (kOverloaded / kTimeout / kCancelled), and the destructor releases
  /// nothing: only admitted slots are ever counted, so none can leak.
  class AdmissionSlot;

  /// `parse_ms` is the cold-parse duration when the caller parsed text
  /// for this execution (recorded as the trace's "parse" span); 0 for
  /// prepared/ad-hoc executions.
  Result<ServiceResult> ExecuteInternal(const Query& query, bool prepared,
                                        double parse_ms = 0.0);
  /// Execute with options resolved into a context (deadline, forced
  /// trace) plus the parse duration for the trace's "parse" span.
  Result<ServiceResult> ExecuteBound(const Query& query,
                                     const ExecOptions& options,
                                     double parse_ms);
  /// ParseQuery plus the cold-parse counter (every text parse goes here).
  /// `parse_ms`, when non-null, receives the parse duration.
  Result<Query> ParseTracked(const std::string& text,
                             double* parse_ms = nullptr);
  /// True when the 1-in-N sampler elects the next execution for tracing.
  bool SampleTrace();
  /// The effective deadline for `options` in ms; 0 = none.
  double ResolveDeadlineMs(const ExecOptions& options) const;
  /// Bumps the termination counter matching a failed execution's status.
  void CountTermination(const Status& status);
  /// Durability prologue/epilogue for mutations (caller holds data_mutex_
  /// exclusively): WalGate() fails fast -- before the mutation applies --
  /// when a configured WAL is not open; FinishAppend() folds in the sync
  /// and maintains the wal_appends / wal_failures counters. Both are
  /// no-op Ok when durability is off.
  Status WalGate() const;
  Status FinishAppend(Status append_status);
  /// Relation epoch + shard count; caller holds data_mutex_ (any mode).
  uint64_t EpochLocked(const std::string& relation, int* shards) const;
  /// Relation generation + current delta rows; caller holds data_mutex_.
  uint64_t GenerationLocked(const std::string& relation,
                            int64_t* delta_rows) const;
  /// Spawns a background recompaction of `relation` when its delta
  /// pressure has crossed the threshold and none is already in flight.
  /// Called after mutations, outside the data lock.
  void MaybeScheduleRecompaction(const std::string& relation);
  /// Build (shared lock) + publish (exclusive lock) + metrics; the body
  /// of both Recompact() and the background path.
  Status RunRecompaction(const std::string& relation);
  /// Re-derives the delta gauges from the data plane; caller holds
  /// data_mutex_ (any mode -- the gauges are atomics).
  void RefreshDeltaGauges() const;
  void OnSessionClosed();
  /// Statements-table row + flight-recorder event for one finished
  /// execution (success and every typed failure alike).
  void RecordQueryOutcome(const Query& query, uint64_t fingerprint,
                          const Status& status, bool cache_hit,
                          double elapsed_ms,
                          const obs::ResourceUsage& usage);
  /// Watchdog callback: snapshot admission state into a "stall" event
  /// and dump the flight recorder to its crash path.
  void OnStallDetected(double stalled_ms,
                       const obs::StallWatchdog::Probe& probe);

  Database db_;
  ServiceOptions options_;
  int max_concurrent_;

  /// Reader/writer lock over db_ (see file comment). Epochs live in the
  /// data plane itself (per-shard counters rolled up by Relation::epoch),
  /// so a query reads data and version under one shared-lock acquisition.
  mutable std::shared_mutex data_mutex_;

  /// WAL writer (invalid/closed when durability is off); guarded by
  /// data_mutex_ exclusive like the database it logs.
  WalWriter wal_;
  /// Why the WAL failed to open, when it did; mutations return this.
  Status wal_open_status_;

  ResultCache cache_;

  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  int running_queries_ = 0;

  /// Registry plumbing: the service owns owned_registry_ unless one was
  /// injected; registry_ points at whichever is live. The Metrics struct
  /// caches the interned metric pointers at construction so no query
  /// path ever touches the registry's name map (obs/metrics.h).
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* prepared_executions = nullptr;
    obs::Counter* cold_parses = nullptr;
    obs::Counter* mutations = nullptr;
    obs::Counter* admission_waits = nullptr;
    obs::Counter* sessions_opened = nullptr;
    obs::Gauge* active_sessions = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* cancellations = nullptr;
    obs::Counter* overloaded = nullptr;
    obs::Counter* degraded_queries = nullptr;
    obs::Counter* traced_queries = nullptr;
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_failures = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* recompactions = nullptr;
    obs::Histogram* recompaction_ms = nullptr;
    obs::Gauge* delta_rows = nullptr;
    obs::Gauge* delta_tombstones = nullptr;
    obs::Counter* slow_query_lines = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Counter* net_connections_accepted = nullptr;
    obs::Gauge* net_connections_active = nullptr;
    obs::Counter* net_connections_shed = nullptr;
    obs::Counter* net_connections_timed_out = nullptr;
    obs::Counter* net_requests_shed = nullptr;
    obs::Counter* net_bytes_in = nullptr;
    obs::Counter* net_bytes_out = nullptr;
    /// Cache mirror gauges, refreshed from ResultCache::stats() inside
    /// stats() so a registry scrape sees current cache state.
    obs::Gauge* cache_hits = nullptr;
    obs::Gauge* cache_misses = nullptr;
    obs::Gauge* cache_insertions = nullptr;
    obs::Gauge* cache_invalidated = nullptr;
    obs::Gauge* cache_evictions = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    /// Statements-table size mirror, refreshed on every scrape.
    obs::Gauge* statements_tracked = nullptr;
    /// Stalls the watchdog detected (0 while the watchdog is off).
    obs::Counter* watchdog_stalls = nullptr;
  };
  Metrics metrics_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::atomic<int64_t> trace_tick_{0};  // 1-in-N trace sampler state

  /// Background recompaction bookkeeping: at most one in-flight
  /// recompaction per relation (recompacting_ holds their names); the
  /// destructor blocks until recompactions_inflight_ drains to zero so a
  /// detached worker never outlives the service it points into.
  std::mutex recompact_mutex_;
  std::condition_variable recompact_cv_;
  int recompactions_inflight_ = 0;
  std::unordered_set<std::string> recompacting_;

  mutable std::mutex stats_mutex_;  // guards next_session_id_ only
  int64_t next_session_id_ = 1;

  obs::StatementsTable statements_;

  /// Watchdog probe state: executions in flight (admitted or queued for
  /// admission) and a monotone finished count. Maintained by a RAII
  /// guard around ExecuteInternal so every exit path counts.
  std::atomic<int64_t> executions_pending_{0};
  std::atomic<int64_t> executions_finished_{0};
  std::unique_ptr<obs::StallWatchdog> watchdog_;

  mutable std::mutex recompaction_trace_mutex_;
  std::shared_ptr<obs::Trace> last_recompaction_trace_;
};

}  // namespace simq

#endif  // SIMQ_SERVICE_QUERY_SERVICE_H_
